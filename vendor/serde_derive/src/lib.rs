//! No-op derive macros for the offline `serde` stand-in.
//!
//! The derives intentionally expand to nothing: the workspace never
//! calls serde serialization at runtime, it only annotates types. An
//! empty expansion keeps every `#[derive(Serialize, Deserialize)]`
//! compiling with zero external dependencies.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
