//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` as a
//! forward-looking annotation — nothing serializes through serde at
//! runtime (JSON export is hand-rolled). This stub provides marker
//! traits and no-op derive macros so the annotations compile without
//! network access to crates.io.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker: the type is (nominally) serializable.
pub trait Serialize {}

/// Marker: the type is (nominally) deserializable.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
