//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the rand 0.8 API it actually uses:
//! [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. It is a
//! high-quality deterministic generator but is **not** stream-compatible
//! with upstream rand's ChaCha12-based `StdRng`; every consumer in this
//! workspace seeds explicitly, so determinism per seed is the only
//! contract. There is intentionally no `thread_rng` / `from_entropy`:
//! ambient entropy is banned by `gfw-lint` rule D1.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types with a uniform sampler over a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                ((lo as i128).wrapping_add(draw as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let draw = u128::from(rng.next_u64()) % span;
                ((lo as i128).wrapping_add(draw as i128)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (same scheme upstream rand uses for
/// `seed_from_u64`).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream rand's `StdRng`; see the
    /// crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
            let p: u16 = rng.gen_range(32768..=60999);
            assert!((32768..=60999).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
