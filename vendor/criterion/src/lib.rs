//! Offline stand-in for `criterion`.
//!
//! The build environment cannot fetch crates.io, so this crate provides
//! the subset of the criterion 0.5 API the `bench` crate uses:
//! [`Criterion`], benchmark groups with `throughput` / `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It runs each closure a small fixed number of iterations and prints
//! mean wall-clock time — enough to smoke-test the benches and get
//! rough numbers, with none of criterion's statistics. This is the one
//! deliberate use of wall-clock time in the workspace; benches are not
//! simulation code, and `gfw-lint` rule D1 does not cover them.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier, same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// Throughput annotation (printed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark name, e.g. `encrypt_4k/aes-256-cfb`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Join a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Record the work done per iteration for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    /// Lower/raise the iteration count for slow/fast benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / u32::try_from(b.iters).unwrap_or(u32::MAX)
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:>10.1} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{:<40} {:>12.3?}/iter{}", self.name, id, per_iter, rate);
        self.criterion.ran += 1;
    }

    /// Run a benchmark closure under this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(id, f);
        self
    }

    /// Run a benchmark closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.full, |b| f(b, input));
        self
    }

    /// End the group (upstream finalises reports here; we do nothing).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 20,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".into(),
            criterion: self,
            throughput: None,
            sample_size: 20,
        };
        g.run(id.into(), f);
        self
    }
}

/// Collect benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
