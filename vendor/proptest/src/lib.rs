//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x surface this workspace's
//! property tests use: the [`proptest!`] macro, [`any`], range and
//! [`Just`] strategies, `collection::vec`, `prop_map` / `prop_filter`,
//! [`prop_oneof!`], `prop_assert!` / `prop_assert_eq!` /
//! [`prop_assume!`], and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (FNV of the test name), and failing inputs are **not
//! shrunk** — the panic message carries the case number and the failed
//! assertion instead.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

// Re-exported so `proptest!`-generated code can name the RNG through
// `$crate` without requiring callers to depend on `rand` themselves.
#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use super::StdRng;
    use rand::{Rng, SampleUniform};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred` (regenerates up to a
        /// bounded number of times, then panics with `reason`).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Box the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}': predicate rejected 10000 consecutive candidates",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range generation for primitive types.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, bool, f64, f32);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let mut out = [0u8; N];
            rng.fill(&mut out[..]);
            out
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and case-level error plumbing.

    /// Subset of proptest's config: number of cases per property.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
        /// Construct a rejection.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }
}

/// Deterministic per-test seed: FNV-1a of the test path string.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skip the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursive muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => case += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(64) {
                            panic!(
                                "{}: too many prop_assume! rejections ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Vec sizes respect the requested range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }

        /// prop_map and prop_filter compose.
        #[test]
        fn map_filter(
            x in (0usize..100).prop_filter("even", |x| x % 2 == 0).prop_map(|x| x + 1),
        ) {
            prop_assert!(x % 2 == 1, "x = {}", x);
        }

        /// prop_oneof draws only listed alternatives.
        #[test]
        fn oneof(r in prop_oneof![Just(250u32), Just(1000u32)]) {
            prop_assert!(r == 250 || r == 1000);
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }
}
