//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable byte buffer
//! backed by an `Arc<[u8]>`, covering the subset of the upstream API
//! used by this workspace (`new`, `copy_from_slice`, `from_static`,
//! `Deref` to `[u8]`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer (no allocation is shared, but still cheap).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Wrap a static slice (copied here; upstream borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Sub-range as a new (copied) buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Self::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_clone_sharing() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, c);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(b.slice(1..4), Bytes::copy_from_slice(b"ell"));
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }
}
