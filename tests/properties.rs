//! Property-based tests (proptest) on the core invariants: crypto
//! roundtrips, framing robustness against arbitrary segmentation,
//! server engines never panicking on adversarial bytes, filter
//! soundness, and model bounds.

use gfwsim::shadowsocks::addr::{parse_spec, ParseOutcome};
use gfwsim::shadowsocks::bloom::PingPongBloom;
use gfwsim::shadowsocks::server::ServerConn;
use gfwsim::shadowsocks::wire::{AeadDecryptor, AeadEncryptor, StreamDecryptor, StreamEncryptor};
use gfwsim::shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use gfwsim::sscrypto::method::{Kind, Method, ALL_METHODS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn method_strategy() -> impl Strategy<Value = Method> {
    (0..ALL_METHODS.len()).prop_map(|i| ALL_METHODS[i])
}

fn stream_method() -> impl Strategy<Value = Method> {
    method_strategy().prop_filter("stream only", |m| m.kind() == Kind::Stream)
}

fn aead_method() -> impl Strategy<Value = Method> {
    method_strategy().prop_filter("aead only", |m| m.kind() == Kind::Aead)
}

fn profile_strategy() -> impl Strategy<Value = Profile> {
    (0..Profile::ALL.len()).prop_map(|i| Profile::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stream construction roundtrips for any payload and any split.
    #[test]
    fn stream_roundtrip(
        m in stream_method(),
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        split in 0usize..2000,
    ) {
        let key = gfwsim::sscrypto::kdf::evp_bytes_to_key(b"prop-pw", m.key_len());
        let iv = vec![0x33u8; m.iv_len()];
        let mut enc = StreamEncryptor::new(m, &key, iv);
        let wire = enc.encrypt(&payload);
        let mut dec = StreamDecryptor::new(m, &key);
        let cut = split.min(wire.len());
        let mut plain = dec.decrypt(&wire[..cut]);
        plain.extend(dec.decrypt(&wire[cut..]));
        prop_assert_eq!(plain, payload);
    }

    /// AEAD construction roundtrips for any payload and any
    /// segmentation into three pieces.
    #[test]
    fn aead_roundtrip(
        m in aead_method(),
        payload in proptest::collection::vec(any::<u8>(), 1..2000),
        a in 0usize..2100,
        b in 0usize..2100,
    ) {
        let key = gfwsim::sscrypto::kdf::evp_bytes_to_key(b"prop-pw", m.key_len());
        let salt = vec![0x44u8; m.iv_len()];
        let mut enc = AeadEncryptor::new(m, &key, salt);
        let wire = enc.seal(&payload);
        let mut dec = AeadDecryptor::new(m, &key);
        let c1 = a.min(wire.len());
        let c2 = (c1 + b).min(wire.len());
        let mut plain = Vec::new();
        for part in [&wire[..c1], &wire[c1..c2], &wire[c2..]] {
            for chunk in dec.decrypt(part).unwrap() {
                plain.extend(chunk);
            }
        }
        prop_assert_eq!(plain, payload);
    }

    /// Any single-byte corruption of an AEAD first packet fails
    /// authentication (no silent acceptance).
    #[test]
    fn aead_any_flip_rejected(
        m in aead_method(),
        payload in proptest::collection::vec(any::<u8>(), 1..500),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let key = gfwsim::sscrypto::kdf::evp_bytes_to_key(b"prop-pw", m.key_len());
        let mut enc = AeadEncryptor::new(m, &key, vec![0x55u8; m.iv_len()]);
        let mut wire = enc.seal(&payload);
        let pos = (flip_pos_seed as usize) % wire.len();
        wire[pos] ^= 1 << flip_bit;
        let mut dec = AeadDecryptor::new(m, &key);
        match dec.decrypt(&wire) {
            // Authentication failure: correct.
            Err(_) => {}
            // No complete chunk may decrypt successfully.
            Ok(chunks) => prop_assert!(
                chunks.concat() != payload,
                "corrupted wire decrypted to the original at pos {pos}"
            ),
        }
    }

    /// The target-spec parser never panics and roundtrips encodings.
    #[test]
    fn spec_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = parse_spec(&bytes, false);
        let _ = parse_spec(&bytes, true);
    }

    #[test]
    fn spec_roundtrip_ipv4(ip in any::<[u8; 4]>(), port in any::<u16>()) {
        let t = TargetAddr::Ipv4(ip, port);
        prop_assert_eq!(parse_spec(&t.encode(), false), ParseOutcome::Complete(t, 7));
    }

    #[test]
    fn spec_roundtrip_hostname(
        name in proptest::collection::vec(any::<u8>(), 0..255),
        port in any::<u16>(),
    ) {
        let t = TargetAddr::Hostname(name.clone(), port);
        let enc = t.encode();
        prop_assert_eq!(
            parse_spec(&enc, false),
            ParseOutcome::Complete(t, enc.len())
        );
    }

    /// Server engines are total: arbitrary bytes, arbitrarily split,
    /// against every profile and method, never panic — and never
    /// produce plaintext relay data (no decryption oracle on junk).
    #[test]
    fn server_engine_total_on_junk(
        profile in profile_strategy(),
        m in method_strategy(),
        junk in proptest::collection::vec(any::<u8>(), 0..600),
        split in 0usize..600,
    ) {
        prop_assume!(profile.supports_stream || m.kind() == Kind::Aead);
        let config = ServerConfig::new(m, "prop-pw", profile);
        let mut server = ServerConn::new(config, 1);
        let conn = server.open_conn();
        let cut = split.min(junk.len());
        let _ = server.on_data(conn, &junk[..cut]);
        let _ = server.on_data(conn, &junk[cut..]);
        let _ = server.on_target_connected(conn);
        let _ = server.on_target_failed(conn);
    }

    /// A genuine client payload always parses on every compatible
    /// profile/method pair, however the wire bytes are segmented.
    #[test]
    fn genuine_client_always_parses(
        profile in profile_strategy(),
        m in method_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 1..300),
        seg in 1usize..64,
    ) {
        prop_assume!(profile.supports_stream || m.kind() == Kind::Aead);
        let config = ServerConfig::new(m, "prop-pw", profile);
        let mut rng = StdRng::seed_from_u64(7);
        let mut client = ClientSession::new(
            &config,
            TargetAddr::Ipv4([10, 1, 2, 3], 443),
            &mut rng,
        );
        let wire = client.send(&payload);
        let mut server = ServerConn::new(config, 2);
        let conn = server.open_conn();
        let mut connected = false;
        for part in wire.chunks(seg) {
            for action in server.on_data(conn, part) {
                if matches!(action, gfwsim::shadowsocks::ServerAction::ConnectTarget(_)) {
                    connected = true;
                }
            }
        }
        prop_assert!(connected, "{} {} seg {}", profile.name, m.name(), seg);
    }

    /// Bloom filter: no false negatives within capacity.
    #[test]
    fn bloom_no_false_negatives(items in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut filter = PingPongBloom::new(1000);
        let mut seen = std::collections::HashSet::new();
        for &it in &items {
            let expected = !seen.insert(it);
            let got = filter.check_and_insert(&it.to_le_bytes());
            // False positives possible (rare), false negatives never.
            if expected {
                prop_assert!(got, "false negative for {it}");
            }
        }
    }

    /// Entropy is always within [0, min(8, log2(len))].
    #[test]
    fn entropy_bounds(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let e = gfwsim::analysis::shannon_entropy(&data);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= gfwsim::analysis::entropy::max_entropy_for_len(data.len()) + 1e-9);
    }

    /// Delay model samples stay inside the paper's observed bounds.
    #[test]
    fn delay_model_bounds(seed in any::<u64>()) {
        let m = gfwsim::gfw::delay::DelayModel;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = m.sample(&mut rng).as_secs_f64();
        prop_assert!(d >= gfwsim::gfw::delay::MIN_DELAY_SECS - 1e-6);
        prop_assert!(d <= gfwsim::gfw::delay::MAX_DELAY_SECS + 1.0);
        let n = m.replay_count(&mut rng);
        prop_assert!((1..=47).contains(&n));
    }

    /// The passive detector's store probability is a probability.
    #[test]
    fn store_probability_is_probability(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let det = gfwsim::gfw::passive::PassiveDetector::default();
        let p = det.store_probability(&data);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
