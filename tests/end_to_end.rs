//! Workspace-level integration tests: cross-crate stories that put the
//! defender, the adversary, and the substrate in one simulation.

use gfwsim::experiments::runs::{build_ss_world, shadowsocks_run, SsRunConfig};
use gfwsim::shadowsocks::Profile;
use gfwsim::sscrypto::method::Method;
use netsim::conn::TcpTuning;
use netsim::time::{Duration, SimTime};

fn drive(world: &mut gfwsim::experiments::runs::SsWorld, n: usize, spacing: Duration) {
    for i in 0..n {
        world.sim.connect_at(
            SimTime::ZERO + Duration::from_nanos(spacing.as_nanos() * i as u64),
            world.driver,
            world.client_ip,
            (world.server_ip, 8388),
            TcpTuning::default(),
        );
    }
}

#[test]
fn brdgrd_protects_a_server_end_to_end() {
    // Two identical servers and workloads; one runs brdgrd from the
    // start (the paper's strongest configuration, §7.1).
    let cfg = SsRunConfig {
        connections: 600,
        conn_interval: Duration::from_secs(20),
        fleet_pool: 500,
        nr_min_gap: Duration::from_mins(4),
        seed: 21,
        ..Default::default()
    };
    let unprotected = shadowsocks_run(&cfg).probes.len();

    let mut world = build_ss_world(&cfg);
    gfwsim::defense::Brdgrd::default().enable(&mut world.sim, world.server_ip);
    drive(&mut world, cfg.connections, cfg.conn_interval);
    world.sim.run();
    let protected = world.handle.state.borrow().probes().len();

    assert!(
        (protected as f64) < 0.2 * unprotected as f64,
        "brdgrd: {protected} probes vs {unprotected} unprotected"
    );
    assert!(unprotected > 20, "control server must be heavily probed");
}

#[test]
fn hardened_server_survives_sensitive_period() {
    // Same workload, sensitivity 1.0: the vulnerable Outline v1.0.7 is
    // blocked; the hardened v1.1.0 (replay filter) never produces a
    // high-confidence verdict, so it survives.
    let base = SsRunConfig {
        method: Method::ChaCha20IetfPoly1305,
        connections: 800,
        conn_interval: Duration::from_secs(20),
        sensitivity: 1.0,
        fleet_pool: 600,
        nr_min_gap: Duration::from_mins(4),
        seed: 22,
        ..Default::default()
    };
    let vulnerable = shadowsocks_run(&SsRunConfig {
        profile: Profile::OUTLINE_1_0_7,
        ..base.clone()
    });
    assert!(
        !vulnerable.block_rules.is_empty(),
        "filterless server must be blocked"
    );

    let fixed = shadowsocks_run(&SsRunConfig {
        profile: Profile::OUTLINE_1_1_0,
        ..base
    });
    assert!(
        fixed.block_rules.is_empty(),
        "v1.1.0 (replay defense) must survive; got {:?}",
        fixed.block_rules
    );
    assert!(
        !fixed.probes.is_empty(),
        "it is still probed — just not confirmable (§11: 'intensively \
         probed but not blocked')"
    );
}

#[test]
fn bidirectional_triggering_server_inside_china() {
    // §4.2: a Shadowsocks server *inside* China contacted from outside
    // receives probes too — the GFW does not care about directionality.
    let cfg = SsRunConfig {
        connections: 500,
        conn_interval: Duration::from_secs(20),
        fleet_pool: 500,
        nr_min_gap: Duration::from_mins(4),
        seed: 23,
        ..Default::default()
    };
    // Build a world, then add an inverted pair: server in China,
    // client outside.
    let mut world = build_ss_world(&cfg);
    let cn_server = world
        .sim
        .add_host(netsim::host::HostConfig::china("ss-server-cn"));
    let out_client = world
        .sim
        .add_host(netsim::host::HostConfig::outside("client-out"));
    let ss_config = gfwsim::shadowsocks::ServerConfig::new(
        Method::Aes256Cfb,
        "run-password",
        Profile::LIBEV_OLD,
    );
    let app = world
        .sim
        .add_app(Box::new(gfwsim::shadowsocks::apps::SsServerApp::new(
            ss_config, cn_server, 99,
        )));
    world.sim.listen((cn_server, 8388), app);
    for i in 0..cfg.connections {
        world.sim.connect_at(
            SimTime::ZERO + Duration::from_nanos(cfg.conn_interval.as_nanos() * i as u64),
            world.driver,
            out_client,
            (cn_server, 8388),
            TcpTuning::default(),
        );
    }
    world.sim.run();
    let st = world.handle.state.borrow();
    let to_cn_server = st
        .probes()
        .iter()
        .filter(|p| p.server.0 == cn_server)
        .count();
    assert!(
        to_cn_server > 5,
        "inside-China server got {to_cn_server} probes"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = |seed: u64| {
        let res = shadowsocks_run(&SsRunConfig {
            connections: 300,
            conn_interval: Duration::from_secs(20),
            fleet_pool: 300,
            nr_min_gap: Duration::from_mins(4),
            seed,
            ..Default::default()
        });
        res.probes
            .iter()
            .map(|p| {
                (
                    p.kind,
                    p.sent_at,
                    p.payload_len,
                    p.src,
                    p.src_port,
                    p.reaction,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(31), run(31), "same seed, same probe log");
    assert_ne!(run(31), run(32), "different seed, different log");
}

#[test]
fn probe_reactions_match_profile_on_the_wire() {
    // Table 5 through the full network stack: libev-old answers every
    // identical replay with RST; Outline 1.0.7 proxies them.
    use gfwsim::gfw::probe::{ProbeKind, Reaction};
    let base = SsRunConfig {
        connections: 500,
        conn_interval: Duration::from_secs(20),
        fleet_pool: 400,
        nr_min_gap: Duration::from_mins(4),
        seed: 24,
        ..Default::default()
    };
    let libev = shadowsocks_run(&SsRunConfig {
        profile: Profile::LIBEV_OLD,
        method: Method::Aes256Cfb,
        ..base.clone()
    });
    let r1: Vec<_> = libev
        .probes
        .iter()
        .filter(|p| p.kind == ProbeKind::R1 && p.reaction.is_some())
        .collect();
    assert!(!r1.is_empty());
    assert!(r1.iter().all(|p| p.reaction == Some(Reaction::Rst)));

    let outline = shadowsocks_run(&SsRunConfig {
        profile: Profile::OUTLINE_1_0_7,
        method: Method::ChaCha20IetfPoly1305,
        ..base
    });
    assert!(outline
        .probes
        .iter()
        .any(|p| p.kind == ProbeKind::R1 && p.reaction == Some(Reaction::Data)));
}
