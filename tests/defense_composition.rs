//! Cross-crate defense tests: client-side first-flight shaping (the
//! §11 OutlineVPN direction) measured against the full GFW pipeline,
//! and probe reaction taxonomy over the wire.

use gfwsim::defense::shaping::{shape_first_flight, FirstFlightPolicy};
use gfwsim::experiments::runs::{build_ss_world, SsRunConfig};
use gfwsim::gfw::probe::Reaction;
use gfwsim::shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use gfwsim::sscrypto::method::Method;
use netsim::app::{App, AppEvent, Ctx};
use netsim::conn::{ConnId, TcpTuning};
use netsim::time::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Shadowsocks driver that applies a first-flight policy at the client.
struct ShapedDriver {
    config: ServerConfig,
    target: TargetAddr,
    policy: FirstFlightPolicy,
    rng: StdRng,
    sessions: HashMap<ConnId, ClientSession>,
}

impl App for ShapedDriver {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Connected { conn } => {
                let mut s = ClientSession::new(&self.config, self.target.clone(), &mut self.rng);
                let body_len =
                    gfwsim::experiments::runs::attractive_payload_len(self.config.method);
                let mut body = vec![0u8; body_len];
                self.rng.fill(&mut body[..]);
                let wire = s.send(&body);
                self.sessions.insert(conn, s);
                for segment in shape_first_flight(self.policy, &wire, &mut self.rng) {
                    ctx.send(conn, segment);
                }
                ctx.set_timer(Duration::from_secs(20), conn.0);
            }
            AppEvent::Timer { token } => {
                ctx.fin(ConnId(token));
                self.sessions.remove(&ConnId(token));
            }
            AppEvent::PeerFin { conn } | AppEvent::PeerRst { conn } => {
                self.sessions.remove(&conn);
            }
            _ => {}
        }
    }
}

fn probes_with_policy(policy: FirstFlightPolicy, seed: u64) -> usize {
    let cfg = SsRunConfig {
        profile: Profile::LIBEV_NEW,
        method: Method::ChaCha20IetfPoly1305,
        connections: 0,
        fleet_pool: 400,
        nr_min_gap: Duration::from_mins(4),
        seed,
        ..Default::default()
    };
    let mut world = build_ss_world(&cfg);
    let ss_config = ServerConfig::new(cfg.method, "run-password", cfg.profile);
    let driver = world.sim.add_app(Box::new(ShapedDriver {
        config: ss_config,
        target: TargetAddr::Ipv4([99, 99, 99, 99], 443),
        policy,
        rng: StdRng::seed_from_u64(seed ^ 0xAB),
        sessions: HashMap::new(),
    }));
    for i in 0..500u64 {
        world.sim.connect_at(
            SimTime::ZERO + Duration::from_secs(20 * i),
            driver,
            world.client_ip,
            (world.server_ip, 8388),
            TcpTuning::default(),
        );
    }
    world.sim.run();
    let n = world.handle.state.borrow().probes().len();
    n
}

#[test]
fn client_side_chopping_defeats_the_length_feature() {
    let single = probes_with_policy(FirstFlightPolicy::Single, 61);
    let chopped = probes_with_policy(FirstFlightPolicy::Chop { size: 64 }, 61);
    assert!(single > 10, "control must be probed: {single}");
    assert_eq!(chopped, 0, "chopped first flights must draw no probes");
}

#[test]
fn split_at_small_prefix_also_escapes() {
    // Splitting so the first segment is <161 bytes takes the first
    // *packet* out of the replay-eligible window.
    let split = probes_with_policy(FirstFlightPolicy::SplitAt { lo: 40, hi: 120 }, 62);
    assert_eq!(split, 0, "split-prefix flights must draw no probes");
}

#[test]
fn probe_timeouts_are_recorded_as_timeout_reactions() {
    // Against a silent (post-fix) server, probes resolve as Timeout via
    // the prober's own 5-9 s deadline.
    let cfg = SsRunConfig {
        profile: Profile::OUTLINE_1_0_7,
        method: Method::ChaCha20IetfPoly1305,
        connections: 400,
        conn_interval: Duration::from_secs(20),
        fleet_pool: 400,
        nr_min_gap: Duration::from_mins(4),
        seed: 63,
        ..Default::default()
    };
    let res = gfwsim::experiments::runs::shadowsocks_run(&cfg);
    let random_probes: Vec<_> = res
        .probes
        .iter()
        .filter(|p| !p.kind.is_replay() && p.reaction.is_some())
        .collect();
    assert!(!random_probes.is_empty());
    assert!(
        random_probes
            .iter()
            .all(|p| p.reaction == Some(Reaction::Timeout)),
        "silent server: every random probe times out"
    );
}
