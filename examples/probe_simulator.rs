//! The paper's prober simulator (§5.1) as a command-line tool: sweep
//! random probes over an implementation and print its reaction matrix,
//! then run the §5.2.2 inference battery against every profile.
//!
//! ```sh
//! cargo run --example probe_simulator
//! ```

use gfwsim::probesim::matrix::reaction_matrix;
use gfwsim::probesim::{infer, EngineOracle};
use gfwsim::shadowsocks::{Profile, ServerConfig};
use gfwsim::sscrypto::method::Method;

fn main() {
    // Part 1: a Fig 10 row, live.
    let config = ServerConfig::new(Method::Aes128Gcm, "pw", Profile::LIBEV_OLD);
    println!(
        "reaction matrix for {} / {} (salt {} bytes):\n",
        Profile::LIBEV_OLD.name,
        config.method.name(),
        config.method.iv_len()
    );
    let lengths: Vec<usize> = vec![1, 8, 16, 33, 49, 50, 51, 52, 66, 100, 221];
    for row in reaction_matrix(&config, lengths, 60, 1) {
        println!("  {:>4} bytes → {}", row.len, row.cell());
    }
    println!("\n(TIMEOUT through 50, deterministic RST from 51 = salt+35 — Fig 10b row 1)");

    // Part 2: the attacker's endgame — inference across the ecosystem.
    println!("\ninference battery across implementations:\n");
    let grid: Vec<(Profile, Method)> = vec![
        (Profile::LIBEV_OLD, Method::ChaCha20Ietf),
        (Profile::LIBEV_OLD, Method::Aes192Gcm),
        (Profile::LIBEV_NEW, Method::Aes256Gcm),
        (Profile::OUTLINE_1_0_6, Method::ChaCha20IetfPoly1305),
        (Profile::OUTLINE_1_0_7, Method::ChaCha20IetfPoly1305),
        (Profile::SS_PYTHON, Method::Aes256Cfb),
    ];
    for (profile, method) in grid {
        let config = ServerConfig::new(method, "pw", profile);
        let mut oracle = EngineOracle::new(config, 9);
        let f = infer(&mut oracle, 60);
        println!(
            "  {:<26} {:<24} → {}{}",
            profile.name,
            method.name(),
            f.implementation_guess,
            f.nonce_len
                .map(|n| format!(
                    " (nonce {n} bytes{})",
                    f.cipher_hint
                        .map(|h| format!(", cipher: {h}"))
                        .unwrap_or_default()
                ))
                .unwrap_or_default()
        );
    }
    println!("\n(post-fix implementations are indistinguishable from silence — §7.2)");
}
