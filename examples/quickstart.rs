//! Quickstart: the Shadowsocks protocol and why probe reactions matter.
//!
//! Runs a client/server exchange purely in memory (no simulator), then
//! shows how the same server reacts to the GFW's probe types — the
//! paper's core observation in thirty lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gfwsim::gfw::probe::{build_payload, ProbeKind};
use gfwsim::probesim::{EngineOracle, TargetModel};
use gfwsim::shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use gfwsim::sscrypto::method::Method;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // 1. A Shadowsocks server and a client sharing a password.
    let config = ServerConfig::new(
        Method::ChaCha20IetfPoly1305,
        "correct horse battery staple",
        Profile::LIBEV_OLD,
    );
    let mut client = ClientSession::new(
        &config,
        TargetAddr::Hostname(b"www.wikipedia.org".to_vec(), 443),
        &mut rng,
    );

    // 2. The first packet: salt + encrypted target spec + payload.
    let wire = client.send(b"GET / HTTP/1.1\r\nHost: www.wikipedia.org\r\n\r\n");
    println!("first packet on the wire: {} bytes", wire.len());
    println!(
        "per-byte entropy: {:.2} bits (this is what the GFW measures)",
        gfwsim::analysis::shannon_entropy(&wire)
    );

    // 3. The GFW's probes, and the reactions that betray the server.
    let mut oracle = EngineOracle::new(config, 7);
    oracle.target = TargetModel { p_refused: 0.5 };

    println!("\nreactions of {}:", Profile::LIBEV_OLD.name);
    // Identical replay of the recorded first packet (type R1):
    let _ = oracle.probe_shared_replay(&wire); // the original connection
    let replay = oracle.probe_shared_replay(&wire); // the GFW's replay
    println!("  R1 identical replay  → {replay:?} (replay filter fires)");

    // A byte-changed replay (type R2) breaks the salt → auth failure:
    let r2 = build_payload(ProbeKind::R2, Some(&wire), &mut rng);
    println!(
        "  R2 byte-0 changed    → {:?} (auth failure → reset)",
        oracle.probe_shared(&r2)
    );

    // Random probes of the NR1/NR2 lengths:
    for len in [8usize, 50, 221] {
        let p = oracle.random_payload(len);
        println!("  {len:>3}-byte random     → {:?}", oracle.probe_fresh(&p));
    }

    // 4. The post-disclosure fix: everything times out.
    let fixed = ServerConfig::new(
        Method::ChaCha20IetfPoly1305,
        "correct horse battery staple",
        Profile::OUTLINE_1_0_7,
    );
    let mut oracle = EngineOracle::new(fixed, 8);
    println!("\nreactions of {}:", Profile::OUTLINE_1_0_7.name);
    for len in [8usize, 50, 221] {
        let p = oracle.random_payload(len);
        println!("  {len:>3}-byte random     → {:?}", oracle.probe_fresh(&p));
    }
    println!("\n(the paper's §7: silence is the only safe reaction)");
}
