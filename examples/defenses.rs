//! The §7 defense toolbox, evaluated live:
//!
//! 1. brdgrd window shaping kills the passive detector's length feature
//!    (probing rate collapses — Fig 11);
//! 2. the timestamp+nonce replay filter defeats delayed replays that a
//!    pure Bloom filter misses across restarts;
//! 3. hardened reaction profiles are opaque to the inference battery.
//!
//! ```sh
//! cargo run --example defenses
//! ```

use gfwsim::defense::{harden, TimedReplayFilter, VerdictReason};
use gfwsim::experiments::runs::{brdgrd_run, BrdgrdRunConfig};
use gfwsim::probesim::{infer, EngineOracle};
use gfwsim::shadowsocks::bloom::PingPongBloom;
use gfwsim::shadowsocks::{Profile, ServerConfig};
use gfwsim::sscrypto::method::Method;
use netsim::time::{Duration, SimTime};

fn main() {
    // --- 1. brdgrd -----------------------------------------------------
    println!("1. brdgrd window shaping (Fig 11, compressed to 24 h):\n");
    let res = brdgrd_run(&BrdgrdRunConfig {
        hours: 24,
        active_windows: vec![(8, 16)],
        conns_per_5min: 16,
        seed: 11,
    });
    for (h, &count) in res.probes_per_hour.iter().enumerate() {
        let active = (8..16).contains(&(h as u64));
        println!(
            "  hour {h:>2} {} {:>3} {}",
            if active { "[brdgrd]" } else { "        " },
            count,
            "#".repeat(count.min(50) as usize)
        );
    }

    // --- 2. replay filters across restarts ------------------------------
    println!("\n2. replay filters vs a 570-hour delayed replay across a restart:\n");
    let captured_nonce = b"salt-captured-by-the-gfw";
    let t0 = SimTime::ZERO + Duration::from_secs(1_000);
    let replay_at = t0 + Duration::from_hours(570);

    let mut bloom = PingPongBloom::new(100_000);
    bloom.check_and_insert(captured_nonce);
    bloom.restart(); // server rebooted during the 570 hours
    let bloom_catches = bloom.check_and_insert(captured_nonce);
    println!("  pure-nonce Bloom filter: replay detected = {bloom_catches}  ← the §7.2 asymmetry");

    let mut timed = TimedReplayFilter::new(Duration::from_secs(120));
    timed.check(t0, t0, captured_nonce);
    timed.restart();
    let verdict = timed.check(replay_at, t0, captured_nonce);
    println!(
        "  timestamp+nonce filter:  replay verdict = {verdict:?} (bounded memory: {} nonces)",
        timed.remembered()
    );
    assert_eq!(verdict, VerdictReason::StaleTimestamp);

    // --- 3. hardened reactions ------------------------------------------
    println!("\n3. inference against a hardened server:\n");
    let hardened = harden(Profile::OUTLINE_1_0_6);
    let config = ServerConfig::new(Method::ChaCha20IetfPoly1305, "pw", hardened);
    let mut oracle = EngineOracle::new(config, 12);
    let f = infer(&mut oracle, 60);
    println!(
        "  harden(OutlineVPN v1.0.6) → shadowsocks_like = {}, guess: {}",
        f.shadowsocks_like, f.implementation_guess
    );
    println!("\n(all three defenses compose; see DESIGN.md §7 notes)");
}
