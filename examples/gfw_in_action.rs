//! The full pipeline, Fig 1 style: a Shadowsocks client in China
//! browses through a server abroad; the simulated GFW passively flags
//! the connections, sends staged probes from its fleet, classifies the
//! reactions, and — in a politically sensitive period — blocks the
//! server. Afterwards the client can no longer connect.
//!
//! ```sh
//! cargo run --example gfw_in_action
//! ```

use gfwsim::experiments::runs::{build_ss_world, SsRunConfig};
use gfwsim::gfw::classifier::Verdict;
use gfwsim::shadowsocks::Profile;
use gfwsim::sscrypto::method::Method;
use netsim::conn::TcpTuning;
use netsim::time::{Duration, SimTime};
use std::collections::BTreeMap;

fn main() {
    // OutlineVPN v1.0.7 has no replay filter: the GFW's replays are
    // proxied, which unlocks stage-2 probing and a confident verdict.
    let cfg = SsRunConfig {
        profile: Profile::OUTLINE_1_0_7,
        method: Method::ChaCha20IetfPoly1305,
        connections: 800,
        conn_interval: Duration::from_secs(30),
        sensitivity: 1.0, // politically sensitive period (§6)
        fleet_pool: 800,
        nr_min_gap: Duration::from_mins(4),
        seed: 2019,
        ..Default::default()
    };
    let mut world = build_ss_world(&cfg);
    println!(
        "driving {} Shadowsocks connections through the border...",
        cfg.connections
    );
    for i in 0..cfg.connections {
        world.sim.connect_at(
            SimTime::ZERO + Duration::from_nanos(cfg.conn_interval.as_nanos() * i as u64),
            world.driver,
            world.client_ip,
            (world.server_ip, 8388),
            TcpTuning::default(),
        );
    }
    world.sim.run();

    let st = world.handle.state.borrow();
    println!(
        "\nGFW inspected {} first-data packets and sent {} probes:",
        st.inspected_connections(),
        st.probes().len()
    );
    let mut by_kind: BTreeMap<String, (usize, BTreeMap<String, usize>)> = BTreeMap::new();
    for p in st.probes() {
        let entry = by_kind.entry(format!("{:?}", p.kind)).or_default();
        entry.0 += 1;
        if let Some(r) = p.reaction {
            *entry.1.entry(format!("{r:?}")).or_default() += 1;
        }
    }
    for (kind, (count, reactions)) in &by_kind {
        let rs: Vec<String> = reactions.iter().map(|(r, c)| format!("{r}×{c}")).collect();
        println!("  {kind:<4} {count:>4}  ({})", rs.join(", "));
    }

    let server = (world.server_ip, 8388);
    match st.classifier.verdict(server) {
        Verdict::LikelyShadowsocks {
            signature,
            confidence,
        } => println!("\nverdict: Shadowsocks ({signature:?}, confidence {confidence:.2})"),
        v => println!("\nverdict: {v:?}"),
    }
    for rule in st.blocking.all_rules() {
        println!(
            "blocked: {:?} from {} until {} ({} later)",
            rule.scope,
            rule.since,
            rule.until,
            rule.until.since(rule.since)
        );
    }
    drop(st);

    // The client tries again.
    let t = world.sim.now();
    println!("\nclient retries after the block...");
    let conn = world.sim.connect_at(
        t + Duration::from_secs(60),
        world.driver,
        world.client_ip,
        (world.server_ip, 8388),
        TcpTuning::default(),
    );
    world.sim.run();
    let dropped = world.sim.stats.packets_dropped;
    println!(
        "connection {:?}: server replies null-routed at the border ({} packets dropped) — \
         the paper's §6 blocking, reproduced.",
        conn, dropped
    );
}
