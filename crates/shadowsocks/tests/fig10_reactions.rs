//! Engine-level reproduction of the paper's Fig 10 reaction matrix and
//! Table 5 replay reactions.
//!
//! For each implementation profile and cipher class, random probes of
//! varying lengths must produce the TIMEOUT / RST / FIN-ACK /
//! connect-attempt behaviour the paper measured, with the right
//! probabilities (3/16 valid address types under masking, etc.).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowsocks::server::{ServerAction, ServerConn};
use shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use sscrypto::method::Method;

/// Immediate engine reaction to a single probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Immediate {
    /// No action: the server keeps waiting (the TIMEOUT column).
    Wait,
    Rst,
    Fin,
    /// Decrypted to a plausible target: the server attempts an outbound
    /// connection (resolves to TIMEOUT or FIN/ACK depending on the
    /// target's fate).
    Connect,
    /// Replay of genuine data on a filterless server: proxied (Table 5's
    /// "D" — the server sends data once the target answers).
    Data,
}

fn classify(actions: &[ServerAction]) -> Immediate {
    match actions.first() {
        Some(ServerAction::CloseRst) => Immediate::Rst,
        Some(ServerAction::CloseFin) => Immediate::Fin,
        Some(ServerAction::ConnectTarget(_)) => Immediate::Connect,
        Some(ServerAction::SendToClient(_) | ServerAction::RelayToTarget(_)) => Immediate::Data,
        None => Immediate::Wait,
    }
}

fn probe_once(server: &mut ServerConn, payload: &[u8]) -> Immediate {
    let conn = server.open_conn();
    let reaction = classify(&server.on_data(conn, payload));
    server.close_conn(conn);
    reaction
}

fn random_probe(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut p = vec![0u8; len];
    rng.fill(&mut p[..]);
    p
}

/// Sample `n` random probes of length `len`; return the fraction of each
/// reaction.
fn sample(config: &ServerConfig, len: usize, n: usize, seed: u64) -> Vec<(Immediate, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        // Fresh server per probe so the replay filter never interferes.
        let mut server = ServerConn::new(config.clone(), seed ^ i as u64);
        let p = random_probe(&mut rng, len);
        *counts.entry(probe_once(&mut server, &p)).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / n as f64))
        .collect()
}

fn frac(dist: &[(Immediate, f64)], r: Immediate) -> f64 {
    dist.iter()
        .find(|(k, _)| *k == r)
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

// ---------------------------------------------------------------------
// Fig 10a: stream ciphers
// ---------------------------------------------------------------------

#[test]
fn fig10a_libev_old_short_probes_time_out() {
    // Probes no longer than the IV always TIMEOUT (first rows of
    // Fig 10a).
    for (method, iv) in [
        (Method::ChaCha20, 8),
        (Method::ChaCha20Ietf, 12),
        (Method::Aes256Ctr, 16),
    ] {
        let config = ServerConfig::new(method, "pw", Profile::LIBEV_OLD);
        for len in 1..=iv {
            let dist = sample(&config, len, 40, 1);
            assert_eq!(
                frac(&dist, Immediate::Wait),
                1.0,
                "{} len {len}",
                method.name()
            );
        }
    }
}

#[test]
fn fig10a_libev_old_mid_probes_mostly_rst() {
    // IV+1 .. IV+6: 13/16 of address types are invalid → RST; the valid
    // 3/16 wait for a complete spec.
    let config = ServerConfig::new(Method::Aes256Ctr, "pw", Profile::LIBEV_OLD);
    for len in [17usize, 20, 22] {
        let dist = sample(&config, len, 600, 7);
        let rst = frac(&dist, Immediate::Rst);
        assert!(
            (rst - 13.0 / 16.0).abs() < 0.06,
            "len {len}: rst fraction {rst}"
        );
        assert_eq!(
            frac(&dist, Immediate::Fin),
            0.0,
            "no FIN before a full spec"
        );
    }
}

#[test]
fn fig10a_libev_old_long_probes_mixed() {
    // ≥ IV+7: RST ~13/16; the rest split between waiting (incomplete
    // hostname/IPv6 specs) and connect attempts.
    let config = ServerConfig::new(Method::Aes256Ctr, "pw", Profile::LIBEV_OLD);
    let dist = sample(&config, 16 + 30, 800, 21);
    let rst = frac(&dist, Immediate::Rst);
    assert!((rst - 13.0 / 16.0).abs() < 0.05, "rst fraction {rst}");
    assert!(
        frac(&dist, Immediate::Connect) > 0.02,
        "some probes connect"
    );
    assert!(frac(&dist, Immediate::Wait) > 0.01, "some probes wait");
}

#[test]
fn fig10a_unmasked_implementation_rsts_more() {
    // Without address-type masking the valid fraction is 3/256, so the
    // RST fraction rises to ~253/256 — the signature §5.2.2 says lets an
    // attacker tell implementations apart.
    let config = ServerConfig::new(Method::Aes256Ctr, "pw", Profile::SS_PYTHON);
    let dist = sample(&config, 46, 800, 33);
    let rst = frac(&dist, Immediate::Rst);
    assert!(rst > 0.97, "rst fraction {rst}");
}

#[test]
fn fig10a_libev_new_never_rsts() {
    // v3.3.1+ turned every error into silence.
    let config = ServerConfig::new(Method::Aes128Ctr, "pw", Profile::LIBEV_NEW);
    for len in [1usize, 9, 15, 22, 49, 221] {
        let dist = sample(&config, len, 200, 3);
        assert_eq!(frac(&dist, Immediate::Rst), 0.0, "len {len}");
        assert_eq!(frac(&dist, Immediate::Fin), 0.0, "len {len}");
        let wait = frac(&dist, Immediate::Wait);
        assert!(wait > 0.7, "len {len}: wait {wait}");
    }
}

#[test]
fn fig10a_valid_spec_probability_matches_masking() {
    // At exactly IV+7 the only completable spec is IPv4 (masked nibble
    // 0x1, p = 1/16) or a very short hostname (0x3 with len ≤ 3).
    let config = ServerConfig::new(Method::Aes256Ctr, "pw", Profile::LIBEV_OLD);
    let dist = sample(&config, 16 + 7, 2000, 5);
    let connect = frac(&dist, Immediate::Connect);
    // IPv4: 1/16 ≈ 0.0625; short-hostname completions add ~1/16 × 4/256.
    assert!(
        (connect - 0.0635).abs() < 0.02,
        "connect fraction {connect}"
    );
}

// ---------------------------------------------------------------------
// Fig 10b: AEAD ciphers
// ---------------------------------------------------------------------

#[test]
fn fig10b_libev_old_thresholds() {
    for (method, salt) in [
        (Method::Aes128Gcm, 16usize),
        (Method::Aes192Gcm, 24),
        (Method::Aes256Gcm, 32),
    ] {
        let config = ServerConfig::new(method, "pw", Profile::LIBEV_OLD);
        // Fig 10b: TIMEOUT through salt+34, RST from salt+35.
        let threshold = salt + 35;
        for len in [threshold - 10, threshold - 1, threshold] {
            let dist = sample(&config, len, 30, 11);
            if len < threshold {
                assert_eq!(
                    frac(&dist, Immediate::Wait),
                    1.0,
                    "{} len {len} below threshold",
                    method.name()
                );
            } else {
                assert_eq!(
                    frac(&dist, Immediate::Rst),
                    1.0,
                    "{} len {len} at threshold",
                    method.name()
                );
            }
        }
        // Far above threshold: always RST.
        let dist = sample(&config, 221, 30, 12);
        assert_eq!(frac(&dist, Immediate::Rst), 1.0, "{}", method.name());
    }
}

#[test]
fn fig10b_libev_new_always_times_out() {
    let config = ServerConfig::new(Method::Aes256Gcm, "pw", Profile::LIBEV_NEW);
    for len in [1usize, 50, 51, 66, 67, 100, 221] {
        let dist = sample(&config, len, 20, 13);
        assert_eq!(frac(&dist, Immediate::Wait), 1.0, "len {len}");
    }
}

#[test]
fn fig10b_outline_106_fin_at_exactly_50() {
    let config = ServerConfig::new(Method::ChaCha20IetfPoly1305, "pw", Profile::OUTLINE_1_0_6);
    for len in 1..50usize {
        let dist = sample(&config, len, 10, 14);
        assert_eq!(frac(&dist, Immediate::Wait), 1.0, "len {len}");
    }
    let dist = sample(&config, 50, 50, 15);
    assert_eq!(frac(&dist, Immediate::Fin), 1.0, "exactly 50 → FIN/ACK");
    for len in [51usize, 52, 60, 100, 221] {
        let dist = sample(&config, len, 20, 16);
        assert_eq!(frac(&dist, Immediate::Rst), 1.0, "len {len} → RST");
    }
}

#[test]
fn fig10b_outline_107_always_times_out() {
    let config = ServerConfig::new(Method::ChaCha20IetfPoly1305, "pw", Profile::OUTLINE_1_0_7);
    for len in [1usize, 49, 50, 51, 100, 221] {
        let dist = sample(&config, len, 20, 17);
        assert_eq!(frac(&dist, Immediate::Wait), 1.0, "len {len}");
    }
}

// ---------------------------------------------------------------------
// Table 5: replay reactions
// ---------------------------------------------------------------------

fn genuine_first_packet(config: &ServerConfig, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = ClientSession::new(
        config,
        TargetAddr::Hostname(b"www.wikipedia.org".to_vec(), 443),
        &mut rng,
    );
    client.send(b"\x16\x03\x01\x02\x00\x01\x00\x01\xfc") // TLS-ish bytes
}

#[test]
fn table5_identical_replay_reactions() {
    // (profile, method, expected reaction to an identical replay)
    let cases = [
        (Profile::LIBEV_OLD, Method::Aes256Cfb, Immediate::Rst),
        (Profile::LIBEV_OLD, Method::Aes256Gcm, Immediate::Rst),
        (Profile::LIBEV_NEW, Method::Aes256Cfb, Immediate::Wait),
        (Profile::LIBEV_NEW, Method::Aes256Gcm, Immediate::Wait),
        // Outline (no replay filter): replay is accepted and proxied.
        (
            Profile::OUTLINE_1_0_7,
            Method::ChaCha20IetfPoly1305,
            Immediate::Connect,
        ),
        // Outline v1.1.0 added the replay defense.
        (
            Profile::OUTLINE_1_1_0,
            Method::ChaCha20IetfPoly1305,
            Immediate::Wait,
        ),
    ];
    for (profile, method, want) in cases {
        let config = ServerConfig::new(method, "pw", profile);
        let payload = genuine_first_packet(&config, 99);
        let mut server = ServerConn::new(config, 1);
        // Original connection.
        let c1 = server.open_conn();
        let first = classify(&server.on_data(c1, &payload));
        assert_eq!(
            first,
            Immediate::Connect,
            "{} {}: genuine connection must parse",
            profile.name,
            method.name()
        );
        // The replay.
        let c2 = server.open_conn();
        let replayed = classify(&server.on_data(c2, &payload));
        assert_eq!(
            replayed,
            want,
            "{} {}: identical replay",
            profile.name,
            method.name()
        );
    }
}

#[test]
fn table5_byte_changed_replay_aead() {
    // Changing byte 0 (inside the salt) breaks the subkey derivation:
    // auth failure → RST on old libev, silence on new libev and Outline
    // v1.0.7+.
    let cases = [
        (Profile::LIBEV_OLD, Immediate::Rst),
        (Profile::LIBEV_NEW, Immediate::Wait),
        (Profile::OUTLINE_1_0_7, Immediate::Wait),
    ];
    for (profile, want) in cases {
        let method = if profile.supports_stream {
            Method::Aes256Gcm
        } else {
            Method::ChaCha20IetfPoly1305
        };
        let config = ServerConfig::new(method, "pw", profile);
        let mut payload = genuine_first_packet(&config, 123);
        payload[0] ^= 0x55; // type R2: byte 0 changed
        let mut server = ServerConn::new(config, 2);
        let conn = server.open_conn();
        assert_eq!(
            classify(&server.on_data(conn, &payload)),
            want,
            "{}",
            profile.name
        );
    }
}

#[test]
fn byte16_changed_replay_hits_stream_replay_filter() {
    // Type R4 (byte 16 changed) leaves a 16-byte IV *intact*: on a
    // filterless stream server this is a chosen-ciphertext probe, but on
    // libev the unchanged IV trips the replay filter.
    let config = ServerConfig::new(Method::Aes256Cfb, "pw", Profile::LIBEV_OLD);
    let payload = genuine_first_packet(&config, 5);
    let mut server = ServerConn::new(config, 3);
    let c1 = server.open_conn();
    let _ = server.on_data(c1, &payload);
    let mut changed = payload.clone();
    changed[16] ^= 0xA0;
    let c2 = server.open_conn();
    assert_eq!(classify(&server.on_data(c2, &changed)), Immediate::Rst);
}

#[test]
fn byte16_changed_on_filterless_stream_is_chosen_ciphertext() {
    // Same probe against shadowsocks-python (no filter): byte 16 is the
    // address-type byte; flipping it re-rolls the 3/256 validity dice.
    let config = ServerConfig::new(Method::Aes256Cfb, "pw", Profile::SS_PYTHON);
    let payload = genuine_first_packet(&config, 6);
    let mut rng = StdRng::seed_from_u64(50);
    let mut outcomes = std::collections::HashSet::new();
    for _ in 0..100 {
        let mut server = ServerConn::new(config.clone(), 4);
        let mut changed = payload.clone();
        changed[16] ^= rng.gen_range(1..=255u8);
        let c = server.open_conn();
        outcomes.insert(classify(&server.on_data(c, &changed)));
    }
    // Mostly RST, occasionally something else — but never only waits.
    assert!(outcomes.contains(&Immediate::Rst));
}

#[test]
fn replay_after_restart_is_not_detected() {
    // §7.2's asymmetry: the filter forgets across restarts; the censor
    // does not.
    let config = ServerConfig::new(Method::Aes256Gcm, "pw", Profile::LIBEV_OLD);
    let payload = genuine_first_packet(&config, 77);
    let mut server = ServerConn::new(config, 5);
    let c1 = server.open_conn();
    let _ = server.on_data(c1, &payload);
    server.restart();
    let c2 = server.open_conn();
    assert_eq!(
        classify(&server.on_data(c2, &payload)),
        Immediate::Connect,
        "replay accepted after restart"
    );
}

#[test]
fn repeated_random_probe_reveals_replay_filter() {
    // §5.3: send the same random probe twice; a filtered server reacts
    // differently the second time. (~10% of the GFW's NR2 probes were
    // observed repeated, presumably for this purpose.)
    let mut rng = StdRng::seed_from_u64(1000);
    // Craft a random probe that decrypts to a valid spec so the first
    // send causes a connect attempt; retry until we find one.
    let config = ServerConfig::new(Method::Aes256Ctr, "pw", Profile::LIBEV_OLD);
    let mut found = false;
    for _ in 0..2000 {
        let probe = random_probe(&mut rng, 221);
        let mut server = ServerConn::new(config.clone(), 6);
        let c1 = server.open_conn();
        if classify(&server.on_data(c1, &probe)) == Immediate::Connect {
            let c2 = server.open_conn();
            let second = classify(&server.on_data(c2, &probe));
            assert_eq!(second, Immediate::Rst, "filter catches the repeat");
            found = true;
            break;
        }
    }
    assert!(found, "no valid-decrypting probe found in budget");
}
