//! Tests of the netsim adapters: the full Shadowsocks proxy app
//! (hostname resolution, relay in both directions, idle timeout, DNS
//! failure path) and the §4.1 sink/responding servers.

use netsim::app::{App, AppEvent, Ctx};
use netsim::capture::Capture;
use netsim::conn::TcpTuning;
use netsim::host::HostConfig;
use netsim::time::{Duration, SimTime};
use netsim::{SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shadowsocks::apps::{RespondingServerApp, SinkServerApp, SsServerApp};
use shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use sscrypto::method::Method;
use std::cell::RefCell;
use std::rc::Rc;

struct ProxyClient {
    config: ServerConfig,
    target: TargetAddr,
    request: Vec<u8>,
    received: Rc<RefCell<Vec<u8>>>,
    events: Rc<RefCell<Vec<String>>>,
    session: Option<ClientSession>,
    rng: StdRng,
}

impl App for ProxyClient {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Connected { conn } => {
                let mut s = ClientSession::new(&self.config, self.target.clone(), &mut self.rng);
                let wire = s.send(&self.request);
                self.session = Some(s);
                ctx.send(conn, wire);
            }
            AppEvent::Data { data, .. } => {
                if let Some(s) = &mut self.session {
                    self.received.borrow_mut().extend(s.recv(&data));
                }
            }
            AppEvent::PeerFin { conn } => {
                self.events.borrow_mut().push("peer_fin".into());
                ctx.fin(conn);
            }
            AppEvent::PeerRst { .. } => self.events.borrow_mut().push("peer_rst".into()),
            AppEvent::ConnectFailed { .. } => {
                self.events.borrow_mut().push("connect_failed".into())
            }
            _ => {}
        }
    }
}

struct Httpish;
impl App for Httpish {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        if let AppEvent::Data { conn, data } = ev {
            let mut resp = b"HTTP/1.1 200 OK\r\n\r\n".to_vec();
            resp.extend_from_slice(&data);
            ctx.send(conn, resp);
        }
    }
}

struct World {
    sim: Simulator,
    server_ip: netsim::packet::Ipv4,
    web_ip: netsim::packet::Ipv4,
    client_ip: netsim::packet::Ipv4,
    server_app: netsim::app::AppId,
}

fn build(config: &ServerConfig) -> World {
    let mut sim = Simulator::new(SimConfig::default(), 44);
    let server_ip = sim.add_host(HostConfig::outside("ss"));
    let web_ip = sim.add_host(HostConfig::outside("web"));
    let client_ip = sim.add_host(HostConfig::china("client"));
    let web = sim.add_app(Box::new(Httpish));
    sim.listen((web_ip, 80), web);
    let server_app = sim.add_app(Box::new(SsServerApp::new(config.clone(), server_ip, 7)));
    sim.listen((server_ip, 8388), server_app);
    World {
        sim,
        server_ip,
        web_ip,
        client_ip,
        server_app,
    }
}

fn proxy_client(
    world: &mut World,
    config: &ServerConfig,
    target: TargetAddr,
) -> (Rc<RefCell<Vec<u8>>>, Rc<RefCell<Vec<String>>>) {
    let received = Rc::new(RefCell::new(Vec::new()));
    let events = Rc::new(RefCell::new(Vec::new()));
    let app = world.sim.add_app(Box::new(ProxyClient {
        config: config.clone(),
        target,
        request: b"GET /a HTTP/1.1\r\n\r\n".to_vec(),
        received: received.clone(),
        events: events.clone(),
        session: None,
        rng: StdRng::seed_from_u64(5),
    }));
    world.sim.connect_at(
        SimTime::ZERO,
        app,
        world.client_ip,
        (world.server_ip, 8388),
        TcpTuning::default(),
    );
    (received, events)
}

#[test]
fn proxies_by_ip_target_end_to_end() {
    let config = ServerConfig::new(Method::Aes256Gcm, "apps-pw", Profile::LIBEV_NEW);
    let mut world = build(&config);
    let target = TargetAddr::Ipv4(world.web_ip.0, 80);
    let (received, _) = proxy_client(&mut world, &config, target);
    world.sim.run_until(SimTime::ZERO + Duration::from_secs(5));
    assert!(
        received.borrow().starts_with(b"HTTP/1.1 200 OK"),
        "got: {:?}",
        String::from_utf8_lossy(&received.borrow())
    );
    assert!(received.borrow().ends_with(b"GET /a HTTP/1.1\r\n\r\n"));
}

#[test]
fn proxies_by_hostname_with_resolver() {
    let config = ServerConfig::new(Method::Aes256Cfb, "apps-pw", Profile::LIBEV_OLD);
    let mut world = build(&config);
    // Register the hostname on the server app's resolver.
    {
        // Re-add the server app with a resolver entry (apps are boxed
        // into the sim; configure before traffic instead).
        let mut app = SsServerApp::new(config.clone(), world.server_ip, 8);
        app.resolver.insert(b"intra.example".to_vec(), world.web_ip);
        let id = world.sim.add_app(Box::new(app));
        world.sim.listen((world.server_ip, 8389), id);
    }
    let received = Rc::new(RefCell::new(Vec::new()));
    let events = Rc::new(RefCell::new(Vec::new()));
    let capp = world.sim.add_app(Box::new(ProxyClient {
        config: config.clone(),
        target: TargetAddr::Hostname(b"intra.example".to_vec(), 80),
        request: b"GET /h HTTP/1.1\r\n\r\n".to_vec(),
        received: received.clone(),
        events,
        session: None,
        rng: StdRng::seed_from_u64(6),
    }));
    world.sim.connect_at(
        SimTime::ZERO,
        capp,
        world.client_ip,
        (world.server_ip, 8389),
        TcpTuning::default(),
    );
    world.sim.run_until(SimTime::ZERO + Duration::from_secs(5));
    assert!(received.borrow().starts_with(b"HTTP/1.1 200 OK"));
}

#[test]
fn unresolvable_hostname_closes_with_fin() {
    let config = ServerConfig::new(Method::Aes256Gcm, "apps-pw", Profile::LIBEV_NEW);
    let mut world = build(&config);
    let target = TargetAddr::Hostname(b"no.such.host".to_vec(), 80);
    let (received, events) = proxy_client(&mut world, &config, target);
    world.sim.run_until(SimTime::ZERO + Duration::from_secs(5));
    assert!(received.borrow().is_empty());
    assert_eq!(events.borrow().clone(), vec!["peer_fin"]);
}

#[test]
fn idle_connection_closed_by_server_timeout() {
    let mut config = ServerConfig::new(Method::Aes256Gcm, "apps-pw", Profile::LIBEV_NEW);
    config.timeout_secs = 30;
    let mut world = build(&config);
    // A client that connects, completes the handshake, and never sends.
    struct Mute {
        events: Rc<RefCell<Vec<String>>>,
    }
    impl App for Mute {
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
            match ev {
                AppEvent::Connected { conn } => {
                    // Send one byte so the server learns of the conn but
                    // never completes a header.
                    ctx.send(conn, vec![0x42]);
                }
                AppEvent::PeerFin { conn } => {
                    self.events
                        .borrow_mut()
                        .push(format!("fin@{}", ctx.now.as_secs_f64().round()));
                    ctx.fin(conn);
                }
                _ => {}
            }
        }
    }
    let events = Rc::new(RefCell::new(Vec::new()));
    let capp = world.sim.add_app(Box::new(Mute {
        events: events.clone(),
    }));
    world.sim.connect_at(
        SimTime::ZERO,
        capp,
        world.client_ip,
        (world.server_ip, 8388),
        TcpTuning::default(),
    );
    world.sim.run();
    let evs = events.borrow().clone();
    assert_eq!(evs.len(), 1, "{evs:?}");
    assert!(evs[0].starts_with("fin@30"), "{evs:?}");
}

#[test]
fn sink_server_closes_after_hold() {
    let mut sim = Simulator::new(SimConfig::default(), 50);
    let server = sim.add_host(HostConfig::outside("sink"));
    let client = sim.add_host(HostConfig::china("client"));
    let cap = sim.add_capture(Capture::all());
    let sink = sim.add_app(Box::new(SinkServerApp {
        hold: Duration::from_secs(30),
    }));
    sim.listen((server, 1), sink);
    struct Push;
    impl App for Push {
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
            match ev {
                AppEvent::Connected { conn } => ctx.send(conn, vec![1; 100]),
                AppEvent::PeerFin { conn } => ctx.fin(conn),
                _ => {}
            }
        }
    }
    let capp = sim.add_app(Box::new(Push));
    sim.connect_at(
        SimTime::ZERO,
        capp,
        client,
        (server, 1),
        TcpTuning::default(),
    );
    sim.run();
    // Sink never sends data; it FINs at ~30 s.
    let server_data = sim
        .capture(cap)
        .data_packets()
        .filter(|p| p.src.0 == server)
        .count();
    assert_eq!(server_data, 0);
    let fin = sim
        .capture(cap)
        .packets()
        .iter()
        .find(|p| p.flags.fin && p.src.0 == server)
        .expect("sink must close");
    assert!((29.0..32.0).contains(&fin.sent_at.as_secs_f64()));
}

#[test]
fn responding_server_answers_everything() {
    let mut sim = Simulator::new(SimConfig::default(), 51);
    let server = sim.add_host(HostConfig::outside("responder"));
    let client = sim.add_host(HostConfig::china("client"));
    let app = sim.add_app(Box::new(RespondingServerApp::default()));
    sim.listen((server, 1), app);
    let got = Rc::new(RefCell::new(0usize));
    struct Probe {
        got: Rc<RefCell<usize>>,
    }
    impl App for Probe {
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
            match ev {
                AppEvent::Connected { conn } => ctx.send(conn, vec![0xEE; 221]),
                AppEvent::Data { conn, data } => {
                    *self.got.borrow_mut() += data.len();
                    ctx.fin(conn);
                }
                _ => {}
            }
        }
    }
    let capp = sim.add_app(Box::new(Probe { got: got.clone() }));
    sim.connect_at(
        SimTime::ZERO,
        capp,
        client,
        (server, 1),
        TcpTuning::default(),
    );
    sim.run();
    let n = *got.borrow();
    assert!((1..=1000).contains(&n), "responder sent {n} bytes");
}

#[test]
fn proxy_works_for_every_aead_method() {
    for method in [
        Method::Aes128Gcm,
        Method::Aes192Gcm,
        Method::Aes256Gcm,
        Method::ChaCha20IetfPoly1305,
        Method::XChaCha20IetfPoly1305,
    ] {
        let config = ServerConfig::new(method, "apps-pw", Profile::LIBEV_NEW);
        let mut world = build(&config);
        let target = TargetAddr::Ipv4(world.web_ip.0, 80);
        let (received, _) = proxy_client(&mut world, &config, target);
        world.sim.run_until(SimTime::ZERO + Duration::from_secs(5));
        assert!(
            received.borrow().starts_with(b"HTTP/1.1 200 OK"),
            "{} failed",
            method.name()
        );
        let _ = world.server_app;
    }
}
