//! Property tests for the Shadowsocks wire codecs (§2 of the paper).
//!
//! TCP gives the receiver no say in segment boundaries, so both
//! constructions must decode identically however the ciphertext is
//! sliced: feeding a stream or AEAD decryptor arbitrary splits of the
//! same bytes must reproduce the plaintext exactly. And AEAD must stay
//! an authenticated channel: any single-bit tamper anywhere past the
//! salt is rejected, never silently decoded.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowsocks::wire::{AeadDecryptor, AeadEncryptor, StreamDecryptor, StreamEncryptor};
use sscrypto::method::{Kind, Method, ALL_METHODS};

fn key_for(m: Method) -> Vec<u8> {
    sscrypto::kdf::evp_bytes_to_key(b"prop-password", m.key_len())
}

/// Pick a method of the given kind from a full-range index.
fn pick(kind: Kind, idx: usize) -> Method {
    let of_kind: Vec<Method> = ALL_METHODS
        .iter()
        .copied()
        .filter(|m| m.kind() == kind)
        .collect();
    of_kind[idx % of_kind.len()]
}

/// Split `data` into segments at the given cut fractions.
fn segments(data: &[u8], cuts: &[f64]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|f| ((data.len() as f64) * f) as usize)
        .collect();
    points.sort_unstable();
    points.dedup();
    let mut out = Vec::new();
    let mut prev = 0;
    for p in points {
        if p > prev && p < data.len() {
            out.push(data[prev..p].to_vec());
            prev = p;
        }
    }
    out.push(data[prev..].to_vec());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stream construction: plaintext round-trips under arbitrary
    /// encrypt-call and decrypt-segment boundaries, IV split included.
    #[test]
    fn stream_roundtrip_any_segmentation(
        midx in 0usize..8,
        plain in proptest::collection::vec(any::<u8>(), 1..3000),
        enc_cuts in proptest::collection::vec(0.0f64..1.0, 0..4),
        dec_cuts in proptest::collection::vec(0.0f64..1.0, 0..8),
        iv_seed in any::<u64>(),
    ) {
        let m = pick(Kind::Stream, midx);
        let key = key_for(m);
        let mut iv = vec![0u8; m.iv_len()];
        StdRng::seed_from_u64(iv_seed).fill(&mut iv[..]);

        let mut enc = StreamEncryptor::new(m, &key, iv);
        let mut ct = Vec::new();
        for part in segments(&plain, &enc_cuts) {
            ct.extend(enc.encrypt(&part));
        }

        let mut dec = StreamDecryptor::new(m, &key);
        let mut got = Vec::new();
        for seg in segments(&ct, &dec_cuts) {
            got.extend(dec.decrypt(&seg));
        }
        prop_assert!(dec.iv_complete());
        prop_assert_eq!(&got, &plain, "{}", m.name());
    }

    /// AEAD construction: chunked plaintext round-trips under arbitrary
    /// receive-segment boundaries (salt, length and payload frames all
    /// split at random points).
    #[test]
    fn aead_roundtrip_any_segmentation(
        midx in 0usize..8,
        plain in proptest::collection::vec(any::<u8>(), 1..3000),
        enc_cuts in proptest::collection::vec(0.0f64..1.0, 0..4),
        dec_cuts in proptest::collection::vec(0.0f64..1.0, 0..8),
        salt_seed in any::<u64>(),
    ) {
        let m = pick(Kind::Aead, midx);
        let key = key_for(m);
        let mut salt = vec![0u8; m.iv_len()];
        StdRng::seed_from_u64(salt_seed).fill(&mut salt[..]);

        let mut enc = AeadEncryptor::new(m, &key, salt);
        let mut ct = Vec::new();
        for part in segments(&plain, &enc_cuts) {
            ct.extend(enc.seal(&part));
        }

        let mut dec = AeadDecryptor::new(m, &key);
        let mut got = Vec::new();
        for seg in segments(&ct, &dec_cuts) {
            let chunks = match dec.decrypt(&seg) {
                Ok(c) => c,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "{}: spurious auth failure: {e:?}", m.name()
                ))),
            };
            for c in chunks {
                got.extend(c);
            }
        }
        prop_assert!(dec.salt_complete());
        prop_assert_eq!(&got, &plain, "{}", m.name());
    }

    /// Zero-copy API equivalence: `encrypt_into`/`seal_into` appending
    /// to one reused scratch buffer produce exactly the bytes the
    /// Vec-returning APIs produce, call for call, under arbitrary
    /// plaintext segmentation.
    #[test]
    fn seal_into_matches_vec_api(
        smidx in 0usize..8,
        amidx in 0usize..8,
        plain in proptest::collection::vec(any::<u8>(), 1..3000),
        cuts in proptest::collection::vec(0.0f64..1.0, 0..6),
    ) {
        // Stream construction.
        let m = pick(Kind::Stream, smidx);
        let key = key_for(m);
        let iv = vec![0x5eu8; m.iv_len()];
        let mut old = StreamEncryptor::new(m, &key, iv.clone());
        let mut new = StreamEncryptor::new(m, &key, iv);
        let mut old_ct = Vec::new();
        let mut new_ct = Vec::new();
        for part in segments(&plain, &cuts) {
            old_ct.extend(old.encrypt(&part));
            new.encrypt_into(&part, &mut new_ct);
        }
        prop_assert_eq!(&old_ct, &new_ct, "{}", m.name());

        // AEAD construction.
        let m = pick(Kind::Aead, amidx);
        let key = key_for(m);
        let salt = vec![0x6fu8; m.iv_len()];
        let mut old = AeadEncryptor::new(m, &key, salt.clone());
        let mut new = AeadEncryptor::new(m, &key, salt);
        let mut old_ct = Vec::new();
        let mut new_ct = Vec::new();
        for part in segments(&plain, &cuts) {
            old_ct.extend(old.seal(&part));
            new.seal_into(&part, &mut new_ct);
        }
        prop_assert_eq!(&old_ct, &new_ct, "{}", m.name());
    }

    /// Zero-copy API equivalence on the receive side: for any
    /// segmentation of the ciphertext, `decrypt_into` appends exactly
    /// the concatenation of the chunks the Vec-returning `decrypt`
    /// yields, and both agree on every auth verdict.
    #[test]
    fn decrypt_into_matches_vec_api(
        midx in 0usize..8,
        plain in proptest::collection::vec(any::<u8>(), 1..3000),
        dec_cuts in proptest::collection::vec(0.0f64..1.0, 0..8),
        tamper_sel in 0u8..4,
        tamper_pos in 0.0f64..1.0,
        tamper_bit in 0u8..8,
    ) {
        let m = pick(Kind::Aead, midx);
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![0x51u8; m.iv_len()]);
        let mut ct = enc.seal(&plain);
        // A quarter of the cases tamper with the ciphertext so the two
        // APIs are also compared on the auth-failure path.
        if tamper_sel == 0 {
            let pos = ((ct.len() as f64) * tamper_pos) as usize % ct.len();
            ct[pos] ^= 1 << tamper_bit;
        }

        let mut old = AeadDecryptor::new(m, &key);
        let mut new = AeadDecryptor::new(m, &key);
        let mut old_plain = Vec::new();
        let mut new_plain = Vec::new();
        for seg in segments(&ct, &dec_cuts) {
            let old_res = old.decrypt(&seg);
            let new_res = new.decrypt_into(&seg, &mut new_plain);
            prop_assert_eq!(
                old_res.is_err(),
                new_res.is_err(),
                "{}: auth verdicts diverge",
                m.name()
            );
            if let Ok(chunks) = old_res {
                for c in chunks {
                    old_plain.extend(c);
                }
            }
            prop_assert_eq!(old.buffered(), new.buffered(), "{}", m.name());
            prop_assert_eq!(old.phase(), new.phase(), "{}", m.name());
        }
        prop_assert_eq!(&old_plain, &new_plain, "{}", m.name());
    }

    /// AEAD reject-on-tamper: flipping any single bit after the salt
    /// poisons the session — decryption reports an auth error instead
    /// of yielding plaintext, however the tampered bytes are segmented.
    /// (Salt bytes are excluded: the salt is not authenticated itself,
    /// it keys the subkey, so a salt flip surfaces as a tag failure on
    /// the first frame — covered by flipping byte `salt_len` onwards
    /// having the same observable outcome as flipping inside the salt,
    /// which the unit tests pin separately.)
    #[test]
    fn aead_rejects_any_bit_flip(
        midx in 0usize..8,
        plain in proptest::collection::vec(any::<u8>(), 1..800),
        flip_pos in 0.0f64..1.0,
        flip_bit in 0u8..8,
        dec_cuts in proptest::collection::vec(0.0f64..1.0, 0..6),
    ) {
        let m = pick(Kind::Aead, midx);
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![0x42u8; m.iv_len()]);
        let mut ct = enc.seal(&plain);

        // Flip one bit anywhere in the ciphertext, salt included — a
        // salt flip derives the wrong subkey, so the first tag check
        // must still fail.
        let pos = ((ct.len() as f64) * flip_pos) as usize % ct.len();
        ct[pos] ^= 1 << flip_bit;

        let mut dec = AeadDecryptor::new(m, &key);
        let mut failed = false;
        for seg in segments(&ct, &dec_cuts) {
            if dec.decrypt(&seg).is_err() {
                failed = true;
                break;
            }
        }
        prop_assert!(
            failed,
            "{}: bit {} of byte {} flipped undetected",
            m.name(), flip_bit, pos
        );
    }
}
