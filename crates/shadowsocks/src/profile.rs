//! Implementation behaviour profiles.
//!
//! The paper's central insight (§5) is that different Shadowsocks
//! implementations react *differently* to malformed input, and those
//! differences are what the GFW's probes measure. A [`Profile`] is a
//! declarative transcription of one implementation+version's quirks;
//! the [`crate::server::ServerConn`] engine interprets it.
//!
//! Sources: §5.2.1/Fig 10/Table 5 of the paper; the shadowsocks-libev
//! commit `a99c39c` ("Simplify the server auto blocking mechanism")
//! that turned RSTs into timeouts in v3.3.1; the outline-ss-server
//! commit `c70d512` ("probing resistance via timeout") in v1.0.7; and
//! outline-ss-server v1.1.0's replay defense.

use serde::{Deserialize, Serialize};

/// How a server reacts when it hits a protocol error (bad address type,
/// failed authentication, detected replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorReaction {
    /// Close immediately. Whether the wire shows RST or FIN/ACK depends
    /// on whether unread bytes sit in the kernel buffer (Frolov et al.);
    /// for the probe shapes in this study it manifests as RST.
    CloseImmediately,
    /// Keep reading forever — never reveal the error (the post-fix
    /// behaviour; manifests as TIMEOUT).
    KeepReading,
}

/// Shadowsocks-libev versions studied by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum LibevVersion {
    V3_0_8,
    V3_1_3,
    V3_2_5,
    V3_3_1,
    V3_3_3,
}

/// OutlineVPN (outline-ss-server) versions studied by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OutlineVersion {
    V1_0_6,
    V1_0_7,
    V1_0_8,
    /// Released February 2020 with the replay defense (§11).
    V1_1_0,
}

/// A behavioural profile: every reaction-relevant implementation quirk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Display name, e.g. "ss-libev v3.3.1".
    pub name: &'static str,
    /// Reaction to protocol errors.
    pub error_reaction: ErrorReaction,
    /// Masks the upper nibble of the address type before validating
    /// (raises a random byte's pass rate from 3/256 to 3/16, §5.2.1).
    pub masks_addr_type: bool,
    /// Has a nonce (IV/salt) replay filter.
    pub replay_filter: bool,
    /// AEAD: waits for `salt + 2 + 16 + 16` bytes before attempting to
    /// decrypt the length chunk (libev); `false` means it attempts at
    /// `salt + 2 + 16` (Outline).
    pub aead_waits_for_payload_tag: bool,
    /// Outline v1.0.6 quirk: a probe of exactly `salt + 18` bytes gets
    /// an immediate FIN/ACK; anything longer gets RST.
    pub fin_at_exact_header: bool,
    /// Supports stream ciphers at all (Outline is AEAD-only).
    pub supports_stream: bool,
}

impl Profile {
    /// shadowsocks-libev v3.0.8 … v3.2.5 (the pre-fix behaviour).
    pub const LIBEV_OLD: Profile = Profile {
        name: "ss-libev v3.0.8-v3.2.5",
        error_reaction: ErrorReaction::CloseImmediately,
        masks_addr_type: true,
        replay_filter: true,
        aead_waits_for_payload_tag: true,
        fin_at_exact_header: false,
        supports_stream: true,
    };

    /// shadowsocks-libev v3.3.1 … v3.3.3 (errors become timeouts).
    pub const LIBEV_NEW: Profile = Profile {
        name: "ss-libev v3.3.1-v3.3.3",
        error_reaction: ErrorReaction::KeepReading,
        masks_addr_type: true,
        replay_filter: true,
        aead_waits_for_payload_tag: true,
        fin_at_exact_header: false,
        supports_stream: true,
    };

    /// OutlineVPN v1.0.6 (FIN at exactly 50 bytes, RST above; no replay
    /// filter).
    pub const OUTLINE_1_0_6: Profile = Profile {
        name: "OutlineVPN v1.0.6",
        error_reaction: ErrorReaction::CloseImmediately,
        masks_addr_type: false,
        replay_filter: false,
        aead_waits_for_payload_tag: false,
        fin_at_exact_header: true,
        supports_stream: false,
    };

    /// OutlineVPN v1.0.7–v1.0.8 (probing resistance via timeout; still
    /// no replay filter).
    pub const OUTLINE_1_0_7: Profile = Profile {
        name: "OutlineVPN v1.0.7-v1.0.8",
        error_reaction: ErrorReaction::KeepReading,
        masks_addr_type: false,
        replay_filter: false,
        aead_waits_for_payload_tag: false,
        fin_at_exact_header: false,
        supports_stream: false,
    };

    /// OutlineVPN v1.1.0 (February 2020: replay defense added, §11).
    pub const OUTLINE_1_1_0: Profile = Profile {
        name: "OutlineVPN v1.1.0",
        error_reaction: ErrorReaction::KeepReading,
        masks_addr_type: false,
        replay_filter: true,
        aead_waits_for_payload_tag: false,
        fin_at_exact_header: false,
        supports_stream: false,
    };

    /// shadowsocks-python — no address-type masking, immediate close on
    /// error, no replay filter. One of the two implementations whose
    /// servers were actually blocked in the paper's experiments (§6).
    pub const SS_PYTHON: Profile = Profile {
        name: "shadowsocks-python",
        error_reaction: ErrorReaction::CloseImmediately,
        masks_addr_type: false,
        replay_filter: false,
        aead_waits_for_payload_tag: true,
        fin_at_exact_header: false,
        supports_stream: true,
    };

    /// ShadowsocksR — stream-cipher-centric fork, no replay filter, no
    /// masking. The other implementation blocked in §6.
    pub const SSR: Profile = Profile {
        name: "ShadowsocksR",
        error_reaction: ErrorReaction::CloseImmediately,
        masks_addr_type: false,
        replay_filter: false,
        aead_waits_for_payload_tag: true,
        fin_at_exact_header: false,
        supports_stream: true,
    };

    /// shadowsocks-rust ≤ v1.8.4: AEAD-capable, silent on errors, but
    /// no replay filter yet.
    pub const SS_RUST_OLD: Profile = Profile {
        name: "shadowsocks-rust <=v1.8.4",
        error_reaction: ErrorReaction::KeepReading,
        masks_addr_type: false,
        replay_filter: false,
        aead_waits_for_payload_tag: true,
        fin_at_exact_header: false,
        supports_stream: true,
    };

    /// shadowsocks-rust v1.8.5 — the replay-defense release the paper's
    /// preliminary disclosure potentially led to (§11).
    pub const SS_RUST_1_8_5: Profile = Profile {
        name: "shadowsocks-rust v1.8.5",
        error_reaction: ErrorReaction::KeepReading,
        masks_addr_type: false,
        replay_filter: true,
        aead_waits_for_payload_tag: true,
        fin_at_exact_header: false,
        supports_stream: true,
    };

    /// All profiles the paper's prober-simulator experiment covers
    /// (§5.1's selection) plus the post-disclosure releases, in a
    /// stable order.
    pub const ALL: &'static [Profile] = &[
        Profile::LIBEV_OLD,
        Profile::LIBEV_NEW,
        Profile::OUTLINE_1_0_6,
        Profile::OUTLINE_1_0_7,
        Profile::OUTLINE_1_1_0,
        Profile::SS_PYTHON,
        Profile::SSR,
        Profile::SS_RUST_OLD,
        Profile::SS_RUST_1_8_5,
    ];

    /// The AEAD length-header threshold: bytes the server wants before
    /// attempting its first decryption, for a given salt length.
    ///
    /// libev reads until it has the salt, the 2+16-byte length chunk,
    /// the 16-byte payload tag *and at least one payload byte* — so its
    /// first decryption (and RST) happens at `salt + 35` bytes, matching
    /// Fig 10b's "TIMEOUT through 50, RST from 51" for a 16-byte salt.
    /// Outline attempts as soon as the `salt + 18`-byte header is
    /// complete.
    pub fn aead_threshold(&self, salt_len: usize) -> usize {
        if self.aead_waits_for_payload_tag {
            salt_len + 2 + 16 + 16 + 1
        } else {
            salt_len + 2 + 16
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_fig10b() {
        // libev with a 16-byte salt starts decrypting (and RSTing) at 51
        // bytes; Outline with its 32-byte salt reacts at exactly 50.
        assert_eq!(Profile::LIBEV_OLD.aead_threshold(16), 51);
        assert_eq!(Profile::LIBEV_OLD.aead_threshold(24), 59);
        assert_eq!(Profile::LIBEV_OLD.aead_threshold(32), 67);
        assert_eq!(Profile::OUTLINE_1_0_6.aead_threshold(32), 50);
    }

    #[test]
    fn fix_history_is_encoded() {
        assert_eq!(
            Profile::LIBEV_OLD.error_reaction,
            ErrorReaction::CloseImmediately
        );
        assert_eq!(
            Profile::LIBEV_NEW.error_reaction,
            ErrorReaction::KeepReading
        );
        assert!(!Profile::OUTLINE_1_0_7.replay_filter);
        assert!(Profile::OUTLINE_1_1_0.replay_filter);
        // §11: ss-rust gained its replay defense in v1.8.5.
        assert!(!Profile::SS_RUST_OLD.replay_filter);
        assert!(Profile::SS_RUST_1_8_5.replay_filter);
    }

    #[test]
    fn outline_is_aead_only() {
        assert!(!Profile::OUTLINE_1_0_6.supports_stream);
        assert!(Profile::LIBEV_OLD.supports_stream);
    }

    #[test]
    fn profile_names_unique() {
        let mut names: Vec<_> = Profile::ALL.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Profile::ALL.len());
    }
}
