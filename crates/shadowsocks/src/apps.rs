//! netsim adapters: the Shadowsocks server as a simulated application,
//! plus the sink/responding servers of the paper's random-data
//! experiments (§4.1).

use crate::config::ServerConfig;
use crate::server::{ServerAction, ServerConn};
use crate::TargetAddr;
use netsim::app::{App, AppEvent, Ctx};
use netsim::conn::{ConnId, TcpTuning};
use netsim::packet::Ipv4;
use netsim::time::Duration;
use rand::Rng;
use std::collections::HashMap;

const TOKEN_IDLE: u64 = 0;
const TOKEN_DNS_FAIL: u64 = 1;

/// A full Shadowsocks proxy server running on a netsim host.
///
/// Inbound connections feed the [`ServerConn`] engine; `ConnectTarget`
/// actions become outbound simulated connections; relayed data flows in
/// both directions. Idle connections are closed with FIN after the
/// configured timeout (libev's default 60 s — the paper notes the GFW's
/// probers always give up first, in under 10 s).
pub struct SsServerApp {
    engine: ServerConn,
    host: Ipv4,
    /// Hostname → address resolutions; unlisted names NXDOMAIN after
    /// `dns_delay`.
    pub resolver: HashMap<Vec<u8>, Ipv4>,
    dns_delay: Duration,
    idle_timeout: Duration,
    by_inbound: HashMap<ConnId, u64>,
    inbound_of_outbound: HashMap<ConnId, ConnId>,
    outbound_of_inbound: HashMap<ConnId, ConnId>,
    last_activity: HashMap<ConnId, netsim::time::SimTime>,
}

impl SsServerApp {
    /// Create the app for a server at `host`.
    pub fn new(config: ServerConfig, host: Ipv4, seed: u64) -> SsServerApp {
        let idle_timeout = Duration::from_secs(config.timeout_secs);
        SsServerApp {
            engine: ServerConn::new(config, seed),
            host,
            resolver: HashMap::new(),
            dns_delay: Duration::from_millis(100),
            idle_timeout,
            by_inbound: HashMap::new(),
            inbound_of_outbound: HashMap::new(),
            outbound_of_inbound: HashMap::new(),
            last_activity: HashMap::new(),
        }
    }

    /// Access the engine (e.g. to trigger a simulated restart).
    pub fn engine_mut(&mut self) -> &mut ServerConn {
        &mut self.engine
    }

    fn token(conn: ConnId, kind: u64) -> u64 {
        conn.0 * 4 + kind
    }

    fn untoken(token: u64) -> (ConnId, u64) {
        (ConnId(token / 4), token % 4)
    }

    fn run_actions(&mut self, inbound: ConnId, actions: Vec<ServerAction>, ctx: &mut Ctx) {
        for action in actions {
            match action {
                ServerAction::ConnectTarget(target) => match target {
                    TargetAddr::Ipv4(ip, port) => {
                        let out = ctx.connect(self.host, (Ipv4(ip), port), TcpTuning::default());
                        self.inbound_of_outbound.insert(out, inbound);
                        self.outbound_of_inbound.insert(inbound, out);
                    }
                    TargetAddr::Hostname(name, port) => {
                        if let Some(&ip) = self.resolver.get(&name) {
                            let out = ctx.connect(self.host, (ip, port), TcpTuning::default());
                            self.inbound_of_outbound.insert(out, inbound);
                            self.outbound_of_inbound.insert(inbound, out);
                        } else {
                            // NXDOMAIN after the resolver round-trip.
                            ctx.set_timer(self.dns_delay, Self::token(inbound, TOKEN_DNS_FAIL));
                        }
                    }
                    TargetAddr::Ipv6(..) => {
                        // No v6 route in the simulation: immediate failure,
                        // same path as a failed resolve.
                        ctx.set_timer(self.dns_delay, Self::token(inbound, TOKEN_DNS_FAIL));
                    }
                },
                ServerAction::RelayToTarget(data) => {
                    if let Some(&out) = self.outbound_of_inbound.get(&inbound) {
                        ctx.send(out, data);
                    }
                }
                ServerAction::SendToClient(data) => {
                    ctx.send(inbound, data);
                }
                ServerAction::CloseRst => {
                    ctx.rst(inbound);
                    self.teardown(inbound, ctx, false);
                }
                ServerAction::CloseFin => {
                    ctx.fin(inbound);
                    self.teardown(inbound, ctx, false);
                }
            }
        }
    }

    fn teardown(&mut self, inbound: ConnId, ctx: &mut Ctx, close_wire: bool) {
        if let Some(id) = self.by_inbound.remove(&inbound) {
            self.engine.close_conn(id);
        }
        self.last_activity.remove(&inbound);
        if let Some(out) = self.outbound_of_inbound.remove(&inbound) {
            self.inbound_of_outbound.remove(&out);
            ctx.fin(out);
        }
        if close_wire {
            ctx.fin(inbound);
        }
    }
}

impl App for SsServerApp {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::ConnIncoming { conn, .. } => {
                let id = self.engine.open_conn();
                self.by_inbound.insert(conn, id);
                self.last_activity.insert(conn, ctx.now);
                ctx.set_timer(self.idle_timeout, Self::token(conn, TOKEN_IDLE));
            }
            AppEvent::Data { conn, data } => {
                if let Some(&id) = self.by_inbound.get(&conn) {
                    self.last_activity.insert(conn, ctx.now);
                    let actions = self.engine.on_data(id, &data);
                    self.run_actions(conn, actions, ctx);
                } else if let Some(&inbound) = self.inbound_of_outbound.get(&conn) {
                    if let Some(&id) = self.by_inbound.get(&inbound) {
                        self.last_activity.insert(inbound, ctx.now);
                        let actions = self.engine.on_target_data(id, &data);
                        self.run_actions(inbound, actions, ctx);
                    }
                }
            }
            AppEvent::Connected { conn } => {
                // An outbound target connection came up.
                if let Some(&inbound) = self.inbound_of_outbound.get(&conn) {
                    if let Some(&id) = self.by_inbound.get(&inbound) {
                        let actions = self.engine.on_target_connected(id);
                        self.run_actions(inbound, actions, ctx);
                    }
                }
            }
            AppEvent::ConnectFailed { conn, .. } => {
                if let Some(&inbound) = self.inbound_of_outbound.get(&conn) {
                    if let Some(&id) = self.by_inbound.get(&inbound) {
                        let actions = self.engine.on_target_failed(id);
                        self.run_actions(inbound, actions, ctx);
                    }
                }
            }
            AppEvent::PeerFin { conn } | AppEvent::PeerRst { conn } => {
                if self.by_inbound.contains_key(&conn) {
                    self.teardown(conn, ctx, true);
                } else if let Some(inbound) = self.inbound_of_outbound.remove(&conn) {
                    // Target side went away: close the client side too.
                    self.outbound_of_inbound.remove(&inbound);
                    if self.by_inbound.contains_key(&inbound) {
                        self.teardown(inbound, ctx, true);
                    }
                }
            }
            AppEvent::Timer { token } => {
                let (conn, kind) = Self::untoken(token);
                match kind {
                    TOKEN_IDLE => {
                        if let Some(&last) = self.last_activity.get(&conn) {
                            let idle = ctx.now.since(last);
                            if idle >= self.idle_timeout {
                                self.teardown(conn, ctx, true);
                            } else {
                                ctx.set_timer(
                                    self.idle_timeout - idle,
                                    Self::token(conn, TOKEN_IDLE),
                                );
                            }
                        }
                    }
                    TOKEN_DNS_FAIL => {
                        if let Some(&id) = self.by_inbound.get(&conn) {
                            let actions = self.engine.on_target_failed(id);
                            self.run_actions(conn, actions, ctx);
                        }
                    }
                    _ => {}
                }
            }
            AppEvent::BulkDelivered { .. } => {}
        }
    }
}

/// The sink server of Exp 1.a/2/3 (§4.1): accepts TCP connections, never
/// sends data, closes after 30 seconds.
pub struct SinkServerApp {
    /// How long to hold connections before closing.
    pub hold: Duration,
}

impl Default for SinkServerApp {
    fn default() -> Self {
        SinkServerApp {
            hold: Duration::from_secs(30),
        }
    }
}

impl App for SinkServerApp {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::ConnIncoming { conn, .. } => {
                ctx.set_timer(self.hold, conn.0);
            }
            AppEvent::Timer { token } => {
                ctx.fin(ConnId(token));
            }
            _ => {}
        }
    }
}

/// The responding server of Exp 1.b (§4.1): answers every peer —
/// including probers — with 1–1000 bytes of random data.
pub struct RespondingServerApp {
    /// Closes connections after this hold time, like the sink.
    pub hold: Duration,
}

impl Default for RespondingServerApp {
    fn default() -> Self {
        RespondingServerApp {
            hold: Duration::from_secs(30),
        }
    }
}

impl App for RespondingServerApp {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::ConnIncoming { conn, .. } => {
                ctx.set_timer(self.hold, conn.0);
            }
            AppEvent::Data { conn, .. } => {
                let n = ctx.rng.gen_range(1..=1000);
                let mut resp = vec![0u8; n];
                ctx.rng.fill(&mut resp[..]);
                ctx.send(conn, resp);
            }
            AppEvent::Timer { token } => {
                ctx.fin(ConnId(token));
            }
            _ => {}
        }
    }
}
