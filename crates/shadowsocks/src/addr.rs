//! The SOCKS-style target address specification (§2 of the paper).
//!
//! The first plaintext a Shadowsocks client sends through the tunnel:
//!
//! ```text
//! [0x01][4-byte IPv4 address][2-byte port]
//! [0x03][1-byte length][hostname][2-byte port]
//! [0x04][16-byte IPv6 address][2-byte port]
//! ```
//!
//! The parser's handling of *invalid* address types is exactly what the
//! GFW's random probes exercise: a random byte has a 3/256 chance of
//! being a valid type — or 3/16 for implementations that mask the upper
//! nibble (an artifact of the retired "one time auth" flag bits, §5.2.1).

/// Valid address-type byte for IPv4.
pub const ATYP_IPV4: u8 = 0x01;
/// Valid address-type byte for hostnames.
pub const ATYP_HOST: u8 = 0x03;
/// Valid address-type byte for IPv6.
pub const ATYP_IPV6: u8 = 0x04;

/// A parsed target specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetAddr {
    /// Literal IPv4 target.
    Ipv4([u8; 4], u16),
    /// Hostname target (bytes are not validated; random probes decrypt
    /// to arbitrary garbage and real implementations pass it to the
    /// resolver as-is).
    Hostname(Vec<u8>, u16),
    /// Literal IPv6 target.
    Ipv6([u8; 16], u16),
}

impl TargetAddr {
    /// Serialize to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            TargetAddr::Ipv4(ip, port) => {
                let mut v = Vec::with_capacity(7);
                v.push(ATYP_IPV4);
                v.extend_from_slice(ip);
                v.extend_from_slice(&port.to_be_bytes());
                v
            }
            TargetAddr::Hostname(name, port) => {
                assert!(name.len() <= 255, "hostname too long for spec");
                let mut v = Vec::with_capacity(4 + name.len());
                v.push(ATYP_HOST);
                v.push(name.len() as u8);
                v.extend_from_slice(name);
                v.extend_from_slice(&port.to_be_bytes());
                v
            }
            TargetAddr::Ipv6(ip, port) => {
                let mut v = Vec::with_capacity(19);
                v.push(ATYP_IPV6);
                v.extend_from_slice(ip);
                v.extend_from_slice(&port.to_be_bytes());
                v
            }
        }
    }

    /// Port of the target.
    pub fn port(&self) -> u16 {
        match self {
            TargetAddr::Ipv4(_, p) | TargetAddr::Hostname(_, p) | TargetAddr::Ipv6(_, p) => *p,
        }
    }
}

/// Outcome of an incremental parse attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The buffer does not yet hold a complete specification; keep
    /// reading. (The TIMEOUT column of Fig 10a.)
    NeedMore,
    /// The address-type byte is invalid. (The RST column — for
    /// implementations that treat this as a fatal error.)
    InvalidType(u8),
    /// A complete specification, plus how many buffer bytes it consumed.
    Complete(TargetAddr, usize),
}

/// Incrementally parse a target specification from decrypted plaintext.
///
/// `mask_type` reproduces Shadowsocks-libev's masking of the upper four
/// bits of the address-type byte before validation (`atyp & 0x0F`),
/// which raises a random byte's chance of passing validation from 3/256
/// to 3/16 — the probability signature the paper highlights (§5.2.1).
pub fn parse_spec(buf: &[u8], mask_type: bool) -> ParseOutcome {
    let Some(&atyp_raw) = buf.first() else {
        return ParseOutcome::NeedMore;
    };
    let atyp = if mask_type { atyp_raw & 0x0F } else { atyp_raw };
    match atyp {
        ATYP_IPV4 => {
            if buf.len() < 7 {
                return ParseOutcome::NeedMore;
            }
            let ip: [u8; 4] = buf[1..5].try_into().unwrap();
            let port = u16::from_be_bytes(buf[5..7].try_into().unwrap());
            ParseOutcome::Complete(TargetAddr::Ipv4(ip, port), 7)
        }
        ATYP_HOST => {
            if buf.len() < 2 {
                return ParseOutcome::NeedMore;
            }
            let len = buf[1] as usize;
            let total = 2 + len + 2;
            if buf.len() < total {
                return ParseOutcome::NeedMore;
            }
            let name = buf[2..2 + len].to_vec();
            let port = u16::from_be_bytes(buf[2 + len..total].try_into().unwrap());
            ParseOutcome::Complete(TargetAddr::Hostname(name, port), total)
        }
        ATYP_IPV6 => {
            if buf.len() < 19 {
                return ParseOutcome::NeedMore;
            }
            let ip: [u8; 16] = buf[1..17].try_into().unwrap();
            let port = u16::from_be_bytes(buf[17..19].try_into().unwrap());
            ParseOutcome::Complete(TargetAddr::Ipv6(ip, port), 19)
        }
        other => ParseOutcome::InvalidType(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_roundtrip_ipv4() {
        let t = TargetAddr::Ipv4([93, 184, 216, 34], 443);
        let enc = t.encode();
        assert_eq!(enc.len(), 7);
        assert_eq!(parse_spec(&enc, false), ParseOutcome::Complete(t, 7));
    }

    #[test]
    fn encode_parse_roundtrip_hostname() {
        let t = TargetAddr::Hostname(b"example.com".to_vec(), 80);
        let enc = t.encode();
        assert_eq!(enc.len(), 2 + 11 + 2);
        assert_eq!(parse_spec(&enc, false), ParseOutcome::Complete(t, 15));
    }

    #[test]
    fn encode_parse_roundtrip_ipv6() {
        let t = TargetAddr::Ipv6([0x20; 16], 8443);
        let enc = t.encode();
        assert_eq!(enc.len(), 19);
        assert_eq!(parse_spec(&enc, false), ParseOutcome::Complete(t, 19));
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut enc = TargetAddr::Ipv4([1, 2, 3, 4], 80).encode();
        enc.extend_from_slice(b"GET / HTTP/1.1");
        match parse_spec(&enc, false) {
            ParseOutcome::Complete(_, consumed) => assert_eq!(consumed, 7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_specs_need_more() {
        let enc = TargetAddr::Ipv4([1, 2, 3, 4], 80).encode();
        for cut in 0..enc.len() {
            assert_eq!(
                parse_spec(&enc[..cut], false),
                ParseOutcome::NeedMore,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn invalid_type_detected() {
        assert_eq!(
            parse_spec(&[0x05, 0, 0], false),
            ParseOutcome::InvalidType(5)
        );
        assert_eq!(parse_spec(&[0x00], false), ParseOutcome::InvalidType(0));
    }

    #[test]
    fn masking_rescues_high_bits() {
        // 0x11 & 0x0F == 0x01 → parsed as IPv4 when masking (the OTA
        // artifact), invalid otherwise.
        let buf = [0x11u8, 1, 2, 3, 4, 0, 80];
        assert!(matches!(parse_spec(&buf, true), ParseOutcome::Complete(..)));
        assert_eq!(parse_spec(&buf, false), ParseOutcome::InvalidType(0x11));
    }

    #[test]
    fn valid_fraction_of_random_bytes() {
        // Exactly 3 of 256 raw values are valid; exactly 48 of 256 after
        // masking (3 low nibbles × 16 high nibbles) — the 3/256 vs 3/16
        // probabilities of §5.2.1.
        let raw_valid = (0u16..256)
            .filter(|&b| !matches!(parse_spec(&[b as u8], false), ParseOutcome::InvalidType(_)))
            .count();
        let masked_valid = (0u16..256)
            .filter(|&b| !matches!(parse_spec(&[b as u8], true), ParseOutcome::InvalidType(_)))
            .count();
        assert_eq!(raw_valid, 3);
        assert_eq!(masked_valid, 48);
    }

    #[test]
    fn shortest_plausible_hostname_spec() {
        // §5.2.1: a hostname spec can be shorter than an IPv4 spec only
        // if the length byte decrypts to 1 or 2.
        let spec = [ATYP_HOST, 1, b'x', 0, 80];
        assert!(matches!(
            parse_spec(&spec, false),
            ParseOutcome::Complete(TargetAddr::Hostname(_, 80), 5)
        ));
    }

    #[test]
    #[should_panic(expected = "hostname too long")]
    fn oversized_hostname_rejected() {
        let _ = TargetAddr::Hostname(vec![b'a'; 256], 80).encode();
    }
}
