//! Wire framing for both Shadowsocks constructions (§2 of the paper).
//!
//! * Stream: `[IV][encrypted bytes...]` — one long ciphertext per
//!   direction.
//! * AEAD: `[salt]` then length-prefixed chunks, each
//!   `[2-byte encrypted length][16-byte length tag][encrypted payload]
//!   [16-byte payload tag]`, with a per-direction HKDF-SHA1 subkey and a
//!   little-endian incrementing 12-byte nonce.

use sscrypto::aead::{Aead, TAG_LEN};
use sscrypto::cfb::Direction;
use sscrypto::hkdf::ss_subkey;
use sscrypto::method::{Kind, Method, StreamCipher};
use sscrypto::AuthError;

/// Maximum plaintext length of one AEAD chunk (0x3FFF per the spec).
pub const MAX_CHUNK: usize = 0x3FFF;

// ---------------------------------------------------------------------
// Stream construction
// ---------------------------------------------------------------------

/// Encrypting half of a stream-cipher session (one direction).
pub struct StreamEncryptor {
    cipher: Box<dyn StreamCipher>,
    iv: Vec<u8>,
    iv_sent: bool,
}

impl StreamEncryptor {
    /// Start a session with the given per-stream IV.
    ///
    /// # Panics
    ///
    /// Panics if the method is not a stream method or lengths are wrong.
    pub fn new(method: Method, master_key: &[u8], iv: Vec<u8>) -> StreamEncryptor {
        assert_eq!(method.kind(), Kind::Stream);
        let cipher = method.new_stream(master_key, &iv, Direction::Encrypt);
        StreamEncryptor {
            cipher,
            iv,
            iv_sent: false,
        }
    }

    /// Encrypt `plain`, prepending the IV on the first call.
    pub fn encrypt(&mut self, plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plain.len() + self.iv.len());
        if !self.iv_sent {
            out.extend_from_slice(&self.iv);
            self.iv_sent = true;
        }
        let mut body = plain.to_vec();
        self.cipher.apply(&mut body);
        out.extend_from_slice(&body);
        out
    }
}

/// Decrypting half of a stream-cipher session (one direction).
///
/// Buffers until the IV is complete, then decrypts incrementally. This
/// mirrors how real servers consume the stream, and it is the state
/// machine whose "waiting for IV" phase produces the TIMEOUT column for
/// short probes in Fig 10a.
pub struct StreamDecryptor {
    method: Method,
    master_key: Vec<u8>,
    iv_buf: Vec<u8>,
    cipher: Option<Box<dyn StreamCipher>>,
}

impl StreamDecryptor {
    /// Start a decryption session; the IV arrives with the data.
    pub fn new(method: Method, master_key: &[u8]) -> StreamDecryptor {
        assert_eq!(method.kind(), Kind::Stream);
        StreamDecryptor {
            method,
            master_key: master_key.to_vec(),
            iv_buf: Vec::new(),
            cipher: None,
        }
    }

    /// True once the full IV has been received.
    pub fn iv_complete(&self) -> bool {
        self.cipher.is_some()
    }

    /// The received IV (only meaningful once [`Self::iv_complete`]).
    pub fn iv(&self) -> &[u8] {
        &self.iv_buf
    }

    /// Feed ciphertext; returns any newly decrypted plaintext.
    pub fn decrypt(&mut self, mut data: &[u8]) -> Vec<u8> {
        let iv_len = self.method.iv_len();
        if self.cipher.is_none() {
            let need = iv_len - self.iv_buf.len();
            let take = need.min(data.len());
            self.iv_buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.iv_buf.len() == iv_len {
                self.cipher = Some(self.method.new_stream(
                    &self.master_key,
                    &self.iv_buf,
                    Direction::Decrypt,
                ));
            }
        }
        match &mut self.cipher {
            Some(c) if !data.is_empty() => {
                let mut out = data.to_vec();
                c.apply(&mut out);
                out
            }
            _ => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// AEAD construction
// ---------------------------------------------------------------------

fn next_nonce(nonce: &mut [u8]) {
    // Little-endian increment, per the Shadowsocks AEAD spec.
    for b in nonce.iter_mut() {
        *b = b.wrapping_add(1);
        if *b != 0 {
            break;
        }
    }
}

/// Encrypting half of an AEAD session (one direction).
pub struct AeadEncryptor {
    aead: Box<dyn Aead>,
    salt: Vec<u8>,
    salt_sent: bool,
    nonce: Vec<u8>,
}

impl AeadEncryptor {
    /// Start a session: derives the subkey from `master_key` and `salt`.
    pub fn new(method: Method, master_key: &[u8], salt: Vec<u8>) -> AeadEncryptor {
        assert_eq!(method.kind(), Kind::Aead);
        assert_eq!(salt.len(), method.iv_len(), "bad salt length");
        let subkey = ss_subkey(master_key, &salt);
        let aead = method.new_aead(&subkey);
        let nonce = vec![0u8; aead.nonce_len()];
        AeadEncryptor {
            aead,
            salt,
            salt_sent: false,
            nonce,
        }
    }

    /// Seal one chunk (`plain.len() <= MAX_CHUNK`), prepending the salt
    /// on the first call.
    pub fn seal_chunk(&mut self, plain: &[u8]) -> Vec<u8> {
        assert!(plain.len() <= MAX_CHUNK, "chunk too large");
        let mut out = Vec::with_capacity(self.salt.len() + 2 + TAG_LEN * 2 + plain.len());
        if !self.salt_sent {
            out.extend_from_slice(&self.salt);
            self.salt_sent = true;
        }
        // Length chunk.
        let mut len_bytes = (plain.len() as u16).to_be_bytes().to_vec();
        let tag = self.aead.seal(&self.nonce, &[], &mut len_bytes);
        next_nonce(&mut self.nonce);
        out.extend_from_slice(&len_bytes);
        out.extend_from_slice(&tag);
        // Payload chunk.
        let mut body = plain.to_vec();
        let tag = self.aead.seal(&self.nonce, &[], &mut body);
        next_nonce(&mut self.nonce);
        out.extend_from_slice(&body);
        out.extend_from_slice(&tag);
        out
    }

    /// Seal arbitrary-length data as a sequence of chunks.
    pub fn seal(&mut self, plain: &[u8]) -> Vec<u8> {
        if plain.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for chunk in plain.chunks(MAX_CHUNK) {
            out.extend_from_slice(&self.seal_chunk(chunk));
        }
        out
    }
}

/// Where an [`AeadDecryptor`] currently is in the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AeadPhase {
    /// Waiting for the salt to complete.
    Salt,
    /// Waiting for a `[len][tag]` header.
    Length,
    /// Waiting for `payload + tag` of the given payload length.
    Payload(usize),
}

/// Decrypting half of an AEAD session.
pub struct AeadDecryptor {
    method: Method,
    master_key: Vec<u8>,
    aead: Option<Box<dyn Aead>>,
    salt: Vec<u8>,
    nonce: Vec<u8>,
    buf: Vec<u8>,
    phase: AeadPhase,
}

impl AeadDecryptor {
    /// Start a decryption session; the salt arrives with the data.
    pub fn new(method: Method, master_key: &[u8]) -> AeadDecryptor {
        assert_eq!(method.kind(), Kind::Aead);
        AeadDecryptor {
            method,
            master_key: master_key.to_vec(),
            aead: None,
            salt: Vec::new(),
            nonce: Vec::new(),
            buf: Vec::new(),
            phase: AeadPhase::Salt,
        }
    }

    /// True once the full salt has been received.
    pub fn salt_complete(&self) -> bool {
        self.aead.is_some()
    }

    /// The received salt (meaningful once [`Self::salt_complete`]).
    pub fn salt(&self) -> &[u8] {
        &self.salt
    }

    /// Bytes buffered but not yet decryptable.
    pub fn buffered(&self) -> usize {
        self.buf.len() + self.salt.len()
    }

    /// Current phase.
    pub fn phase(&self) -> AeadPhase {
        self.phase
    }

    /// Feed ciphertext. Returns complete decrypted chunks, or the first
    /// authentication error (at which point the session is poisoned).
    pub fn decrypt(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>, AuthError> {
        let salt_len = self.method.iv_len();
        let mut data = data;
        if self.aead.is_none() {
            let need = salt_len - self.salt.len();
            let take = need.min(data.len());
            self.salt.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.salt.len() == salt_len {
                let subkey = ss_subkey(&self.master_key, &self.salt);
                let aead = self.method.new_aead(&subkey);
                self.nonce = vec![0u8; aead.nonce_len()];
                self.aead = Some(aead);
                self.phase = AeadPhase::Length;
            }
        }
        self.buf.extend_from_slice(data);
        let Some(aead) = &self.aead else {
            return Ok(Vec::new());
        };

        let mut out = Vec::new();
        loop {
            match self.phase {
                AeadPhase::Salt => unreachable!("salt handled above"),
                AeadPhase::Length => {
                    if self.buf.len() < 2 + TAG_LEN {
                        break;
                    }
                    let mut len_bytes = [self.buf[0], self.buf[1]];
                    let tag: [u8; TAG_LEN] = self.buf[2..2 + TAG_LEN].try_into().unwrap();
                    aead.open(&self.nonce, &[], &mut len_bytes, &tag)?;
                    next_nonce(&mut self.nonce);
                    self.buf.drain(..2 + TAG_LEN);
                    let len = u16::from_be_bytes(len_bytes) as usize & MAX_CHUNK;
                    self.phase = AeadPhase::Payload(len);
                }
                AeadPhase::Payload(len) => {
                    if self.buf.len() < len + TAG_LEN {
                        break;
                    }
                    let mut body = self.buf[..len].to_vec();
                    let tag: [u8; TAG_LEN] = self.buf[len..len + TAG_LEN].try_into().unwrap();
                    aead.open(&self.nonce, &[], &mut body, &tag)?;
                    next_nonce(&mut self.nonce);
                    self.buf.drain(..len + TAG_LEN);
                    out.push(body);
                    self.phase = AeadPhase::Length;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscrypto::method::ALL_METHODS;

    fn key_for(m: Method) -> Vec<u8> {
        sscrypto::kdf::evp_bytes_to_key(b"test-password", m.key_len())
    }

    #[test]
    fn stream_roundtrip_all_methods() {
        for &m in ALL_METHODS.iter().filter(|m| m.kind() == Kind::Stream) {
            let key = key_for(m);
            let iv = vec![0x5au8; m.iv_len()];
            let mut enc = StreamEncryptor::new(m, &key, iv);
            let mut dec = StreamDecryptor::new(m, &key);
            let a = enc.encrypt(b"hello ");
            let b = enc.encrypt(b"world");
            assert_eq!(a.len(), m.iv_len() + 6, "{}", m.name());
            let mut plain = dec.decrypt(&a);
            plain.extend(dec.decrypt(&b));
            assert_eq!(plain, b"hello world", "{}", m.name());
        }
    }

    #[test]
    fn stream_decryptor_handles_split_iv() {
        let m = Method::Aes256Cfb;
        let key = key_for(m);
        let mut enc = StreamEncryptor::new(m, &key, vec![9u8; 16]);
        let ct = enc.encrypt(b"payload after split iv");
        let mut dec = StreamDecryptor::new(m, &key);
        let mut plain = Vec::new();
        // Feed one byte at a time across the IV boundary.
        for b in &ct {
            plain.extend(dec.decrypt(std::slice::from_ref(b)));
        }
        assert_eq!(plain, b"payload after split iv");
    }

    #[test]
    fn aead_roundtrip_all_methods() {
        for &m in ALL_METHODS.iter().filter(|m| m.kind() == Kind::Aead) {
            let key = key_for(m);
            let salt = vec![0x21u8; m.iv_len()];
            let mut enc = AeadEncryptor::new(m, &key, salt);
            let mut dec = AeadDecryptor::new(m, &key);
            let ct = enc.seal(b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n");
            let chunks = dec.decrypt(&ct).unwrap();
            let plain: Vec<u8> = chunks.concat();
            assert_eq!(
                plain,
                b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec()
            );
        }
    }

    #[test]
    fn aead_frame_overhead_matches_spec() {
        // First frame: salt + 2 + 16 + payload + 16 (§2 of the paper).
        let m = Method::ChaCha20IetfPoly1305;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![1u8; 32]);
        let ct = enc.seal_chunk(b"abc");
        assert_eq!(ct.len(), 32 + 2 + 16 + 3 + 16);
        // Second frame has no salt.
        let ct2 = enc.seal_chunk(b"defg");
        assert_eq!(ct2.len(), 2 + 16 + 4 + 16);
    }

    #[test]
    fn aead_decryptor_streams_byte_by_byte() {
        let m = Method::Aes128Gcm;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![7u8; 16]);
        let ct = enc.seal(b"chunked delivery");
        let mut dec = AeadDecryptor::new(m, &key);
        let mut plain = Vec::new();
        for b in &ct {
            for chunk in dec.decrypt(std::slice::from_ref(b)).unwrap() {
                plain.extend(chunk);
            }
        }
        assert_eq!(plain, b"chunked delivery");
    }

    #[test]
    fn aead_random_junk_fails_auth() {
        let m = Method::Aes256Gcm;
        let key = key_for(m);
        let mut dec = AeadDecryptor::new(m, &key);
        // 32-byte salt + 34 bytes of junk ≥ the length-chunk threshold.
        let junk = vec![0xEEu8; 66];
        assert!(dec.decrypt(&junk).is_err());
    }

    #[test]
    fn aead_tampered_length_fails() {
        let m = Method::Aes128Gcm;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![7u8; 16]);
        let mut ct = enc.seal(b"x");
        ct[16] ^= 1; // flip a bit in the encrypted length
        let mut dec = AeadDecryptor::new(m, &key);
        assert!(dec.decrypt(&ct).is_err());
    }

    #[test]
    fn aead_wrong_salt_wrong_subkey() {
        let m = Method::Aes128Gcm;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![7u8; 16]);
        let mut ct = enc.seal(b"x");
        ct[0] ^= 1; // flip a bit in the salt — the GFW's type R2 probe
        let mut dec = AeadDecryptor::new(m, &key);
        assert!(dec.decrypt(&ct).is_err());
    }

    #[test]
    fn multi_chunk_large_payload() {
        let m = Method::ChaCha20IetfPoly1305;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![3u8; 32]);
        let big: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let ct = enc.seal(&big);
        let mut dec = AeadDecryptor::new(m, &key);
        let plain: Vec<u8> = dec.decrypt(&ct).unwrap().concat();
        assert_eq!(plain, big);
    }
}
