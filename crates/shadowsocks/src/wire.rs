//! Wire framing for both Shadowsocks constructions (§2 of the paper).
//!
//! * Stream: `[IV][encrypted bytes...]` — one long ciphertext per
//!   direction.
//! * AEAD: `[salt]` then length-prefixed chunks, each
//!   `[2-byte encrypted length][16-byte length tag][encrypted payload]
//!   [16-byte payload tag]`, with a per-direction HKDF-SHA1 subkey and a
//!   little-endian incrementing 12-byte nonce.

use sscrypto::aead::{Aead, TAG_LEN};
use sscrypto::cfb::Direction;
use sscrypto::hkdf::ss_subkey;
use sscrypto::method::{Kind, Method, StreamCipher};
use sscrypto::AuthError;

/// Maximum plaintext length of one AEAD chunk (0x3FFF per the spec).
pub const MAX_CHUNK: usize = 0x3FFF;

// ---------------------------------------------------------------------
// Stream construction
// ---------------------------------------------------------------------

/// Encrypting half of a stream-cipher session (one direction).
pub struct StreamEncryptor {
    cipher: Box<dyn StreamCipher>,
    iv: Vec<u8>,
    iv_sent: bool,
}

impl StreamEncryptor {
    /// Start a session with the given per-stream IV.
    ///
    /// # Panics
    ///
    /// Panics if the method is not a stream method or lengths are wrong.
    pub fn new(method: Method, master_key: &[u8], iv: Vec<u8>) -> StreamEncryptor {
        assert_eq!(method.kind(), Kind::Stream);
        let cipher = method.new_stream(master_key, &iv, Direction::Encrypt);
        StreamEncryptor {
            cipher,
            iv,
            iv_sent: false,
        }
    }

    /// Encrypt `plain`, appending to `out` (IV first on the first call).
    /// The ciphertext is produced in place on `out`'s tail: no
    /// intermediate buffer.
    pub fn encrypt_into(&mut self, plain: &[u8], out: &mut Vec<u8>) {
        out.reserve(plain.len() + self.iv.len());
        if !self.iv_sent {
            out.extend_from_slice(&self.iv);
            self.iv_sent = true;
        }
        let start = out.len();
        out.extend_from_slice(plain);
        self.cipher.apply(&mut out[start..]);
    }

    /// Encrypt `plain`, prepending the IV on the first call.
    pub fn encrypt(&mut self, plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plain.len() + self.iv.len());
        self.encrypt_into(plain, &mut out);
        out
    }
}

/// Decrypting half of a stream-cipher session (one direction).
///
/// Buffers until the IV is complete, then decrypts incrementally. This
/// mirrors how real servers consume the stream, and it is the state
/// machine whose "waiting for IV" phase produces the TIMEOUT column for
/// short probes in Fig 10a.
pub struct StreamDecryptor {
    method: Method,
    // `Method` dispatch hoisted out of the per-call path: the IV length
    // is resolved once here instead of on every `decrypt`.
    iv_len: usize,
    master_key: Vec<u8>,
    iv_buf: Vec<u8>,
    cipher: Option<Box<dyn StreamCipher>>,
}

impl StreamDecryptor {
    /// Start a decryption session; the IV arrives with the data.
    pub fn new(method: Method, master_key: &[u8]) -> StreamDecryptor {
        assert_eq!(method.kind(), Kind::Stream);
        StreamDecryptor {
            method,
            iv_len: method.iv_len(),
            master_key: master_key.to_vec(),
            iv_buf: Vec::new(),
            cipher: None,
        }
    }

    /// True once the full IV has been received.
    pub fn iv_complete(&self) -> bool {
        self.cipher.is_some()
    }

    /// The received IV (only meaningful once [`Self::iv_complete`]).
    pub fn iv(&self) -> &[u8] {
        &self.iv_buf
    }

    /// Feed ciphertext, appending any newly decrypted plaintext to
    /// `out`. Decryption happens in place on `out`'s tail: no
    /// intermediate copy of `data`.
    pub fn decrypt_into(&mut self, mut data: &[u8], out: &mut Vec<u8>) {
        if self.cipher.is_none() {
            let need = self.iv_len - self.iv_buf.len();
            let take = need.min(data.len());
            self.iv_buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.iv_buf.len() == self.iv_len {
                self.cipher = Some(self.method.new_stream(
                    &self.master_key,
                    &self.iv_buf,
                    Direction::Decrypt,
                ));
            }
        }
        if let Some(c) = &mut self.cipher {
            if !data.is_empty() {
                let start = out.len();
                out.extend_from_slice(data);
                c.apply(&mut out[start..]);
            }
        }
    }

    /// Feed ciphertext; returns any newly decrypted plaintext.
    pub fn decrypt(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.decrypt_into(data, &mut out);
        out
    }
}

// ---------------------------------------------------------------------
// AEAD construction
// ---------------------------------------------------------------------

fn next_nonce(nonce: &mut [u8]) {
    // Little-endian increment, per the Shadowsocks AEAD spec.
    for b in nonce.iter_mut() {
        *b = b.wrapping_add(1);
        if *b != 0 {
            break;
        }
    }
}

/// Encrypting half of an AEAD session (one direction).
pub struct AeadEncryptor {
    aead: Box<dyn Aead>,
    salt: Vec<u8>,
    salt_sent: bool,
    nonce: Vec<u8>,
}

impl AeadEncryptor {
    /// Start a session: derives the subkey from `master_key` and `salt`.
    pub fn new(method: Method, master_key: &[u8], salt: Vec<u8>) -> AeadEncryptor {
        assert_eq!(method.kind(), Kind::Aead);
        assert_eq!(salt.len(), method.iv_len(), "bad salt length");
        let subkey = ss_subkey(master_key, &salt);
        let aead = method.new_aead(&subkey);
        let nonce = vec![0u8; aead.nonce_len()];
        AeadEncryptor {
            aead,
            salt,
            salt_sent: false,
            nonce,
        }
    }

    /// Seal one chunk (`plain.len() <= MAX_CHUNK`) directly onto `out`,
    /// prepending the salt on the first call. Both frames are encrypted
    /// in place on `out`'s tail: no intermediate buffers.
    pub fn seal_chunk_into(&mut self, plain: &[u8], out: &mut Vec<u8>) {
        assert!(plain.len() <= MAX_CHUNK, "chunk too large");
        out.reserve(self.salt.len() + 2 + TAG_LEN * 2 + plain.len());
        if !self.salt_sent {
            out.extend_from_slice(&self.salt);
            self.salt_sent = true;
        }
        // Length frame.
        let start = out.len();
        out.extend_from_slice(&(plain.len() as u16).to_be_bytes());
        let tag = self.aead.seal(&self.nonce, &[], &mut out[start..]);
        next_nonce(&mut self.nonce);
        out.extend_from_slice(&tag);
        // Payload frame.
        let start = out.len();
        out.extend_from_slice(plain);
        let tag = self.aead.seal(&self.nonce, &[], &mut out[start..]);
        next_nonce(&mut self.nonce);
        out.extend_from_slice(&tag);
    }

    /// Seal arbitrary-length data as a sequence of chunks onto `out`.
    pub fn seal_into(&mut self, plain: &[u8], out: &mut Vec<u8>) {
        for chunk in plain.chunks(MAX_CHUNK) {
            self.seal_chunk_into(chunk, out);
        }
    }

    /// Seal one chunk (`plain.len() <= MAX_CHUNK`), prepending the salt
    /// on the first call.
    pub fn seal_chunk(&mut self, plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_chunk_into(plain, &mut out);
        out
    }

    /// Seal arbitrary-length data as a sequence of chunks.
    pub fn seal(&mut self, plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(plain, &mut out);
        out
    }
}

/// Where an [`AeadDecryptor`] currently is in the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AeadPhase {
    /// Waiting for the salt to complete.
    Salt,
    /// Waiting for a `[len][tag]` header.
    Length,
    /// Waiting for `payload + tag` of the given payload length.
    Payload(usize),
}

/// Once the dead prefix of the receive buffer (bytes before `pos`)
/// grows past this, [`AeadDecryptor`] compacts it with one `drain`.
/// Amortizes what used to be an O(buffered) drain per frame.
const COMPACT_THRESHOLD: usize = 4096;

/// Decrypting half of an AEAD session.
///
/// Incoming bytes accumulate in one buffer and frames are decrypted in
/// place there; a cursor tracks the consumed prefix, which is reclaimed
/// lazily (see [`COMPACT_THRESHOLD`]) instead of drained per frame.
pub struct AeadDecryptor {
    method: Method,
    // `Method` dispatch hoisted out of the per-call path: the salt
    // length is resolved once here instead of on every `decrypt`.
    salt_len: usize,
    master_key: Vec<u8>,
    aead: Option<Box<dyn Aead>>,
    salt: Vec<u8>,
    nonce: Vec<u8>,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; bytes before this are dead.
    pos: usize,
    phase: AeadPhase,
}

impl AeadDecryptor {
    /// Start a decryption session; the salt arrives with the data.
    pub fn new(method: Method, master_key: &[u8]) -> AeadDecryptor {
        assert_eq!(method.kind(), Kind::Aead);
        AeadDecryptor {
            method,
            salt_len: method.iv_len(),
            master_key: master_key.to_vec(),
            aead: None,
            salt: Vec::new(),
            nonce: Vec::new(),
            buf: Vec::new(),
            pos: 0,
            phase: AeadPhase::Salt,
        }
    }

    /// True once the full salt has been received.
    pub fn salt_complete(&self) -> bool {
        self.aead.is_some()
    }

    /// The received salt (meaningful once [`Self::salt_complete`]).
    pub fn salt(&self) -> &[u8] {
        &self.salt
    }

    /// Bytes buffered but not yet decryptable.
    pub fn buffered(&self) -> usize {
        (self.buf.len() - self.pos) + self.salt.len()
    }

    /// Current phase.
    pub fn phase(&self) -> AeadPhase {
        self.phase
    }

    /// Absorb the salt prefix (deriving the subkey once complete) and
    /// append the remainder to the receive buffer.
    fn ingest(&mut self, mut data: &[u8]) {
        if self.aead.is_none() {
            let need = self.salt_len - self.salt.len();
            let take = need.min(data.len());
            self.salt.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.salt.len() == self.salt_len {
                let subkey = ss_subkey(&self.master_key, &self.salt);
                let aead = self.method.new_aead(&subkey);
                self.nonce = vec![0u8; aead.nonce_len()];
                self.aead = Some(aead);
                self.phase = AeadPhase::Length;
            }
        }
        self.buf.extend_from_slice(data);
    }

    /// Decrypt the next complete payload frame in place inside `buf`,
    /// advancing the cursor past it. Returns the plaintext's range
    /// within `buf`, or `None` if more data is needed.
    fn next_frame(&mut self) -> Result<Option<std::ops::Range<usize>>, AuthError> {
        let Some(aead) = &self.aead else {
            return Ok(None);
        };
        loop {
            let avail = self.buf.len() - self.pos;
            match self.phase {
                AeadPhase::Salt => unreachable!("salt handled in ingest"),
                AeadPhase::Length => {
                    if avail < 2 + TAG_LEN {
                        return Ok(None);
                    }
                    // Offset sums below cannot wrap: `self.pos + k` is
                    // bounds-checked by the slice indexing itself (and
                    // `avail >= 2 + TAG_LEN` was just established).
                    // gfwlint: allow(W1) -- bounds-checked by the index
                    let mut len_bytes = [self.buf[self.pos], self.buf[self.pos + 1]];
                    let mut tag = [0u8; TAG_LEN];
                    // gfwlint: allow(W1) -- bounds-checked by the index
                    tag.copy_from_slice(&self.buf[self.pos + 2..self.pos + 2 + TAG_LEN]);
                    aead.open(&self.nonce, &[], &mut len_bytes, &tag)?;
                    next_nonce(&mut self.nonce);
                    self.pos = self.pos.wrapping_add(2 + TAG_LEN);
                    let len = u16::from_be_bytes(len_bytes) as usize & MAX_CHUNK;
                    self.phase = AeadPhase::Payload(len);
                }
                AeadPhase::Payload(len) => {
                    if avail < len + TAG_LEN {
                        return Ok(None);
                    }
                    let mut tag = [0u8; TAG_LEN];
                    // gfwlint: allow(W1) -- bounds-checked by the index
                    tag.copy_from_slice(&self.buf[self.pos + len..self.pos + len + TAG_LEN]);
                    let body = &mut self.buf[self.pos..self.pos + len];
                    aead.open(&self.nonce, &[], body, &tag)?;
                    next_nonce(&mut self.nonce);
                    let start = self.pos;
                    self.pos = self.pos.wrapping_add(len + TAG_LEN);
                    self.phase = AeadPhase::Length;
                    return Ok(Some(start..start + len));
                }
            }
        }
    }

    /// Reclaim the consumed prefix of `buf` when it is free (everything
    /// consumed) or large enough to amortize the move.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Feed ciphertext, appending decrypted payload bytes to `out`
    /// (chunk boundaries are not preserved). On the first
    /// authentication error `out` is restored to its previous length
    /// and the session is poisoned.
    pub fn decrypt_into(&mut self, data: &[u8], out: &mut Vec<u8>) -> Result<(), AuthError> {
        self.ingest(data);
        let mark = out.len();
        let res = loop {
            match self.next_frame() {
                Ok(Some(r)) => out.extend_from_slice(&self.buf[r]),
                Ok(None) => break Ok(()),
                Err(e) => {
                    out.truncate(mark);
                    break Err(e);
                }
            }
        };
        self.compact();
        res
    }

    /// Feed ciphertext. Returns complete decrypted chunks, or the first
    /// authentication error (at which point the session is poisoned).
    pub fn decrypt(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>, AuthError> {
        self.ingest(data);
        let mut out = Vec::new();
        let res = loop {
            match self.next_frame() {
                Ok(Some(r)) => out.push(self.buf[r].to_vec()),
                Ok(None) => break Ok(out),
                Err(e) => break Err(e),
            }
        };
        self.compact();
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sscrypto::method::ALL_METHODS;

    fn key_for(m: Method) -> Vec<u8> {
        sscrypto::kdf::evp_bytes_to_key(b"test-password", m.key_len())
    }

    #[test]
    fn stream_roundtrip_all_methods() {
        for &m in ALL_METHODS.iter().filter(|m| m.kind() == Kind::Stream) {
            let key = key_for(m);
            let iv = vec![0x5au8; m.iv_len()];
            let mut enc = StreamEncryptor::new(m, &key, iv);
            let mut dec = StreamDecryptor::new(m, &key);
            let a = enc.encrypt(b"hello ");
            let b = enc.encrypt(b"world");
            assert_eq!(a.len(), m.iv_len() + 6, "{}", m.name());
            let mut plain = dec.decrypt(&a);
            plain.extend(dec.decrypt(&b));
            assert_eq!(plain, b"hello world", "{}", m.name());
        }
    }

    #[test]
    fn stream_decryptor_handles_split_iv() {
        let m = Method::Aes256Cfb;
        let key = key_for(m);
        let mut enc = StreamEncryptor::new(m, &key, vec![9u8; 16]);
        let ct = enc.encrypt(b"payload after split iv");
        let mut dec = StreamDecryptor::new(m, &key);
        let mut plain = Vec::new();
        // Feed one byte at a time across the IV boundary.
        for b in &ct {
            plain.extend(dec.decrypt(std::slice::from_ref(b)));
        }
        assert_eq!(plain, b"payload after split iv");
    }

    #[test]
    fn aead_roundtrip_all_methods() {
        for &m in ALL_METHODS.iter().filter(|m| m.kind() == Kind::Aead) {
            let key = key_for(m);
            let salt = vec![0x21u8; m.iv_len()];
            let mut enc = AeadEncryptor::new(m, &key, salt);
            let mut dec = AeadDecryptor::new(m, &key);
            let ct = enc.seal(b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n");
            let chunks = dec.decrypt(&ct).unwrap();
            let plain: Vec<u8> = chunks.concat();
            assert_eq!(
                plain,
                b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec()
            );
        }
    }

    #[test]
    fn aead_frame_overhead_matches_spec() {
        // First frame: salt + 2 + 16 + payload + 16 (§2 of the paper).
        let m = Method::ChaCha20IetfPoly1305;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![1u8; 32]);
        let ct = enc.seal_chunk(b"abc");
        assert_eq!(ct.len(), 32 + 2 + 16 + 3 + 16);
        // Second frame has no salt.
        let ct2 = enc.seal_chunk(b"defg");
        assert_eq!(ct2.len(), 2 + 16 + 4 + 16);
    }

    #[test]
    fn aead_decryptor_streams_byte_by_byte() {
        let m = Method::Aes128Gcm;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![7u8; 16]);
        let ct = enc.seal(b"chunked delivery");
        let mut dec = AeadDecryptor::new(m, &key);
        let mut plain = Vec::new();
        for b in &ct {
            for chunk in dec.decrypt(std::slice::from_ref(b)).unwrap() {
                plain.extend(chunk);
            }
        }
        assert_eq!(plain, b"chunked delivery");
    }

    #[test]
    fn aead_random_junk_fails_auth() {
        let m = Method::Aes256Gcm;
        let key = key_for(m);
        let mut dec = AeadDecryptor::new(m, &key);
        // 32-byte salt + 34 bytes of junk ≥ the length-chunk threshold.
        let junk = vec![0xEEu8; 66];
        assert!(dec.decrypt(&junk).is_err());
    }

    #[test]
    fn aead_tampered_length_fails() {
        let m = Method::Aes128Gcm;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![7u8; 16]);
        let mut ct = enc.seal(b"x");
        ct[16] ^= 1; // flip a bit in the encrypted length
        let mut dec = AeadDecryptor::new(m, &key);
        assert!(dec.decrypt(&ct).is_err());
    }

    #[test]
    fn aead_wrong_salt_wrong_subkey() {
        let m = Method::Aes128Gcm;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![7u8; 16]);
        let mut ct = enc.seal(b"x");
        ct[0] ^= 1; // flip a bit in the salt — the GFW's type R2 probe
        let mut dec = AeadDecryptor::new(m, &key);
        assert!(dec.decrypt(&ct).is_err());
    }

    #[test]
    fn multi_chunk_large_payload() {
        let m = Method::ChaCha20IetfPoly1305;
        let key = key_for(m);
        let mut enc = AeadEncryptor::new(m, &key, vec![3u8; 32]);
        let big: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let ct = enc.seal(&big);
        let mut dec = AeadDecryptor::new(m, &key);
        let plain: Vec<u8> = dec.decrypt(&ct).unwrap().concat();
        assert_eq!(plain, big);
    }
}
