//! The Shadowsocks server engine, parameterized by implementation
//! profile.
//!
//! Pure in the functional sense: bytes in, [`ServerAction`]s out, no
//! I/O and no clock. Timeouts belong to the transport adapter (see
//! [`crate::apps`]); everything the paper's Fig 10 and Table 5 describe
//! — who RSTs, who FINs, who waits, at which byte thresholds, with what
//! probability — emerges from this state machine running the *real*
//! cryptography against the input.

use crate::addr::{parse_spec, ParseOutcome, TargetAddr};
use crate::bloom::PingPongBloom;
use crate::config::ServerConfig;
use crate::profile::ErrorReaction;
use crate::wire::{AeadDecryptor, AeadEncryptor, StreamDecryptor, StreamEncryptor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sscrypto::method::Kind;
use std::collections::HashMap;

/// What the server wants its transport to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerAction {
    /// Open an outbound connection to the decrypted target.
    ConnectTarget(TargetAddr),
    /// Forward decrypted payload to the target.
    RelayToTarget(Vec<u8>),
    /// Send (already encrypted) bytes back to the client.
    SendToClient(Vec<u8>),
    /// Abort the client connection (RST on the wire).
    CloseRst,
    /// Close the client connection gracefully (FIN/ACK on the wire).
    CloseFin,
}

/// Per-connection decryption phase.
enum Phase {
    /// Stream construction: reading IV, then the target spec.
    StreamHeader {
        dec: StreamDecryptor,
        plain: Vec<u8>,
        replay_checked: bool,
    },
    /// AEAD construction: reading salt and the first length chunk.
    AeadHeader {
        dec: AeadDecryptor,
        /// Total raw bytes received on this connection.
        got: usize,
        /// Bytes withheld from the decryptor until the profile's
        /// threshold is reached (models libev's read sizing).
        staged: Vec<u8>,
        replay_checked: bool,
        /// Decrypted-but-unparsed plaintext (spec may span chunks).
        plain: Vec<u8>,
    },
    /// Spec parsed; waiting for the outbound connection.
    Connecting { pending: Vec<u8> },
    /// Outbound connection is up; proxying.
    Relaying,
    /// Hit an error under `KeepReading`: consume input forever, never
    /// answer. (The post-fix "probing resistance" behaviour.)
    DeadSilent,
    /// Connection is finished (closed or reset).
    Done,
}

struct Conn {
    phase: Phase,
    /// Decrypt state for relaying beyond the header (stream reuses the
    /// header decryptor; AEAD reuses its decryptor too — both live in
    /// `Phase`, so relaying needs them carried forward).
    stream_dec: Option<StreamDecryptor>,
    aead_dec: Option<AeadDecryptor>,
    stream_enc: Option<StreamEncryptor>,
    aead_enc: Option<AeadEncryptor>,
}

/// A Shadowsocks server instance: one config, one replay filter, many
/// connections.
pub struct ServerConn {
    /// The configuration this server runs.
    pub config: ServerConfig,
    // `Method` dispatch hoisted out of the per-packet path: construction
    // kind and IV/salt length are resolved once per server.
    kind: Kind,
    iv_len: usize,
    filter: Option<PingPongBloom>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    rng: StdRng,
}

impl ServerConn {
    /// Create a server. `seed` drives the server's own randomness
    /// (response IVs/salts).
    ///
    /// # Panics
    ///
    /// Panics if the profile does not support the configured method's
    /// construction (e.g. a stream method on OutlineVPN).
    pub fn new(config: ServerConfig, seed: u64) -> ServerConn {
        if config.method.kind() == Kind::Stream {
            assert!(
                config.profile.supports_stream,
                "{} does not support stream ciphers",
                config.profile.name
            );
        }
        let filter = config
            .profile
            .replay_filter
            .then(|| PingPongBloom::new(config.replay_filter_capacity));
        ServerConn {
            kind: config.method.kind(),
            iv_len: config.method.iv_len(),
            config,
            filter,
            conns: HashMap::new(),
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Register a new inbound connection, returning its handle.
    pub fn open_conn(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let phase = match self.kind {
            Kind::Stream => Phase::StreamHeader {
                dec: StreamDecryptor::new(self.config.method, &self.config.master_key),
                plain: Vec::new(),
                replay_checked: false,
            },
            Kind::Aead => Phase::AeadHeader {
                dec: AeadDecryptor::new(self.config.method, &self.config.master_key),
                got: 0,
                staged: Vec::new(),
                replay_checked: false,
                plain: Vec::new(),
            },
        };
        self.conns.insert(
            id,
            Conn {
                phase,
                stream_dec: None,
                aead_dec: None,
                stream_enc: None,
                aead_enc: None,
            },
        );
        id
    }

    /// Drop a connection's state (client went away).
    pub fn close_conn(&mut self, conn: u64) {
        self.conns.remove(&conn);
    }

    /// Number of tracked connections.
    pub fn live_conns(&self) -> usize {
        self.conns.len()
    }

    /// Simulate a server restart: the replay filter forgets everything
    /// (§7.2's asymmetry) and all connection state is dropped.
    pub fn restart(&mut self) {
        if let Some(f) = &mut self.filter {
            f.restart();
        }
        self.conns.clear();
    }

    fn fail(conn: &mut Conn, reaction: ErrorReaction) -> Vec<ServerAction> {
        match reaction {
            ErrorReaction::CloseImmediately => {
                conn.phase = Phase::Done;
                vec![ServerAction::CloseRst]
            }
            ErrorReaction::KeepReading => {
                conn.phase = Phase::DeadSilent;
                Vec::new()
            }
        }
    }

    /// Feed client bytes into a connection.
    pub fn on_data(&mut self, conn_id: u64, data: &[u8]) -> Vec<ServerAction> {
        let profile = self.config.profile;
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return Vec::new();
        };
        // Take the phase out so the connection record and the phase can
        // be manipulated independently.
        let phase = std::mem::replace(&mut conn.phase, Phase::Done);
        match phase {
            Phase::DeadSilent => {
                conn.phase = Phase::DeadSilent;
                Vec::new()
            }
            Phase::Done => Vec::new(),
            Phase::StreamHeader {
                mut dec,
                mut plain,
                mut replay_checked,
            } => {
                dec.decrypt_into(data, &mut plain);
                if !dec.iv_complete() {
                    conn.phase = Phase::StreamHeader {
                        dec,
                        plain,
                        replay_checked,
                    };
                    return Vec::new();
                }
                if !replay_checked {
                    replay_checked = true;
                    if let Some(filter) = &mut self.filter {
                        if filter.check_and_insert(dec.iv()) {
                            return Self::fail(conn, profile.error_reaction);
                        }
                    }
                }
                match parse_spec(&plain, profile.masks_addr_type) {
                    ParseOutcome::NeedMore => {
                        conn.phase = Phase::StreamHeader {
                            dec,
                            plain,
                            replay_checked,
                        };
                        Vec::new()
                    }
                    ParseOutcome::InvalidType(_) => Self::fail(conn, profile.error_reaction),
                    ParseOutcome::Complete(target, consumed) => {
                        let pending = plain[consumed..].to_vec();
                        conn.stream_dec = Some(dec);
                        conn.phase = Phase::Connecting { pending };
                        vec![ServerAction::ConnectTarget(target)]
                    }
                }
            }
            Phase::AeadHeader {
                mut dec,
                mut got,
                mut staged,
                mut replay_checked,
                mut plain,
            } => {
                got += data.len();
                let salt_len = self.iv_len;
                let threshold = profile.aead_threshold(salt_len);
                // Feed the salt portion immediately; stage the rest until
                // the profile's read threshold is reached. Decrypted
                // plaintext lands directly in `plain`.
                let mut auth_failed = false;
                if !dec.salt_complete() {
                    let need = salt_len.saturating_sub(dec.salt().len());
                    let take = need.min(data.len());
                    auth_failed |= dec.decrypt_into(&data[..take], &mut plain).is_err();
                    staged.extend_from_slice(&data[take..]);
                } else {
                    staged.extend_from_slice(data);
                }
                if !auth_failed && dec.salt_complete() && got >= threshold && !staged.is_empty() {
                    let to_feed = std::mem::take(&mut staged);
                    auth_failed |= dec.decrypt_into(&to_feed, &mut plain).is_err();
                }
                if dec.salt_complete() && !replay_checked {
                    replay_checked = true;
                    if let Some(filter) = &mut self.filter {
                        if filter.check_and_insert(dec.salt()) {
                            return Self::fail(conn, profile.error_reaction);
                        }
                    }
                }
                if auth_failed {
                    // Outline v1.0.6: FIN at exactly the header size,
                    // RST beyond it (§5.2.1).
                    if profile.fin_at_exact_header {
                        conn.phase = Phase::Done;
                        return if got == threshold {
                            vec![ServerAction::CloseFin]
                        } else {
                            vec![ServerAction::CloseRst]
                        };
                    }
                    return Self::fail(conn, profile.error_reaction);
                }
                match parse_spec(&plain, profile.masks_addr_type) {
                    ParseOutcome::NeedMore => {
                        conn.phase = Phase::AeadHeader {
                            dec,
                            got,
                            staged,
                            replay_checked,
                            plain,
                        };
                        Vec::new()
                    }
                    ParseOutcome::InvalidType(_) => Self::fail(conn, profile.error_reaction),
                    ParseOutcome::Complete(target, consumed) => {
                        let pending = plain[consumed..].to_vec();
                        conn.aead_dec = Some(dec);
                        conn.phase = Phase::Connecting { pending };
                        vec![ServerAction::ConnectTarget(target)]
                    }
                }
            }
            Phase::Connecting { mut pending } => {
                // Keep decrypting while the outbound connect is pending;
                // plaintext accumulates directly onto `pending`.
                let res = match self.kind {
                    Kind::Stream => {
                        if let Some(dec) = &mut conn.stream_dec {
                            dec.decrypt_into(data, &mut pending);
                        }
                        Ok(())
                    }
                    Kind::Aead => conn
                        .aead_dec
                        .as_mut()
                        .map_or(Ok(()), |dec| dec.decrypt_into(data, &mut pending)),
                };
                match res {
                    Ok(()) => {
                        conn.phase = Phase::Connecting { pending };
                        Vec::new()
                    }
                    Err(_) => Self::fail(conn, profile.error_reaction),
                }
            }
            Phase::Relaying => {
                let mut flat = Vec::new();
                let res = match self.kind {
                    Kind::Stream => {
                        if let Some(dec) = &mut conn.stream_dec {
                            dec.decrypt_into(data, &mut flat);
                        }
                        Ok(())
                    }
                    Kind::Aead => conn
                        .aead_dec
                        .as_mut()
                        .map_or(Ok(()), |dec| dec.decrypt_into(data, &mut flat)),
                };
                match res {
                    Ok(()) => {
                        conn.phase = Phase::Relaying;
                        if flat.is_empty() {
                            Vec::new()
                        } else {
                            vec![ServerAction::RelayToTarget(flat)]
                        }
                    }
                    Err(_) => Self::fail(conn, profile.error_reaction),
                }
            }
        }
    }

    /// The outbound connection for `conn_id` succeeded.
    pub fn on_target_connected(&mut self, conn_id: u64) -> Vec<ServerAction> {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return Vec::new();
        };
        if let Phase::Connecting { pending } = &mut conn.phase {
            let pending = std::mem::take(pending);
            conn.phase = Phase::Relaying;
            if pending.is_empty() {
                Vec::new()
            } else {
                vec![ServerAction::RelayToTarget(pending)]
            }
        } else {
            Vec::new()
        }
    }

    /// The outbound connection for `conn_id` failed: the server closes
    /// the client connection gracefully — the FIN/ACK reaction of
    /// Fig 10a's valid-address-type slice.
    pub fn on_target_failed(&mut self, conn_id: u64) -> Vec<ServerAction> {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return Vec::new();
        };
        match conn.phase {
            Phase::Connecting { .. } | Phase::Relaying => {
                conn.phase = Phase::Done;
                vec![ServerAction::CloseFin]
            }
            _ => Vec::new(),
        }
    }

    /// Data arrived from the target: encrypt it for the client.
    pub fn on_target_data(&mut self, conn_id: u64, data: &[u8]) -> Vec<ServerAction> {
        let method = self.config.method;
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return Vec::new();
        };
        let mut encrypted = Vec::new();
        match self.kind {
            Kind::Stream => {
                if conn.stream_enc.is_none() {
                    let mut iv = vec![0u8; self.iv_len];
                    self.rng.fill(&mut iv[..]);
                    conn.stream_enc =
                        Some(StreamEncryptor::new(method, &self.config.master_key, iv));
                }
                if let Some(enc) = &mut conn.stream_enc {
                    enc.encrypt_into(data, &mut encrypted);
                }
            }
            Kind::Aead => {
                if conn.aead_enc.is_none() {
                    let mut salt = vec![0u8; self.iv_len];
                    self.rng.fill(&mut salt[..]);
                    conn.aead_enc = Some(AeadEncryptor::new(method, &self.config.master_key, salt));
                }
                if let Some(enc) = &mut conn.aead_enc {
                    enc.seal_into(data, &mut encrypted);
                }
            }
        };
        vec![ServerAction::SendToClient(encrypted)]
    }
}
