//! Bloom-filter replay protection, modelled on Shadowsocks-libev's
//! "ping-pong" double-buffer design (§5.3 of the paper; upstream issue
//! shadowsocks-org#44).
//!
//! Two classic Bloom filters alternate: inserts go to the *current*
//! filter; when it reaches capacity, the *previous* filter is cleared
//! and the roles swap. Lookups consult both. This bounds memory while
//! remembering at least the most recent `capacity` nonces — and it is
//! precisely the design whose "forgets after enough traffic / forgets
//! across restarts" weakness the paper's delayed replays (up to 570
//! hours, §3.5) exploit.

use sscrypto::sha256::sha256;

/// A classic fixed-size Bloom filter with `k` derived hash functions.
///
/// The bit array is allocated **lazily**, on the first insert: an empty
/// filter contains nothing, so deferring the (hundreds-of-KB at libev
/// capacities) zeroed allocation is observationally identical. This
/// matters because the probe-reaction experiments construct a fresh
/// server — and with it a fresh replay filter — per probe; eager
/// allocation put two mmap/munmap round-trips on every probe of the
/// Fig 10 grid, dwarfing the actual crypto.
#[derive(Clone)]
pub struct Bloom {
    /// Empty until the first insert; `m.div_ceil(64)` words after.
    bits: Vec<u64>,
    m: usize,
    k: u32,
    items: usize,
}

impl Bloom {
    /// Create a filter sized for roughly `expected_items` at ~1e-6 false
    /// positive rate (libev uses 1e-6 for its server filters). Does not
    /// allocate the bit array; the first [`Bloom::insert`] does.
    pub fn new(expected_items: usize) -> Bloom {
        // m = -n ln p / (ln 2)^2, k = m/n ln 2, with p = 1e-6.
        let n = expected_items.max(1) as f64;
        let p: f64 = 1e-6;
        let m = (-n * p.ln() / (2f64.ln().powi(2))).ceil() as usize;
        let m = m.max(64);
        let k = ((m as f64 / n) * 2f64.ln()).round().max(1.0) as u32;
        Bloom {
            bits: Vec::with_capacity(0),
            m,
            k,
            items: 0,
        }
    }

    /// The two Kirsch–Mitzenmacher base hashes from one SHA-256.
    fn hashes(item: &[u8]) -> (u64, u64) {
        let d = sha256(item);
        let h1 = u64::from_le_bytes(d[0..8].try_into().unwrap());
        let h2 = u64::from_le_bytes(d[8..16].try_into().unwrap()) | 1;
        (h1, h2)
    }

    /// Insert an item, allocating the bit array on first use.
    pub fn insert(&mut self, item: &[u8]) {
        if self.bits.is_empty() {
            self.bits = vec![0u64; self.m.div_ceil(64)];
        }
        let (h1, h2) = Self::hashes(item);
        let m = self.m as u64;
        for i in 0..self.k as u64 {
            let idx = (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize;
            self.bits[idx / 64] |= 1 << (idx % 64);
        }
        self.items += 1;
    }

    /// Probabilistic membership test (no false negatives).
    pub fn contains(&self, item: &[u8]) -> bool {
        if self.bits.is_empty() {
            return false;
        }
        let (h1, h2) = Self::hashes(item);
        let m = self.m as u64;
        (0..self.k as u64).all(|i| {
            let idx = (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize;
            self.bits[idx / 64] & (1 << (idx % 64)) != 0
        })
    }

    /// Number of inserts since creation/clear.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True if no items were inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Reset to empty. Releases the bit array; the next insert
    /// re-allocates, keeping long-idle cleared filters cheap.
    pub fn clear(&mut self) {
        self.bits = Vec::with_capacity(0);
        self.items = 0;
    }
}

/// Libev-style double-buffered ("ping-pong") replay filter.
pub struct PingPongBloom {
    current: Bloom,
    previous: Bloom,
    capacity: usize,
}

impl PingPongBloom {
    /// Create a filter that remembers at least the last `capacity`
    /// nonces (and at most 2×).
    pub fn new(capacity: usize) -> PingPongBloom {
        PingPongBloom {
            current: Bloom::new(capacity),
            previous: Bloom::new(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Check membership and insert if fresh. Returns `true` if the item
    /// was already present (i.e. this is a replay).
    pub fn check_and_insert(&mut self, item: &[u8]) -> bool {
        if self.current.contains(item) || self.previous.contains(item) {
            return true;
        }
        if self.current.len() >= self.capacity {
            std::mem::swap(&mut self.current, &mut self.previous);
            self.current.clear();
        }
        self.current.insert(item);
        false
    }

    /// Simulate a server restart: all remembered nonces are lost. The
    /// asymmetry the paper's §7.2 calls out — the censor can replay
    /// after an arbitrary delay, but the server cannot remember forever.
    pub fn restart(&mut self) {
        self.current.clear();
        self.previous.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut b = Bloom::new(1000);
        assert!(!b.contains(b"salt-1"));
        b.insert(b"salt-1");
        assert!(b.contains(b"salt-1"));
        assert!(!b.contains(b"salt-2"));
    }

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::new(10_000);
        let items: Vec<Vec<u8>> = (0u32..10_000).map(|i| i.to_le_bytes().to_vec()).collect();
        for it in &items {
            b.insert(it);
        }
        assert!(items.iter().all(|it| b.contains(it)));
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = Bloom::new(10_000);
        for i in 0u32..10_000 {
            b.insert(&i.to_le_bytes());
        }
        let fp = (10_000u32..110_000)
            .filter(|i| b.contains(&i.to_le_bytes()))
            .count();
        // Target 1e-6; allow two orders of slack for a 100k sample.
        assert!(fp <= 10, "false positives: {fp}");
    }

    #[test]
    fn pingpong_detects_replays() {
        let mut f = PingPongBloom::new(100);
        assert!(!f.check_and_insert(b"iv-abc"));
        assert!(f.check_and_insert(b"iv-abc"), "second sight is a replay");
    }

    #[test]
    fn pingpong_remembers_at_least_capacity() {
        let mut f = PingPongBloom::new(100);
        for i in 0u32..100 {
            assert!(!f.check_and_insert(&i.to_le_bytes()));
        }
        // All of the last 100 are still remembered.
        for i in 0u32..100 {
            assert!(f.check_and_insert(&i.to_le_bytes()), "{i}");
        }
    }

    #[test]
    fn pingpong_eventually_forgets() {
        // Insert far past 2× capacity; the earliest items must age out —
        // the weakness long-delayed replays exploit (§3.5/§7.2).
        let mut f = PingPongBloom::new(100);
        f.check_and_insert(b"the-original-iv");
        for i in 0u32..1000 {
            f.check_and_insert(&i.to_le_bytes());
        }
        assert!(
            !f.check_and_insert(b"the-original-iv-x"),
            "fresh item sanity"
        );
        // The original has been rotated out of both buffers.
        let mut f2 = PingPongBloom::new(100);
        f2.check_and_insert(b"the-original-iv");
        for i in 0u32..1000 {
            f2.check_and_insert(&i.to_le_bytes());
        }
        assert!(
            !f2.check_and_insert(b"the-original-iv"),
            "aged-out nonce is accepted again"
        );
    }

    #[test]
    fn restart_forgets_everything() {
        let mut f = PingPongBloom::new(100);
        f.check_and_insert(b"salt-before-restart");
        f.restart();
        assert!(
            !f.check_and_insert(b"salt-before-restart"),
            "replay across restart is not detected (§7.2)"
        );
    }
}
