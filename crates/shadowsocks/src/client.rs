//! The Shadowsocks client session: builds the wire bytes a client sends
//! and decrypts what the server returns.
//!
//! The shape of the **first packet** is what the GFW's passive detector
//! keys on (§4.2): for stream ciphers it is `IV + spec + payload`; for
//! AEAD it is `salt + chunk(spec) + chunk(payload)`. The
//! `merge_first_chunks` option reproduces the July 2020 OutlineVPN
//! change (§11) that merged header and initial data into one chunk to
//! make the first-packet length variable.

use crate::addr::TargetAddr;
use crate::config::ServerConfig;
use crate::wire::{AeadDecryptor, AeadEncryptor, StreamDecryptor, StreamEncryptor};
use rand::Rng;
use sscrypto::method::Kind;

enum Enc {
    Stream(StreamEncryptor),
    Aead(AeadEncryptor),
}

enum Dec {
    Stream(StreamDecryptor),
    Aead(AeadDecryptor),
}

/// One client connection's crypto state.
pub struct ClientSession {
    enc: Enc,
    dec: Dec,
    target: TargetAddr,
    spec_sent: bool,
    /// Encode the target spec and the first payload as a single AEAD
    /// chunk (post-disclosure OutlineVPN behaviour) instead of separate
    /// chunks.
    pub merge_first_chunks: bool,
}

impl ClientSession {
    /// Start a session to `target`; the per-stream IV/salt is drawn from
    /// `rng`.
    pub fn new(config: &ServerConfig, target: TargetAddr, rng: &mut impl Rng) -> ClientSession {
        let method = config.method;
        let mut nonce = vec![0u8; method.iv_len()];
        rng.fill(&mut nonce[..]);
        let enc = match method.kind() {
            Kind::Stream => Enc::Stream(StreamEncryptor::new(method, &config.master_key, nonce)),
            Kind::Aead => Enc::Aead(AeadEncryptor::new(method, &config.master_key, nonce)),
        };
        let dec = match method.kind() {
            Kind::Stream => Dec::Stream(StreamDecryptor::new(method, &config.master_key)),
            Kind::Aead => Dec::Aead(AeadDecryptor::new(method, &config.master_key)),
        };
        ClientSession {
            enc,
            dec,
            target,
            spec_sent: false,
            merge_first_chunks: false,
        }
    }

    /// Encrypt application data. The first call prepends the target
    /// specification (and the IV/salt), producing the first-packet
    /// payload whose length and entropy the GFW inspects.
    pub fn send(&mut self, data: &[u8]) -> Vec<u8> {
        if !self.spec_sent {
            self.spec_sent = true;
            let spec = self.target.encode();
            match &mut self.enc {
                Enc::Stream(enc) => {
                    // A stream cipher's keystream is continuous, so two
                    // sequential encrypt calls yield the same bytes as
                    // one call on the concatenation.
                    let mut out = Vec::new();
                    enc.encrypt_into(&spec, &mut out);
                    enc.encrypt_into(data, &mut out);
                    out
                }
                Enc::Aead(enc) => {
                    let mut out = Vec::new();
                    if self.merge_first_chunks {
                        let mut plain = spec;
                        plain.extend_from_slice(data);
                        enc.seal_into(&plain, &mut out);
                    } else {
                        enc.seal_into(&spec, &mut out);
                        enc.seal_into(data, &mut out);
                    }
                    out
                }
            }
        } else {
            match &mut self.enc {
                Enc::Stream(enc) => enc.encrypt(data),
                Enc::Aead(enc) => enc.seal(data),
            }
        }
    }

    /// Decrypt bytes received from the server. AEAD authentication
    /// failures return an empty vec (a real client would abort; for the
    /// experiments we only care that no plaintext is produced).
    pub fn recv(&mut self, data: &[u8]) -> Vec<u8> {
        match &mut self.dec {
            Dec::Stream(dec) => dec.decrypt(data),
            Dec::Aead(dec) => {
                let mut out = Vec::new();
                // On auth failure `decrypt_into` restores `out` to its
                // prior (empty) length, matching the old behaviour.
                let _ = dec.decrypt_into(data, &mut out);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::server::{ServerAction, ServerConn};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sscrypto::method::Method;

    fn end_to_end(method: Method, merge: bool) {
        let config = ServerConfig::new(method, "pw-123", Profile::LIBEV_NEW);
        let mut rng = StdRng::seed_from_u64(9);
        let target = TargetAddr::Hostname(b"example.com".to_vec(), 80);
        let mut client = ClientSession::new(&config, target.clone(), &mut rng);
        client.merge_first_chunks = merge;
        let mut server = ServerConn::new(config, 7);
        let conn = server.open_conn();

        // Client → server: first packet with HTTP request.
        let wire = client.send(b"GET / HTTP/1.1\r\n\r\n");
        let actions = server.on_data(conn, &wire);
        assert_eq!(
            actions,
            vec![ServerAction::ConnectTarget(target)],
            "{} merge={merge}",
            method.name()
        );
        // Target connects; pending data flushes.
        let actions = server.on_target_connected(conn);
        assert_eq!(
            actions,
            vec![ServerAction::RelayToTarget(
                b"GET / HTTP/1.1\r\n\r\n".to_vec()
            )]
        );
        // Target responds; server encrypts; client decrypts.
        let actions = server.on_target_data(conn, b"HTTP/1.1 200 OK\r\n\r\nhello");
        let ServerAction::SendToClient(ct) = &actions[0] else {
            panic!("expected SendToClient");
        };
        assert_eq!(client.recv(ct), b"HTTP/1.1 200 OK\r\n\r\nhello");
        // Second client write relays directly.
        let wire2 = client.send(b"more data");
        let actions = server.on_data(conn, &wire2);
        assert_eq!(
            actions,
            vec![ServerAction::RelayToTarget(b"more data".to_vec())]
        );
    }

    #[test]
    fn proxy_roundtrip_every_method() {
        for &m in sscrypto::method::ALL_METHODS {
            end_to_end(m, false);
        }
    }

    #[test]
    fn proxy_roundtrip_merged_first_chunk() {
        end_to_end(Method::ChaCha20IetfPoly1305, true);
    }

    #[test]
    fn merged_first_packet_is_shorter() {
        // Merging removes one 2+16+16 chunk frame from the first packet
        // — and makes its length depend on the payload (§11).
        let config = ServerConfig::new(Method::ChaCha20IetfPoly1305, "pw", Profile::OUTLINE_1_0_7);
        let mut rng = StdRng::seed_from_u64(1);
        let target = TargetAddr::Ipv4([1, 2, 3, 4], 443);
        let mut split = ClientSession::new(&config, target.clone(), &mut rng);
        let mut merged = ClientSession::new(&config, target, &mut rng);
        merged.merge_first_chunks = true;
        let a = split.send(b"hello");
        let b = merged.send(b"hello");
        assert_eq!(a.len() - b.len(), 2 + 16 + 16);
    }

    #[test]
    fn split_delivery_to_server() {
        // brdgrd chops the first packet into small segments; the server
        // must reassemble transparently (Fig 10a's per-length behaviour
        // notwithstanding, a *genuine* split connection still works on
        // profiles that wait rather than RST).
        let config = ServerConfig::new(Method::Aes256Gcm, "pw", Profile::LIBEV_NEW);
        let mut rng = StdRng::seed_from_u64(3);
        let target = TargetAddr::Ipv4([10, 0, 0, 1], 80);
        let mut client = ClientSession::new(&config, target.clone(), &mut rng);
        let mut server = ServerConn::new(config, 4);
        let conn = server.open_conn();
        let wire = client.send(b"payload");
        let mut actions = Vec::new();
        for chunk in wire.chunks(3) {
            actions.extend(server.on_data(conn, chunk));
        }
        assert_eq!(actions, vec![ServerAction::ConnectTarget(target)]);
    }
}
