//! # shadowsocks — the Shadowsocks protocol, with per-implementation
//! behaviour profiles
//!
//! This crate implements both Shadowsocks cryptographic constructions
//! (§2 of *How China Detects and Blocks Shadowsocks*, IMC 2020):
//!
//! * **Stream ciphers**: `[IV][encrypted payload...]` — confidentiality
//!   only, no integrity. Deprecated, and the reason several of the GFW's
//!   probe types work at all.
//! * **AEAD ciphers**: `[salt][encrypted len][len tag][payload][payload
//!   tag]...` with HKDF-SHA1 session subkeys.
//!
//! On top of the wire formats sit **implementation behaviour profiles**
//! ([`profile::Profile`]): executable transcriptions of how
//! Shadowsocks-libev v3.0.8–v3.2.5, v3.3.1–v3.3.3 and OutlineVPN
//! v1.0.6–v1.0.8 (plus the post-disclosure v1.1.0) react to junk,
//! replays, and partial data — the reaction matrix of the paper's
//! Fig 10 and Table 5. The [`server::ServerConn`] engine is pure
//! (bytes in, actions out), so the prober simulator can interrogate it
//! directly, and the [`apps`] module adapts it onto `netsim`.
//!
//! The paper's threat model lives in the `gfw-core` crate; this crate is
//! the *defender* side of the reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod apps;
pub mod bloom;
pub mod client;
pub mod config;
pub mod profile;
pub mod server;
pub mod wire;

pub use addr::TargetAddr;
pub use client::ClientSession;
pub use config::ServerConfig;
pub use profile::{ErrorReaction, Profile};
pub use server::{ServerAction, ServerConn};
