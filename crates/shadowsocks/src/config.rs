//! Server/client configuration.

use crate::profile::Profile;
use sscrypto::kdf::evp_bytes_to_key;
use sscrypto::method::Method;

/// Configuration shared by a Shadowsocks server and its clients.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Cipher method.
    pub method: Method,
    /// Master key (derived from the password via `EVP_BytesToKey`).
    pub master_key: Vec<u8>,
    /// Implementation behaviour profile.
    pub profile: Profile,
    /// Idle timeout in seconds (libev defaults to 60; the paper notes
    /// the GFW's probers give up in under 10).
    pub timeout_secs: u64,
    /// Capacity of the replay filter, if the profile has one.
    pub replay_filter_capacity: usize,
}

impl ServerConfig {
    /// Build a config from a password, deriving the master key exactly
    /// as every Shadowsocks implementation does.
    pub fn new(method: Method, password: &str, profile: Profile) -> ServerConfig {
        ServerConfig {
            method,
            master_key: evp_bytes_to_key(password.as_bytes(), method.key_len()),
            profile,
            timeout_secs: 60,
            replay_filter_capacity: 100_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_has_method_length() {
        for &m in sscrypto::method::ALL_METHODS {
            let c = ServerConfig::new(m, "pw", Profile::LIBEV_OLD);
            assert_eq!(c.master_key.len(), m.key_len());
        }
    }

    #[test]
    fn same_password_same_key() {
        let a = ServerConfig::new(Method::Aes256Gcm, "hunter2", Profile::LIBEV_OLD);
        let b = ServerConfig::new(Method::Aes256Gcm, "hunter2", Profile::LIBEV_NEW);
        assert_eq!(a.master_key, b.master_key);
    }
}
