//! Differential property tests for the lexer: whatever the input, the
//! produced spans must tile the source byte-for-byte. This is the
//! invariant every downstream pass (item tree, W1 span adjacency)
//! leans on, so it gets the widest net we can throw: random fragment
//! soup, adversarial literal edge cases, and every real source file in
//! the workspace.

use gfw_lint::lex::{lex, TokKind};
use proptest::prelude::*;
use std::path::Path;

/// Assert the span-tiling invariant and reassemble the source.
fn assert_tiles(src: &str) {
    let toks = lex(src);
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut rebuilt = String::with_capacity(src.len());
    for t in &toks {
        assert_eq!(
            t.start, pos,
            "gap or overlap before {:?} in {src:?}",
            t.kind
        );
        assert!(t.end > t.start, "empty token {:?} in {src:?}", t.kind);
        assert!(
            t.line >= line,
            "line went backwards at {:?} in {src:?}",
            t.kind
        );
        line = t.line;
        rebuilt.push_str(&src[t.start..t.end]);
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "trailing bytes unlexed in {src:?}");
    assert_eq!(rebuilt, src);
}

/// Fragments chosen to stress every lexer branch: literal forms that
/// share prefixes (`1.5` vs `1..5` vs `1.max`), raw idents and strings,
/// nested block comments, lifetimes vs chars, and plain soup.
const FRAGMENTS: &[&str] = &[
    "fn f()",
    "let x = 1.5;",
    "1..5",
    "1.max(2)",
    "0x_ff_u32",
    "2e9",
    "3.0e-7_f64",
    "b\"bytes\\n\"",
    "\"str with \\\" quote\"",
    "r\"raw\"",
    "r#\"raw # hash\"#",
    "'a'",
    "'\\n'",
    "'static",
    "r#match",
    "// line comment\n",
    "/* block */",
    "/* nested /* still */ comment */",
    "::<>",
    "<<=",
    "+=",
    "=>",
    "..=",
    "macro_rules!",
    "#[cfg(test)]",
    "\n\n  \t ",
    "unsafe { *p }",
    "\u{2603}",
    "self.used",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any concatenation of fragments lexes into spans that tile the
    /// source exactly — no gaps, no overlaps, nothing dropped.
    #[test]
    fn random_fragment_soup_tiles(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let mut src = String::new();
        for (i, p) in picks.iter().enumerate() {
            src.push_str(FRAGMENTS[*p]);
            // Alternate separators so fragments also collide directly.
            if i % 3 == 0 {
                src.push(' ');
            }
        }
        assert_tiles(&src);
    }
}

#[test]
fn every_real_workspace_file_tiles() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut checked = 0usize;
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                if name != "target" && name != "fixtures" && name != "vendor" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).unwrap();
                assert_tiles(&src);
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "only {checked} files found — walk is broken");
}

#[test]
fn literal_edge_cases_classify_and_tile() {
    // The shared-prefix cases the scanner used to get wrong as a
    // line-oriented tool: float vs range vs method call.
    for (src, kind) in [
        ("1.5", TokKind::Float),
        ("1e3", TokKind::Float),
        ("1.", TokKind::Float),
        ("0b1010", TokKind::Int),
        ("1_000_000u64", TokKind::Int),
    ] {
        assert_tiles(src);
        assert_eq!(lex(src)[0].kind, kind, "{src}");
    }
    // `1..5` and `1.max(2)` start with an *integer*.
    assert_eq!(lex("1..5")[0].kind, TokKind::Int);
    assert_eq!(lex("1.max(2)")[0].kind, TokKind::Int);
    assert_tiles("1..5");
    assert_tiles("1.max(2)");
}
