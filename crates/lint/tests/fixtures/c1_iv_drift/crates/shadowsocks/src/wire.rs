//! Wire framing that hardcodes a salt length instead of consulting
//! the method table — C1 requires `.iv_len()` references and a
//! salt-length guard.

/// Hardcoded salt handling; never consults `Method::iv_len`.
pub fn split_salt(buf: &[u8]) -> (&[u8], &[u8]) {
    buf.split_at(32)
}
