//! Fixture protocol crate whose framing hardcodes lengths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;
