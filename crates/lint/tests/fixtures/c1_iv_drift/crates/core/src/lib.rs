//! Fixture sim crate with a truncated NR2 probe length.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod probe;
