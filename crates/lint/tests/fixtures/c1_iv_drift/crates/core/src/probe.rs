//! Probe constants: NR1 centers are fine, but NR2 is too short.

/// Correct trio centers.
pub const NR1_CENTERS: [usize; 7] = [8, 12, 16, 22, 33, 41, 49];

/// Too short: must exceed max AEAD salt (32) + 35 = 67.
pub const NR2_LEN: usize = 60;
