//! Fixture crypto crate with a drifted IV table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod method;
