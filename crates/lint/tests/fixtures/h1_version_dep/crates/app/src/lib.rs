//! Fixture app crate; its manifest is the H1 violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Nothing interesting.
pub fn noop() {}
