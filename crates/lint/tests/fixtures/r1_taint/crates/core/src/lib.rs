//! Fixture sim crate whose simulator reaches nondeterminism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;
