//! The simulator: taints everything it calls (rule R1).

use std::collections::HashMap;

/// Detector simulator state.
pub struct Simulator {
    /// Per-flow byte counters keyed by connection id.
    pub flows: HashMap<u32, u64>,
}

impl Simulator {
    /// One step: the total is order-neutral, the trace dump is not.
    pub fn step(&mut self) -> u64 {
        let total: u64 = self.flows.values().sum();
        for (id, bytes) in self.flows.iter() {
            record(*id, *bytes);
        }
        total + stamp_ms()
    }
}

/// Record one flow observation in the trace.
fn record(id: u32, bytes: u64) {
    let _ = (id, bytes);
    let _ = trace_ms();
}

/// Helper that launders wall-clock time through a non-sim crate.
fn stamp_ms() -> u64 {
    now_ms()
}
