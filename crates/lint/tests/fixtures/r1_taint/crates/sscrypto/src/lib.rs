//! Fixture crypto crate with a wall-clock helper (reachable -> R1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Milliseconds since the epoch — nondeterministic.
pub fn now_ms() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

/// Diagnostic-only timer, waived with a justification.
pub fn trace_ms() -> u64 {
    // gfwlint: allow(R1) -- diagnostic trace only, never in sim output
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
