//! Fixture sim crate whose scheduler reaches for ambient randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheduler;
