//! Event scheduler — seeded with ambient entropy, which D1 forbids.

use rand::thread_rng;
use rand::Rng;

/// Pick a jitter value for the next probe event.
pub fn probe_jitter_ms() -> u64 {
    let mut rng = thread_rng();
    rng.gen_range(0..50)
}

/// Stamp an event with wall-clock time (also forbidden in sim crates).
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
