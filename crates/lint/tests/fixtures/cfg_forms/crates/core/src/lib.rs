//! Fixture: panic sites inside nested cfg(test) regions must not count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parse a numeric config value; the one budgeted panic site.
pub fn parse(v: &str) -> u32 {
    v.parse().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    mod nested {
        use super::*;

        #[test]
        fn parses() {
            assert_eq!(parse("4"), 4);
            let x: u32 = "7".parse().unwrap();
            assert_eq!(x, 7);
        }
    }

    #[test]
    fn after_the_nested_module_is_still_test_code() {
        let y: u32 = "9".parse().unwrap();
        assert_eq!(y, 9);
    }
}

#[cfg(all(test, feature = "slow"))]
mod slow_tests {
    #[test]
    fn conjunctive_cfg_is_test_only() {
        Vec::<u32>::new().pop().unwrap();
    }
}
