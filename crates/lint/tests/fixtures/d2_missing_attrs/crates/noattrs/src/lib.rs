//! A crate that forgot its lint attributes.

/// Nothing interesting.
pub fn noop() {}
