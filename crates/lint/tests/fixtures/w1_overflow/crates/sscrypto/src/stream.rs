//! Stream cipher state: rule W1 audits its counter arithmetic.

/// Keystream position state.
pub struct State {
    /// Consumed keystream bytes.
    pub used: u64,
    /// Smoothed throughput estimate (float math is exempt).
    pub ewma: f64,
}

impl State {
    /// Advance by `n` bytes.
    pub fn advance(&mut self, n: u64) {
        self.used += n;
        let scaled = n * 4;
        self.used = self.used.wrapping_add(scaled);
        self.ewma = self.ewma * 0.5;
        // gfwlint: allow(W1) -- caller bounds the shift to < 8 bits
        self.used = self.used << 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_is_deliberate_in_tests() {
        let mut s = State { used: u64::MAX, ewma: 0.0 };
        s.used += 1;
        assert_eq!(s.used, 0);
    }
}
