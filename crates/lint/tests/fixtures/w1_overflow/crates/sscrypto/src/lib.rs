//! Fixture hot-path crate with overflow-prone counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stream;
