//! Fixture event queue — the one file where a heap is allowed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Far-future overflow store behind the (notional) timer wheel.
#[derive(Default)]
pub struct Overflow {
    heap: BinaryHeap<Reverse<u64>>,
}

impl Overflow {
    /// Park an entry beyond the wheel span.
    pub fn park(&mut self, tick: u64) {
        self.heap.push(Reverse(tick));
    }
}
