//! Fixture scheduler built on a heap — T2 forbids this outside eventq.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A comparison-ordered scheduler (forbidden here).
#[derive(Default)]
pub struct Sched {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl Sched {
    /// Queue an item at a time.
    pub fn push(&mut self, at: u64, item: u32) {
        self.heap.push(Reverse((at, item)));
    }
}

/// An explicitly waived diagnostic helper.
pub fn waived_depth() -> usize {
    std::collections::BinaryHeap::<u32>::new().len() // gfwlint: allow(T2)
}
