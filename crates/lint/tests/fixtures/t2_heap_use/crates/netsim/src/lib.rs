//! Fixture sim crate with a heap-based scheduler, which T2 forbids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eventq;
pub mod sched;
