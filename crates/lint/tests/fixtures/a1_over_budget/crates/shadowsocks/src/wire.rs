//! Wire codec with one budgeted allocation, within its budget.

use sscrypto::seal;

/// One counted allocation site (budget: 1).
pub fn frame(salt: &[u8], data: &[u8], method_iv_len: usize) -> Vec<u8> {
    assert_eq!(salt.len(), method_iv_len, "salt.len() must match .iv_len()");
    let mut out = salt.to_vec();
    out.extend_from_slice(&seal(data));
    out
}
