//! Fixture protocol crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;
