//! Fixture crypto crate whose hot path grew extra allocations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Copies its input per call — two counted allocation sites.
pub fn seal(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&data.to_vec());
    out
}

/// A waived diagnostic copy: the escape is honored, not counted.
pub fn debug_copy(data: &[u8]) -> Vec<u8> {
    data.to_vec() // gfwlint: allow(A1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_allocs_do_not_count() {
        let v = vec![1u8, 2];
        assert_eq!(super::seal(&v), v.clone());
    }
}
