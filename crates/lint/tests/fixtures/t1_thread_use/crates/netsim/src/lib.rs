//! Fixture sim crate that spawns threads, which T1 forbids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod shard;
