//! Fixture worker pool inside a sim crate — T1 forbids this.

use std::thread;
use std::sync::mpsc;

/// Fan a batch of jobs out to spawned threads (forbidden here).
pub fn run_all(jobs: Vec<fn()>) {
    let (tx, rx) = mpsc::channel::<()>();
    for job in jobs {
        let tx = tx.clone();
        thread::spawn(move || {
            job();
            tx.send(()).ok();
        });
    }
    drop(tx);
    for _ in rx.iter() {}
}

/// An explicitly waived diagnostic helper.
pub fn current_name() -> Option<String> {
    std::thread::current().name().map(str::to_owned) // gfwlint: allow(T1)
}
