//! Fixture shard executor — the one netsim file where threads are
//! allowed (it runs whole simulators on worker threads).

/// Advance a batch of cells on scoped worker threads.
pub fn run_sharded(cells: Vec<fn()>) {
    std::thread::scope(|s| {
        for cell in cells {
            s.spawn(cell);
        }
    });
}
