//! Fixture experiments crate: the runner may use threads; nothing else may.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
