//! The run engine — the one file where thread primitives are allowed.

/// Run jobs on scoped worker threads.
pub fn run_jobs(jobs: Vec<fn()>) {
    std::thread::scope(|s| {
        for job in jobs {
            s.spawn(job);
        }
    });
}
