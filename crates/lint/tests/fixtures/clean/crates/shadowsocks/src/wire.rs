//! Wire framing that derives lengths from `Method::iv_len`.

use sscrypto::method::Method;

/// Salt length must come from the method table, never a literal.
pub fn check_salt(salt: &[u8], method: &Method) {
    assert_eq!(salt.len(), method.iv_len(), "bad salt length");
}

/// Header size of the AEAD construction.
pub fn header_len(method: &Method) -> usize {
    method.iv_len() + 2 + 16
}
