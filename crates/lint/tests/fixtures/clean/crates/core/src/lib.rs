//! Fixture sim crate: clean under every rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod probe;

/// Test-rig glue, deliberately exempted from the determinism rule.
pub fn wall_clock_note() -> std::time::Instant {
    std::time::Instant::now() // gfwlint: allow(D1)
}

/// Strings and comments never trip D1: "thread_rng" / Instant::now.
pub fn doc_only() -> &'static str {
    "SystemTime::now is fine inside a string"
}
