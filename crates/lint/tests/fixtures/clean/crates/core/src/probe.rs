//! Probe length constants mirroring the real `core::probe`.

/// NR1 trio centers: stream IVs (8/12/16) and AEAD salt+17 (33/41/49).
pub const NR1_CENTERS: [usize; 7] = [8, 12, 16, 22, 33, 41, 49];

/// NR2 long-probe length, past every AEAD decrypt threshold.
pub const NR2_LEN: usize = 221;

/// The fixture's one budgeted panic site.
pub fn first(xs: &[usize]) -> usize {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_panics_do_not_count() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Option<u8> = Some(4);
        w.expect("counted only outside cfg(test)");
    }
}
