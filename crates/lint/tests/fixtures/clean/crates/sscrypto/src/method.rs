//! Cipher method registry with the paper-correct IV/salt table.

/// Cipher methods (subset of fields needed by the lint fixtures).
#[allow(missing_docs)]
pub enum Method {
    Aes128Ctr,
    Aes192Ctr,
    Aes256Ctr,
    Aes128Cfb,
    Aes192Cfb,
    Aes256Cfb,
    ChaCha20,
    ChaCha20Ietf,
    Rc4Md5,
    Aes128Gcm,
    Aes192Gcm,
    Aes256Gcm,
    ChaCha20IetfPoly1305,
    XChaCha20IetfPoly1305,
}

impl Method {
    /// Stream IV or AEAD salt length in bytes.
    pub fn iv_len(&self) -> usize {
        match self {
            Method::ChaCha20 => 8,
            Method::ChaCha20Ietf => 12,
            Method::Aes128Ctr
            | Method::Aes192Ctr
            | Method::Aes256Ctr
            | Method::Aes128Cfb
            | Method::Aes192Cfb
            | Method::Aes256Cfb
            | Method::Rc4Md5 => 16,
            Method::Aes128Gcm => 16,
            Method::Aes192Gcm => 24,
            Method::Aes256Gcm | Method::ChaCha20IetfPoly1305 | Method::XChaCha20IetfPoly1305 => 32,
        }
    }
}
