//! Fixture crypto crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod method;
