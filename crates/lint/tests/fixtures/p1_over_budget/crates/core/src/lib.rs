//! Fixture sim crate with two panic sites against a budget of one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Two panic sites in non-test code: budget says one.
pub fn sum(a: Option<u32>, b: Option<u32>) -> u32 {
    a.unwrap() + b.expect("b")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_free() {
        assert_eq!(super::sum(Some(1), Some(2)), 3);
        let v: Option<u8> = Some(9);
        assert_eq!(v.unwrap(), 9);
    }
}
