//! SIMD-ish kernels: every unsafe site is audited by rule U1.

/// XOR `b` into `a`, documented invariant.
pub fn xor_documented(a: &mut [u8], b: &[u8]) {
    // SAFETY: both pointers come from live slices of equal length,
    // checked by the caller; no aliasing because `b` is shared.
    unsafe {
        core::ptr::copy_nonoverlapping(b.as_ptr(), a.as_mut_ptr(), b.len());
    }
}

/// An unsafe fn with no stated invariant: flagged.
pub unsafe fn load_unaligned(p: *const u8) -> u8 {
    *p
}

/// A waived site with a justification comment.
pub fn waived(a: &mut [u8]) {
    // gfwlint: allow(U1) -- placeholder kernel, invariant tracked upstream
    unsafe {
        let _ = a.as_mut_ptr();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_unsafe_is_not_counted() {
        unsafe {
            let x = 5u8;
            let _ = core::ptr::addr_of!(x);
        }
    }
}
