//! Fixture crypto crate carrying audited unsafe code.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod simd;
