//! Fixture wire crate with an audited unsafe site but no budget entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reinterpret four bytes, documented.
pub fn read_u32(p: &[u8; 4]) -> u32 {
    // SAFETY: the array reference guarantees four readable bytes.
    unsafe { core::ptr::read_unaligned(p.as_ptr().cast::<u32>()) }
}
