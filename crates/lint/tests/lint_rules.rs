//! End-to-end rule tests against the fixture workspaces under
//! `tests/fixtures/`, asserting exact rule IDs and `file:line` spans.

use gfw_lint::report::{render_human, render_json};
use gfw_lint::{bless, fix::fix, run, Options, Report};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Report {
    run(&Options {
        root: fixture_root(name),
    })
    .expect("lint run failed")
}

/// `(rule, file, line)` triples in report order.
fn spans(report: &Report) -> Vec<(&str, &str, usize)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect()
}

/// Recursively copy a fixture into a scratch dir so `--fix` / `--bless`
/// can mutate it.
fn copy_to_temp(name: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("gfwlint-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    copy_tree(&fixture_root(name), &dst).expect("fixture copy failed");
    dst
}

fn copy_tree(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

#[test]
fn clean_fixture_is_clean() {
    let report = lint_fixture("clean");
    assert!(
        report.is_clean(),
        "expected clean, got:\n{}",
        render_human(&report)
    );
    // The one D1 escape in core/src/lib.rs is honored and reported.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "D1");
    assert_eq!(report.allows[0].file, "crates/core/src/lib.rs");
    assert_eq!(report.allows[0].line, 10);
    // Panic counts reflect the single budgeted unwrap in probe.rs.
    assert_eq!(report.panic_counts.get("core"), Some(&1));
    assert_eq!(report.panic_counts.get("sscrypto"), Some(&0));
    // Alloc counts cover both hot-path areas, allocation-free here.
    assert_eq!(report.alloc_counts.get("sscrypto"), Some(&0));
    assert_eq!(report.alloc_counts.get("shadowsocks-wire"), Some(&0));
}

#[test]
fn d1_flags_thread_rng_and_wall_clock_in_scheduler() {
    // ISSUE acceptance: seeding a `thread_rng()` call into a
    // scheduler.rs-like file in a sim crate must fail the lint.
    let report = lint_fixture("d1_thread_rng");
    assert_eq!(
        spans(&report),
        vec![
            ("D1", "crates/core/src/scheduler.rs", 3),
            ("D1", "crates/core/src/scheduler.rs", 8),
            ("D1", "crates/core/src/scheduler.rs", 14),
        ],
        "got:\n{}",
        render_human(&report)
    );
    assert!(report.findings[0].message.contains("`thread_rng`"));
    assert!(report.findings[2].message.contains("`SystemTime::now`"));
}

#[test]
fn d2_flags_missing_crate_attributes() {
    let report = lint_fixture("d2_missing_attrs");
    assert_eq!(
        spans(&report),
        vec![
            ("D2", "crates/noattrs/src/lib.rs", 1),
            ("D2", "crates/noattrs/src/lib.rs", 1),
        ]
    );
    assert!(report.findings[0]
        .message
        .contains("#![forbid(unsafe_code)]"));
    assert!(report.findings[1]
        .message
        .contains("#![warn(missing_docs)]"));
}

#[test]
fn p1_flags_count_over_budget() {
    let report = lint_fixture("p1_over_budget");
    assert_eq!(spans(&report), vec![("P1", "crates/core/src/lib.rs", 1)]);
    let msg = &report.findings[0].message;
    assert!(msg.contains("2 explicit panic sites"), "message: {msg}");
    assert!(msg.contains("budget of 1"), "message: {msg}");
    // The unwraps inside #[cfg(test)] are not counted.
    assert_eq!(report.panic_counts.get("core"), Some(&2));
}

#[test]
fn a1_flags_alloc_count_over_budget() {
    // ISSUE acceptance: the crypto hot path exceeding its allocation
    // budget must fail the lint; escapes and test code do not count.
    let report = lint_fixture("a1_over_budget");
    assert_eq!(
        spans(&report),
        vec![("A1", "crates/sscrypto/src/lib.rs", 1)],
        "got:\n{}",
        render_human(&report)
    );
    let msg = &report.findings[0].message;
    assert!(msg.contains("2 heap-allocation sites"), "message: {msg}");
    assert!(msg.contains("budget of 1"), "message: {msg}");
    // The wire area's one allocation is within its budget of 1.
    assert_eq!(report.alloc_counts.get("shadowsocks-wire"), Some(&1));
    assert_eq!(report.alloc_counts.get("sscrypto"), Some(&2));
    // The waived diagnostic copy's escape is honored, not counted.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "A1");
    assert_eq!(report.allows[0].file, "crates/sscrypto/src/lib.rs");
    assert_eq!(report.allows[0].line, 15);
}

#[test]
fn a1_bless_refuses_to_raise_alloc_budgets() {
    let root = copy_to_temp("a1_over_budget");
    let err = bless(&root).expect_err("bless should refuse to raise an alloc budget");
    assert!(err.contains("alloc sscrypto: 2 > 1"), "error: {err}");
    let text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap();
    assert!(text.contains("sscrypto = 1"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn c1_flags_iv_drift_short_probe_and_hardcoded_wire() {
    // ISSUE acceptance: editing `Method::ChaCha20Ietf`'s IV length in a
    // method.rs-like file must fail the lint at the drifted arm.
    let report = lint_fixture("c1_iv_drift");
    assert_eq!(
        spans(&report),
        vec![
            ("C1", "crates/sscrypto/src/method.rs", 27),
            ("C1", "crates/core/src/probe.rs", 7),
            ("C1", "crates/shadowsocks/src/wire.rs", 1),
            ("C1", "crates/shadowsocks/src/wire.rs", 1),
        ],
        "got:\n{}",
        render_human(&report)
    );
    let drift = &report.findings[0].message;
    assert!(drift.contains("`Method::ChaCha20Ietf`"), "message: {drift}");
    assert!(drift.contains("16-byte IV"), "message: {drift}");
    assert!(drift.contains("requires 12"), "message: {drift}");
    assert!(report.findings[1].message.contains("`NR2_LEN` = 60"));
    assert!(report.findings[2].message.contains("0 reference(s)"));
    assert!(report.findings[3].message.contains("salt-length guard"));
}

#[test]
fn h1_flags_versioned_and_path_deps() {
    let report = lint_fixture("h1_version_dep");
    assert_eq!(
        spans(&report),
        vec![
            ("H1", "crates/app/Cargo.toml", 7),
            ("H1", "crates/app/Cargo.toml", 8),
        ]
    );
    assert!(report.findings[0].message.contains("`rand`"));
    assert!(report.findings[1].message.contains("`bytes`"));
}

#[test]
fn t1_flags_threads_outside_the_runner() {
    let report = lint_fixture("t1_thread_use");
    assert_eq!(
        spans(&report),
        vec![
            ("T1", "crates/netsim/src/pool.rs", 3),
            ("T1", "crates/netsim/src/pool.rs", 4),
            ("T1", "crates/netsim/src/pool.rs", 11),
        ],
        "got:\n{}",
        render_human(&report)
    );
    assert!(report.findings[0].message.contains("`std::thread`"));
    assert!(report.findings[1].message.contains("`std::sync::mpsc`"));
    assert!(report.findings[2].message.contains("`thread::spawn`"));
    // `experiments::runner` and `netsim::shard` both use
    // `std::thread::scope` and are the two exempt files — neither
    // produces a finding; the waived diagnostic helper's escape is
    // honored, not flagged.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.ends_with("runner.rs") || f.file.ends_with("shard.rs")),
        "exempt file flagged:\n{}",
        render_human(&report)
    );
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "T1");
    assert_eq!(report.allows[0].file, "crates/netsim/src/pool.rs");
    assert_eq!(report.allows[0].line, 22);
}

#[test]
fn t2_flags_heaps_outside_the_event_queue() {
    let report = lint_fixture("t2_heap_use");
    assert_eq!(
        spans(&report),
        vec![
            ("T2", "crates/netsim/src/sched.rs", 4),
            ("T2", "crates/netsim/src/sched.rs", 9),
        ],
        "got:\n{}",
        render_human(&report)
    );
    assert!(report.findings[0].message.contains("`BinaryHeap`"));
    assert!(report.findings[0].message.contains("netsim::eventq"));
    // The fixture's own `eventq.rs` keeps its overflow heap (path
    // exempt); the waived diagnostic helper's escape is honored.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "T2");
    assert_eq!(report.allows[0].file, "crates/netsim/src/sched.rs");
    assert_eq!(report.allows[0].line, 21);
}

#[test]
fn fix_inserts_missing_attributes() {
    let root = copy_to_temp("d2_missing_attrs");
    let opts = Options { root: root.clone() };
    let (applied, after) = fix(&opts).expect("fix failed");
    assert_eq!(applied.len(), 2);
    assert!(after.is_clean(), "after fix:\n{}", render_human(&after));
    let text = std::fs::read_to_string(root.join("crates/noattrs/src/lib.rs")).unwrap();
    assert!(text.contains("#![forbid(unsafe_code)]"));
    assert!(text.contains("#![warn(missing_docs)]"));
    // The doc header stays first.
    assert!(text.starts_with("//!"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fix_rewrites_only_workspace_defined_deps() {
    let root = copy_to_temp("h1_version_dep");
    let opts = Options { root: root.clone() };
    let (applied, after) = fix(&opts).expect("fix failed");
    // `rand` is defined in the root [workspace.dependencies]; `bytes`
    // is not, so its finding must be left for a human.
    assert_eq!(applied.len(), 1);
    assert!(applied[0].what.contains("`rand`"));
    assert_eq!(spans(&after), vec![("H1", "crates/app/Cargo.toml", 8)]);
    let text = std::fs::read_to_string(root.join("crates/app/Cargo.toml")).unwrap();
    assert!(text.contains("rand.workspace = true"));
    assert!(text.contains("bytes = { path = \"../bytes\" }"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bless_refuses_to_raise_budgets() {
    let root = copy_to_temp("p1_over_budget");
    let err = bless(&root).expect_err("bless should refuse to raise a budget");
    assert!(err.contains("core: 2 > 1"), "error: {err}");
    // The refusal must not touch the checked-in baseline.
    let text = std::fs::read_to_string(root.join("lint-baseline.toml")).unwrap();
    assert!(text.contains("core = 1"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bless_creates_missing_baseline() {
    let root = copy_to_temp("clean");
    std::fs::remove_file(root.join("lint-baseline.toml")).unwrap();
    let before = run(&Options { root: root.clone() }).unwrap();
    assert_eq!(spans(&before), vec![("P1", "lint-baseline.toml", 0)]);
    let summary = bless(&root).expect("bless failed");
    assert!(summary.contains("core = 1"), "summary: {summary}");
    let after = run(&Options { root: root.clone() }).unwrap();
    assert!(after.is_clean(), "after bless:\n{}", render_human(&after));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn json_output_carries_rules_spans_and_clean_flag() {
    let report = lint_fixture("d1_thread_rng");
    let json = render_json(&report);
    assert!(json.contains("\"rule\": \"D1\""));
    assert!(json.contains("\"file\": \"crates/core/src/scheduler.rs\""));
    assert!(json.contains("\"line\": 3"));
    assert!(json.contains("\"clean\": false"));
    let clean = render_json(&lint_fixture("clean"));
    assert!(clean.contains("\"clean\": true"));
    assert!(
        clean.contains("\"rule\": \"D1\""),
        "allows carry their rule"
    );
}

#[test]
fn real_workspace_is_clean() {
    // The repository itself must pass its own linter: this is the same
    // invariant ci.sh enforces.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&Options { root }).expect("lint run failed");
    assert!(
        report.is_clean(),
        "repository lint findings:\n{}",
        render_human(&report)
    );
}

#[test]
fn r1_flags_nondeterminism_reachable_from_the_simulator() {
    // ISSUE acceptance: a helper chain from an `impl Simulator` method
    // into a non-sim crate's wall-clock call must fail the lint, as
    // must hash-ordered map iteration in the simulator itself.
    let report = lint_fixture("r1_taint");
    assert_eq!(
        spans(&report),
        vec![
            ("R1", "crates/core/src/sim.rs", 15),
            ("R1", "crates/sscrypto/src/lib.rs", 8),
        ],
        "got:\n{}",
        render_human(&report)
    );
    let iter = &report.findings[0].message;
    assert!(
        iter.contains("iteration over hash-ordered `flows`"),
        "message: {iter}"
    );
    assert!(
        iter.contains("via core::Simulator::step"),
        "message: {iter}"
    );
    let clock = &report.findings[1].message;
    assert!(clock.contains("`SystemTime::now`"), "message: {clock}");
    assert!(
        clock.contains("via core::Simulator::step -> core::stamp_ms -> sscrypto::now_ms"),
        "taint chain must name every hop: {clock}"
    );
    // The `.values().sum()` line is order-neutral and not flagged; the
    // diagnostic-only `Instant::now` escape is honored.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "R1");
    assert_eq!(report.allows[0].file, "crates/sscrypto/src/lib.rs");
    assert_eq!(report.allows[0].line, 15);
}

#[test]
fn u1_flags_missing_safety_comments_and_budget_breaches() {
    let report = lint_fixture("u1_unsafe");
    assert_eq!(
        spans(&report),
        vec![
            ("U1", "crates/sscrypto/src/simd.rs", 13),
            ("U1", "lint-baseline.toml", 0),
            ("U1", "crates/sscrypto/src/lib.rs", 1),
        ],
        "got:\n{}",
        render_human(&report)
    );
    assert!(report.findings[0]
        .message
        .contains("unsafe fn without an adjacent `// SAFETY:`"));
    assert!(report.findings[1]
        .message
        .contains("no [unsafe-budget] entry"));
    assert!(report.findings[2].message.contains("over its budget of 2"));
    // Sites in #[cfg(test)] are not counted: 3 for sscrypto, not 4.
    assert_eq!(report.unsafe_counts.get("sscrypto"), Some(&3));
    assert_eq!(report.unsafe_counts.get("shadowsocks"), Some(&1));
    // The SAFETY-commented block and the waived block produce no
    // per-site findings; the waiver is honored.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "U1");
    assert_eq!(report.allows[0].file, "crates/sscrypto/src/simd.rs");
    assert_eq!(report.allows[0].line, 20);
}

#[test]
fn w1_flags_bare_ops_on_boundary_crossing_integer_state() {
    let report = lint_fixture("w1_overflow");
    assert_eq!(
        spans(&report),
        vec![
            ("W1", "crates/sscrypto/src/stream.rs", 14),
            ("W1", "crates/sscrypto/src/stream.rs", 15),
        ],
        "got:\n{}",
        render_human(&report)
    );
    let field = &report.findings[0].message;
    assert!(
        field.contains("`+=` on hot-path integer state `self.used` (u64)"),
        "message: {field}"
    );
    assert!(field.contains("wrapping_add"), "message: {field}");
    let param = &report.findings[1].message;
    assert!(
        param.contains("`*` on hot-path integer state `n` (u64)"),
        "message: {param}"
    );
    assert!(param.contains("wrapping_mul"), "message: {param}");
    // `wrapping_add` lines, f64 math and #[cfg(test)] code are not
    // flagged; the bounded-shift waiver is honored.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "W1");
    assert_eq!(report.allows[0].line, 19);
}

#[test]
fn cfg_test_regions_are_exact_for_nested_and_conjunctive_forms() {
    // Regression: panic sites inside a module nested under
    // `#[cfg(test)]`, after that nested module closes, and under
    // `#[cfg(all(test, ...))]` must all stay out of the P1 count.
    let report = lint_fixture("cfg_forms");
    assert!(
        report.is_clean(),
        "expected clean, got:\n{}",
        render_human(&report)
    );
    assert_eq!(report.panic_counts.get("core"), Some(&1));
}

#[test]
fn json_schema_keys_are_stable_and_ordered() {
    // The `--json` shape is consumed by CI tooling: the top-level key
    // set and order are a compatibility contract.
    let expected = [
        "\"findings\"",
        "\"allows\"",
        "\"panic_counts\"",
        "\"alloc_counts\"",
        "\"unsafe_counts\"",
        "\"panic_sites\"",
        "\"alloc_sites\"",
        "\"files_scanned\"",
        "\"clean\"",
    ];
    for fixture in ["clean", "u1_unsafe", "w1_overflow"] {
        let json = render_json(&lint_fixture(fixture));
        let mut last = 0usize;
        for key in &expected {
            let at = json
                .find(key)
                .unwrap_or_else(|| panic!("{fixture}: missing top-level key {key} in:\n{json}"));
            assert!(at > last, "{fixture}: key {key} out of order");
            last = at;
        }
    }
    // Budget sites carry their enclosing function for aggregation.
    let json = render_json(&lint_fixture("cfg_forms"));
    assert!(json.contains("\"function\": \"parse\""), "got:\n{json}");
}

#[test]
fn explain_covers_every_rule() {
    for rule in [
        "D1", "D2", "P1", "A1", "C1", "H1", "T1", "T2", "R1", "U1", "W1",
    ] {
        let text =
            gfw_lint::explain::explain(rule).unwrap_or_else(|| panic!("--explain {rule} missing"));
        assert!(text.contains(rule), "{rule}: {text}");
        assert!(text.len() > 80, "{rule} explanation too thin: {text}");
    }
    assert!(gfw_lint::explain::explain("Z9").is_none());
    assert!(gfw_lint::explain::index().contains("W1"));
}
