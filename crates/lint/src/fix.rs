//! `--fix`: mechanical repairs for the rules where the correct edit is
//! unambiguous.
//!
//! * **D2** — insert the missing `#![forbid(unsafe_code)]` /
//!   `#![warn(missing_docs)]` after the crate root's doc-comment header.
//! * **H1** — rewrite a versioned/path dependency line to
//!   `name.workspace = true`, but only when the root
//!   `[workspace.dependencies]` already defines that name (otherwise the
//!   fix would break the build, so the finding is left for a human).
//!
//! D1/P1/C1 findings are semantic and never auto-fixed.

use crate::{run, Options, Report, Workspace};
use std::path::Path;

/// One applied fix, for reporting.
#[derive(Debug)]
pub struct Applied {
    /// Root-relative file that was rewritten.
    pub file: String,
    /// What was done.
    pub what: String,
}

/// Apply all mechanical fixes for the current findings, then re-run the
/// lint. Returns the applied fixes and the post-fix report.
pub fn fix(opts: &Options) -> Result<(Vec<Applied>, Report), String> {
    let before = run(opts)?;
    let ws = Workspace::load(&opts.root)?;
    let mut applied = Vec::new();
    for finding in &before.findings {
        match finding.rule {
            // D2 messages read: crate `name` is missing `#![attr]` — the
            // attribute is the second backticked chunk.
            "D2" => {
                if let Some(attr) = finding.message.split('`').nth(3) {
                    let path = ws.root.join(&finding.file);
                    if insert_inner_attr(&path, attr)? {
                        applied.push(Applied {
                            file: finding.file.clone(),
                            what: format!("inserted `{attr}`"),
                        });
                    }
                }
            }
            "H1" => {
                if let Some(dep) = finding.message.split('`').nth(1) {
                    let path = ws.root.join(&finding.file);
                    if rewrite_workspace_dep(&path, &ws.root, dep, finding.line)? {
                        applied.push(Applied {
                            file: finding.file.clone(),
                            what: format!("rewrote `{dep}` to `{dep}.workspace = true`"),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    let after = run(opts)?;
    Ok((applied, after))
}

/// Insert an inner attribute after the crate root's `//!` doc header and
/// any existing inner attributes. Returns false if already present.
fn insert_inner_attr(path: &Path, attr: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if text.contains(attr) {
        return Ok(false);
    }
    let lines: Vec<&str> = text.lines().collect();
    // The header is the leading run of doc comments, inner attributes
    // and blank lines; insert at its end.
    let mut insert_at = 0;
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if t.starts_with("//!") || t.starts_with("#![") || t.is_empty() {
            if t.starts_with("//!") || t.starts_with("#![") {
                insert_at = i + 1;
            }
        } else {
            break;
        }
    }
    let mut out: Vec<String> = lines[..insert_at].iter().map(|s| s.to_string()).collect();
    // Keep attributes visually grouped: no blank line between attrs, one
    // blank line after a doc header.
    if insert_at > 0 && lines[insert_at - 1].trim_start().starts_with("//!") {
        out.push(String::new());
    }
    out.push(attr.to_string());
    if insert_at < lines.len() && !lines[insert_at].trim().is_empty() {
        out.push(String::new());
    }
    out.extend(lines[insert_at..].iter().map(|s| s.to_string()));
    let mut joined = out.join("\n");
    if text.ends_with('\n') {
        joined.push('\n');
    }
    std::fs::write(path, joined).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(true)
}

/// Rewrite line `lineno` (1-based) of a manifest to `dep.workspace =
/// true`, provided the root `[workspace.dependencies]` defines `dep`.
fn rewrite_workspace_dep(
    path: &Path,
    root: &Path,
    dep: &str,
    lineno: usize,
) -> Result<bool, String> {
    if !workspace_defines(root, dep)? {
        return Ok(false);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines: Vec<String> = text.lines().map(|s| s.to_string()).collect();
    let Some(line) = lineno.checked_sub(1).and_then(|i| lines.get_mut(i)) else {
        return Ok(false);
    };
    if !line.trim_start().starts_with(dep) {
        return Ok(false);
    }
    *line = format!("{dep}.workspace = true");
    let mut joined = lines.join("\n");
    if text.ends_with('\n') {
        joined.push('\n');
    }
    std::fs::write(path, joined).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(true)
}

/// Does the root manifest's `[workspace.dependencies]` define `dep`?
fn workspace_defines(root: &Path, dep: &str) -> Result<bool, String> {
    let path = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut in_table = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table {
            if let Some((key, _)) = line.split_once('=') {
                if key.trim() == dep || key.trim().starts_with(&format!("{dep}.")) {
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}
