//! # gfw-lint — workspace invariant checker
//!
//! A dependency-free static-analysis engine for this workspace. Every
//! `.rs` file is run through a hand-rolled span lexer ([`lex`]) and an
//! item-tree pass ([`items`]) recovering functions, impls, `#[cfg]`
//! regions and `unsafe` sites; [`scan`] projects that onto per-line
//! code/comment views, and [`callgraph`] builds the name-based call
//! graph R1 walks. The rules, reported as `file:line` findings:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | `D1` | No wall-clock or OS-entropy calls (`SystemTime::now`, `Instant::now`, `thread_rng`, `from_entropy`) in the simulation crates (`core`, `netsim`, `probesim`, `trafficgen`, `defense`). Simulations must be a pure function of their seed. |
//! | `D2` | Every crate root carries `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`. |
//! | `P1` | Explicit panic sites (`unwrap()` / `expect(` / `panic!` / `unreachable!`) in the non-test code of `core`, `netsim` and `sscrypto` stay within the checked-in budget (`lint-baseline.toml`), which only ratchets downward. |
//! | `A1` | Heap-allocation sites (`.to_vec()` / `Vec::new()` / `.clone()`) in the non-test code of the crypto hot path (`sscrypto` and `shadowsocks::wire`) stay within the checked-in `[alloc-budget]` (`lint-baseline.toml`), which only ratchets downward — per-chunk allocations must not creep back into the codec. |
//! | `C1` | The protocol constants agree across crates: the stream-IV and AEAD-salt lengths declared by `sscrypto::method::Method::iv_len` match the paper (8/12/16 and 16/24/32), the probe length sweep in `core::probe` covers them, and `shadowsocks::wire` derives its salt length from `Method::iv_len` instead of hardcoding one. |
//! | `H1` | Member `Cargo.toml`s take every dependency via `workspace = true`; versions live only in the root `[workspace.dependencies]`. |
//! | `T1` | Thread primitives (`std::thread`, `thread::spawn`/`scope`/`Builder`, `std::sync::mpsc`, `rayon`) appear only in `experiments::runner`; the simulation crates (`core`, `netsim`, `probesim`, `trafficgen`, `defense`, `shadowsocks`, `sscrypto`) and the rest of `experiments` stay single-threaded-deterministic. |
//! | `T2` | `BinaryHeap` appears only in `netsim::eventq` (the timer wheel's far-future overflow store). Everything time-ordered routes through `netsim::eventq::EventQueue`; non-test code elsewhere in those same crates must not reintroduce a heap-based scheduler. |
//! | `R1` | Determinism taint: no clock/entropy call or hash-ordered `HashMap`/`HashSet` iteration in any function reachable from an `impl Simulator` method, across every crate the sim can depend on (including `shadowsocks`, `sscrypto`, `analysis`). |
//! | `U1` | Every non-test `unsafe` block/fn/impl carries an adjacent `// SAFETY:` comment, and per-crate unsafe-site counts stay within the `[unsafe-budget]` table of `lint-baseline.toml` (ratchet-down, like P1/A1). |
//! | `W1` | In the hot-path modules (`sscrypto`, `netsim::eventq`, `gfw_core::passive`, `shadowsocks::wire`), bare `+`/`*`/`<<` (and their `=`-compounds) on integer state crossing a function boundary (params, `self` fields) must be `wrapping_*`/`checked_*`/`saturating_*` or carry an allow. |
//!
//! Individual findings can be suppressed with an inline escape —
//! `// gfwlint: allow(D1)` on the offending line or alone on the line
//! above (`# gfwlint: allow(H1)` in TOML). Escapes are counted and
//! reported, never silent.
//!
//! The binary (`cargo run -p gfw-lint`) exits 0 when clean, 1 on
//! findings, 2 on usage or I/O errors, and supports `--json` (machine
//! output, with panic/alloc sites attributed to their enclosing
//! function), `--fix` (mechanical repairs for D2/H1), `--bless`
//! (regenerate the P1/A1/U1 baselines, downward only) and
//! `--explain RULE` (print a rule's rationale and escape hatch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod explain;
pub mod fix;
pub mod items;
pub mod lex;
pub mod report;
pub mod rules;
pub mod scan;

use scan::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule ID (`D1`, `D2`, `P1`, `C1`, `H1`, `T1`, `T2`).
    pub rule: &'static str,
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line number (0 when the finding is file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// One honored `gfwlint: allow(...)` escape.
#[derive(Debug, Clone)]
pub struct AllowUse {
    /// The rule that was suppressed.
    pub rule: String,
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
}

/// One budget-counted site (panic or allocation), attributed to its
/// enclosing function via the item tree.
#[derive(Debug, Clone)]
pub struct Site {
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Qualified name of the enclosing function (module/impl path,
    /// without the crate name), or `(file scope)` outside any fn.
    pub function: String,
    /// The counted token (`.unwrap()`, `.clone()`, …).
    pub token: String,
}

/// The result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in deterministic (file, line) order per rule.
    pub findings: Vec<Finding>,
    /// Escapes that suppressed a real would-be finding.
    pub allows: Vec<AllowUse>,
    /// Number of files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
    /// Current P1 panic-site counts per budgeted crate.
    pub panic_counts: BTreeMap<String, usize>,
    /// Current A1 heap-allocation counts per budgeted hot-path area.
    pub alloc_counts: BTreeMap<String, usize>,
    /// Current U1 unsafe-site counts per crate (crates with zero sites
    /// are omitted).
    pub unsafe_counts: BTreeMap<String, usize>,
    /// Every counted P1 panic site, attributed to its function.
    pub panic_sites: Vec<Site>,
    /// Every counted A1 allocation site, attributed to its function.
    pub alloc_sites: Vec<Site>,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// A member crate: directory name (not package name) and its path.
#[derive(Debug)]
pub struct CrateDir {
    /// Directory name under `crates/` (e.g. `core`, `sscrypto`).
    pub name: String,
    /// Absolute path to the crate directory.
    pub path: PathBuf,
}

/// The scanned workspace: every member crate with its sources loaded.
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Member crates under `crates/` (sorted by name).
    pub crates: Vec<CrateDir>,
    /// All scanned `.rs` files, keyed by root-relative path.
    pub sources: BTreeMap<String, SourceFile>,
}

impl Workspace {
    /// Load and scan the workspace at `root`.
    ///
    /// Walks `src/` at the root plus every crate directory under
    /// `crates/`, skipping `target/` and any `fixtures/` directory
    /// (those hold intentionally-broken lint test inputs).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let root = root
            .canonicalize()
            .map_err(|e| format!("{}: {e}", root.display()))?;
        let mut crates = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
                .map_err(|e| format!("{}: {e}", crates_dir.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
                .collect();
            entries.sort();
            for path in entries {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                crates.push(CrateDir { name, path });
            }
        }

        let mut files = Vec::new();
        walk_rs(&root.join("src"), &mut files);
        for c in &crates {
            walk_rs(&c.path, &mut files);
        }
        files.sort();

        let mut sources = BTreeMap::new();
        for path in files {
            let sf =
                SourceFile::load(&root, &path).map_err(|e| format!("{}: {e}", path.display()))?;
            sources.insert(sf.rel.clone(), sf);
        }

        Ok(Workspace {
            root,
            crates,
            sources,
        })
    }

    /// All scanned sources whose root-relative path starts with `prefix`.
    pub fn sources_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.sources
            .iter()
            .filter(move |(rel, _)| rel.starts_with(prefix))
            .map(|(_, sf)| sf)
    }
}

/// Recursively collect `.rs` files, skipping `target/` and `fixtures/`.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint options.
#[derive(Debug, Default)]
pub struct Options {
    /// Workspace root to lint.
    pub root: PathBuf,
}

/// Run every rule against the workspace at `opts.root`.
pub fn run(opts: &Options) -> Result<Report, String> {
    let ws = Workspace::load(&opts.root)?;
    let mut report = Report {
        files_scanned: ws.sources.len(),
        ..Report::default()
    };
    rules::d1_determinism(&ws, &mut report);
    rules::d2_crate_attrs(&ws, &mut report);
    rules::p1_panic_budget(&ws, &mut report)?;
    rules::a1_alloc_budget(&ws, &mut report)?;
    rules::c1_protocol_constants(&ws, &mut report);
    rules::h1_workspace_deps(&ws, &mut report)?;
    rules::t1_thread_isolation(&ws, &mut report);
    rules::t2_heap_isolation(&ws, &mut report);
    callgraph::r1_determinism_taint(&ws, &mut report);
    rules::u1_unsafe_audit(&ws, &mut report)?;
    rules::w1_wrapping_audit(&ws, &mut report);
    Ok(report)
}

/// Regenerate the P1 and A1 baselines from current counts. Budgets only
/// ratchet downward: if any crate's or area's current count exceeds its
/// existing budget, this fails and tells the caller to fix the
/// regressions instead.
///
/// Returns a human-readable summary of what was written.
pub fn bless(root: &Path) -> Result<String, String> {
    let ws = Workspace::load(root)?;
    let counts = rules::panic_counts(&ws);
    let allocs = rules::alloc_counts(&ws);
    let unsafes = rules::unsafe_counts(&ws);
    if let Some(old) = baseline::Baseline::load(&ws.root)? {
        let mut raised = Vec::new();
        for (name, &count) in &counts {
            if let Some(&budget) = old.budgets.get(name) {
                if count > budget {
                    raised.push(format!("{name}: {count} > {budget}"));
                }
            }
        }
        for (name, &count) in &allocs {
            if let Some(&budget) = old.alloc_budgets.get(name) {
                if count > budget {
                    raised.push(format!("alloc {name}: {count} > {budget}"));
                }
            }
        }
        for (name, &count) in &unsafes {
            if let Some(&budget) = old.unsafe_budgets.get(name) {
                if count > budget {
                    raised.push(format!("unsafe {name}: {count} > {budget}"));
                }
            }
        }
        if !raised.is_empty() {
            return Err(format!(
                "refusing to bless: budgets only ratchet downward ({}); \
                 fix the regressions or raise the budget by hand in {}",
                raised.join(", "),
                baseline::BASELINE_FILE
            ));
        }
    }
    let new = baseline::Baseline {
        budgets: counts.clone(),
        alloc_budgets: allocs.clone(),
        unsafe_budgets: unsafes.clone(),
    };
    new.store(&ws.root)?;
    let mut summary: Vec<String> = counts.iter().map(|(n, c)| format!("{n} = {c}")).collect();
    summary.extend(allocs.iter().map(|(n, c)| format!("alloc {n} = {c}")));
    summary.extend(unsafes.iter().map(|(n, c)| format!("unsafe {n} = {c}")));
    Ok(format!(
        "blessed {} ({})",
        baseline::BASELINE_FILE,
        summary.join(", ")
    ))
}
