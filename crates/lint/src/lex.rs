//! A dependency-free Rust lexer with byte spans.
//!
//! Produces a flat token stream whose spans tile the source exactly:
//! concatenating `&src[tok.start..tok.end]` over all tokens reassembles
//! the input byte-for-byte (pinned by `tests/lex_props.rs`). The item
//! tree ([`crate::items`]) and the token-level rules (U1/W1) are built
//! on top of this stream; the line-oriented [`crate::scan`] view is
//! derived from it too, so every rule sees one consistent tokenization.
//!
//! The lexer covers the subset of Rust this workspace uses: nested
//! block comments, all string forms (`"…"`, `r#"…"#`, `b"…"`, `br"…"`),
//! char literals vs lifetimes, raw identifiers, and numeric literals
//! with suffixes. Unknown bytes become one-byte [`TokKind::Unknown`]
//! tokens rather than errors — a linter must never die on the code it
//! is judging.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run.
    Ws,
    /// `// …` (including doc `///` and `//!`) up to end of line.
    LineComment,
    /// `/* … */`, possibly nested and spanning lines.
    BlockComment,
    /// Identifier or keyword (`fn`, `unsafe`, `self`, names, …).
    Ident,
    /// Raw identifier `r#name`.
    RawIdent,
    /// Lifetime `'a` (no closing quote).
    Lifetime,
    /// Char literal `'x'`, `'\n'`, `'\u{1F600}'`; also byte `b'x'`.
    Char,
    /// String literal of any form (plain, raw, byte, byte-raw).
    Str,
    /// Integer literal (including `0x…`/`0b…`/`0o…` and suffixes).
    Int,
    /// Float literal (`1.0`, `1e9`, `2.5f64`).
    Float,
    /// One punctuation byte (`+`, `{`, `<`, …). Multi-byte operators
    /// appear as adjacent tokens; adjacency is checkable via spans.
    Punct(char),
    /// Any byte the lexer does not classify (kept verbatim).
    Unknown,
}

/// One token: kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for whitespace and comments.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// Lex `src` into a token stream whose spans tile the input.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.toks.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advance one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.bytes.len() {
                self.bump();
            }
        }
    }

    fn next_kind(&mut self) -> TokKind {
        let b = self.bytes[self.pos];
        // Whitespace.
        if b.is_ascii_whitespace() {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.bump();
            }
            return TokKind::Ws;
        }
        // Comments.
        if b == b'/' && self.peek(1) == b'/' {
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                self.bump();
            }
            return TokKind::LineComment;
        }
        if b == b'/' && self.peek(1) == b'*' {
            self.bump_n(2);
            let mut depth = 1usize;
            while self.pos < self.bytes.len() && depth > 0 {
                if self.bytes[self.pos] == b'/' && self.peek(1) == b'*' {
                    depth += 1;
                    self.bump_n(2);
                } else if self.bytes[self.pos] == b'*' && self.peek(1) == b'/' {
                    depth -= 1;
                    self.bump_n(2);
                } else {
                    self.bump();
                }
            }
            return TokKind::BlockComment;
        }
        // Raw identifiers and raw/byte string prefixes.
        if b == b'r' || b == b'b' {
            if let Some(kind) = self.try_prefixed_literal() {
                return kind;
            }
        }
        // Identifiers (ASCII; this workspace has no unicode idents).
        if b.is_ascii_alphabetic() || b == b'_' {
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                self.bump();
            }
            return TokKind::Ident;
        }
        // Numbers.
        if b.is_ascii_digit() {
            return self.lex_number();
        }
        // Strings.
        if b == b'"' {
            self.bump();
            self.lex_str_body(0);
            return TokKind::Str;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            return self.lex_quote();
        }
        // Punctuation (single ASCII byte).
        if b.is_ascii_punctuation() {
            self.bump();
            return TokKind::Punct(b as char);
        }
        // Anything else (unicode in the raw text outside comments —
        // should not happen, but never fail): consume one char.
        let ch_len = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.bump_n(ch_len);
        TokKind::Unknown
    }

    /// `r#ident`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `b'x'` — or None
    /// when the `r`/`b` is just the start of a plain identifier.
    fn try_prefixed_literal(&mut self) -> Option<TokKind> {
        let b = self.bytes[self.pos];
        let (raw_at, byte_prefix) = match (b, self.peek(1)) {
            (b'r', b'#') => {
                // Raw identifier r#name (not r#" which is a raw string).
                if self.peek(2) == b'"' {
                    (1, false)
                } else if self.peek(2).is_ascii_alphabetic() || self.peek(2) == b'_' {
                    self.bump_n(2);
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || self.bytes[self.pos] == b'_')
                    {
                        self.bump();
                    }
                    return Some(TokKind::RawIdent);
                } else {
                    return None;
                }
            }
            (b'r', b'"') => (1, false),
            (b'b', b'r') => (2, false),
            (b'b', b'"') => (1, true),
            (b'b', b'\'') => {
                // Byte char literal b'x'.
                self.bump(); // b
                return Some(self.lex_quote());
            }
            _ => return None,
        };
        let _ = byte_prefix;
        // Count hashes after the raw marker.
        let mut hashes = 0usize;
        while self.peek(raw_at + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(raw_at + hashes) != b'"' {
            return None; // plain identifier starting with r/b
        }
        if raw_at == 1 && self.bytes[self.pos] == b'b' {
            // b"…": not raw, ordinary escapes.
            self.bump_n(2); // b"
            self.lex_str_body(0);
            return Some(TokKind::Str);
        }
        self.bump_n(raw_at + hashes + 1); // prefix, hashes, opening quote
                                          // Raw body: ends at `"` followed by `hashes` hashes.
        loop {
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.bytes[self.pos] == b'"' {
                let mut got = 0usize;
                while got < hashes && self.peek(1 + got) == b'#' {
                    got += 1;
                }
                if got == hashes {
                    self.bump_n(1 + hashes);
                    break;
                }
            }
            self.bump();
        }
        Some(TokKind::Str)
    }

    /// Body of a non-raw string: consume through the closing quote,
    /// honoring `\"` escapes. The opening quote is already consumed.
    fn lex_str_body(&mut self, _hashes: usize) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'…'` char literal or `'lt` lifetime. Positioned at the quote.
    fn lex_quote(&mut self) -> TokKind {
        self.bump(); // '
        if self.pos >= self.bytes.len() {
            return TokKind::Unknown;
        }
        let b = self.bytes[self.pos];
        if b == b'\\' {
            // Escaped char literal: skip to the closing quote.
            self.bump_n(2);
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.bump();
            }
            if self.pos < self.bytes.len() {
                self.bump();
            }
            return TokKind::Char;
        }
        if (b.is_ascii_alphabetic() || b == b'_') && self.peek(1) != b'\'' {
            // Lifetime: identifier chars, no closing quote.
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                self.bump();
            }
            return TokKind::Lifetime;
        }
        // 'x' (any single char, possibly multi-byte) then closing quote.
        let ch_len = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.bump_n(ch_len);
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b'\'' {
            self.bump();
        }
        TokKind::Char
    }

    /// Integer or float literal, with `_` separators and type suffixes.
    fn lex_number(&mut self) -> TokKind {
        let radix_prefix = self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), b'x' | b'X' | b'b' | b'B' | b'o' | b'O');
        if radix_prefix {
            self.bump_n(2);
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                self.bump();
            }
            return TokKind::Int;
        }
        let mut float = false;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'_')
        {
            self.bump();
        }
        // `.` continues a float only when not `..` (range) and not a
        // method call (`1.max(2)`).
        if self.pos < self.bytes.len()
            && self.bytes[self.pos] == b'.'
            && self.peek(1) != b'.'
            && !self.peek(1).is_ascii_alphabetic()
            && self.peek(1) != b'_'
        {
            float = true;
            self.bump();
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'_')
            {
                self.bump();
            }
        }
        // Exponent.
        if self.pos < self.bytes.len()
            && (self.bytes[self.pos] == b'e' || self.bytes[self.pos] == b'E')
            && (self.peek(1).is_ascii_digit()
                || ((self.peek(1) == b'+' || self.peek(1) == b'-')
                    && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.bump_n(2);
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'_')
            {
                self.bump();
            }
        }
        // Type suffix (u8, usize, f64, …).
        if self.pos < self.bytes.len()
            && (self.bytes[self.pos] == b'u' || self.bytes[self.pos] == b'i')
        {
            let mut j = self.pos + 1;
            while j < self.bytes.len() && self.bytes[j].is_ascii_alphanumeric() {
                j += 1;
            }
            self.bump_n(j - self.pos);
        } else if self.pos < self.bytes.len() && self.bytes[self.pos] == b'f' {
            let rest = &self.bytes[self.pos..];
            if rest.starts_with(b"f32") || rest.starts_with(b"f64") {
                float = true;
                self.bump_n(3);
            }
        }
        if float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reassemble(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    #[test]
    fn spans_tile_the_source() {
        let cases = [
            "fn main() { let x = 1 + 2; }\n",
            "let s = \"hi \\\" there\"; // comment\n",
            "let r = r#\"raw \" string\"#; /* block /* nested */ */\n",
            "let b = b\"bytes\"; let c = b'x'; let q = '\\'';\n",
            "fn f<'a>(x: &'a str) -> &'a str { x }\n",
            "let f = 1.5e-9f64; let i = 0xFF_u64; let r = 1..5;\n",
            "let m = 1.max(2); let t = r#type;\n",
            "let multi = \"spans\nlines\"; // ok\n",
            "日本語 /* ≈ µs 中文 */ \"文字\"\n",
        ];
        for src in cases {
            assert_eq!(reassemble(src), src, "case: {src:?}");
        }
    }

    #[test]
    fn token_kinds() {
        let src = "fn f(x: u64) -> u64 { x + 1 }";
        let kinds: Vec<TokKind> = lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident,
                TokKind::Ident,
                TokKind::Punct('('),
                TokKind::Ident,
                TokKind::Punct(':'),
                TokKind::Ident,
                TokKind::Punct(')'),
                TokKind::Punct('-'),
                TokKind::Punct('>'),
                TokKind::Ident,
                TokKind::Punct('{'),
                TokKind::Ident,
                TokKind::Punct('+'),
                TokKind::Int,
                TokKind::Punct('}'),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "'a 'x' '\\n' b'z' 'static";
        let kinds: Vec<TokKind> = lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Lifetime,
                TokKind::Char,
                TokKind::Char,
                TokKind::Char,
                TokKind::Lifetime,
            ]
        );
    }

    #[test]
    fn floats_vs_ranges_vs_methods() {
        let src = "1.5 1..5 1.max(2) 2e9 3f64";
        let kinds: Vec<TokKind> = lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect();
        // 1.5 → Float; 1..5 → Int '.' '.' Int; 1.max(2) → Int '.' Ident …
        assert_eq!(kinds[0], TokKind::Float);
        assert_eq!(
            kinds[1..5],
            [
                TokKind::Int,
                TokKind::Punct('.'),
                TokKind::Punct('.'),
                TokKind::Int
            ]
        );
        assert_eq!(kinds[5], TokKind::Int);
        assert_eq!(kinds[6], TokKind::Punct('.'));
        assert_eq!(kinds[7], TokKind::Ident);
        assert!(kinds.contains(&TokKind::Float)); // 2e9
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\n/* x\ny */ c\n";
        let toks: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4); // c, after the multi-line comment
    }

    #[test]
    fn unterminated_forms_do_not_hang() {
        for src in ["\"unterminated", "r#\"open", "/* open", "'"] {
            let _ = lex(src); // must terminate
            assert_eq!(reassemble(src), src);
        }
    }
}
