//! `--explain <RULE>`: the rule catalogue, with rationale and escape
//! hatch for each rule, so a finding in CI is self-documenting.

/// One catalogue entry.
pub struct RuleDoc {
    /// Rule ID (`D1`, …).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the rule exists, in this workspace's terms.
    pub rationale: &'static str,
    /// How to suppress or satisfy a finding deliberately.
    pub escape: &'static str,
}

/// Every rule, in the order they run.
pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        id: "D1",
        summary: "no wall-clock or OS-entropy calls in simulation crates",
        rationale: "The paper's results replicate only if a simulation is a pure \
                    function of its seed. `SystemTime::now`, `Instant::now`, \
                    `thread_rng` and `from_entropy` smuggle host state into the \
                    run, so probe timing and detector thresholds stop being \
                    reproducible.",
        escape: "`// gfwlint: allow(D1)` on the line, with a comment saying why \
                 the value cannot affect simulated behaviour.",
    },
    RuleDoc {
        id: "D2",
        summary: "crate roots carry `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`",
        rationale: "Workspace-wide defaults are enforced at every crate root so a \
                    new crate cannot silently opt out. A crate with a non-zero \
                    `[unsafe-budget]` entry may use `#![deny(unsafe_code)]` \
                    instead of `forbid`, so audited `#[allow(unsafe_code)]` \
                    islands stay possible (rule U1 audits them).",
        escape: "`--fix` inserts the missing attributes mechanically.",
    },
    RuleDoc {
        id: "P1",
        summary: "per-crate panic budget (ratchet-down)",
        rationale: "Explicit panic sites (`unwrap` / `expect` / `panic!` / \
                    `unreachable!`) in non-test simulator code turn malformed \
                    input into an abort instead of a modelled behaviour. The \
                    checked-in count in `lint-baseline.toml` may only fall.",
        escape: "`// gfwlint: allow(P1)` per site, or lower code below budget \
                 and re-run `--bless`. Raising a budget is a hand edit.",
    },
    RuleDoc {
        id: "A1",
        summary: "per-area heap-allocation budget on the crypto hot path (ratchet-down)",
        rationale: "The zero-copy codec work removed per-chunk allocations from \
                    `sscrypto` and `shadowsocks::wire`; the `[alloc-budget]` \
                    table pins the remaining `.to_vec()` / `Vec::new()` / \
                    `.clone()` sites so they cannot creep back.",
        escape: "`// gfwlint: allow(A1)` per site, or `--bless` after removing \
                 sites. Raising a budget is a hand edit.",
    },
    RuleDoc {
        id: "C1",
        summary: "protocol constants agree across crates",
        rationale: "The stream-IV / AEAD-salt table (paper Fig 10), the probe \
                    length sweep and the wire framing must tell one story; a \
                    drifted constant silently changes which probes land in the \
                    detector's silent zone.",
        escape: "No inline escape: fix the constant, or update the expected \
                 table in `rules.rs` alongside the paper citation.",
    },
    RuleDoc {
        id: "H1",
        summary: "member crates take dependencies via `workspace = true`",
        rationale: "Versions live only in the root `[workspace.dependencies]` \
                    (all path-vendored). A version slipping into a member \
                    manifest is how an unvendored dependency sneaks in.",
        escape: "`# gfwlint: allow(H1)` on the offending manifest line; `--fix` \
                 rewrites deps the root already defines.",
    },
    RuleDoc {
        id: "T1",
        summary: "thread primitives only in `experiments::runner`",
        rationale: "Each `Simulator` is single-threaded by contract (one seeded \
                    RNG, one event queue, `Rc<RefCell>` taps). Parallelism means \
                    whole simulators per worker in the runner — never threads \
                    inside the sim.",
        escape: "`// gfwlint: allow(T1)` with justification; moving the code \
                 into `runner.rs` is almost always the real fix.",
    },
    RuleDoc {
        id: "T2",
        summary: "`BinaryHeap` only in `netsim::eventq`",
        rationale: "The timer wheel is the workspace's one scheduling structure; \
                    a heap reappearing elsewhere silently reintroduces O(log n) \
                    comparison churn and a second ordering authority.",
        escape: "`// gfwlint: allow(T2)`; test code is already exempt (the \
                 differential oracle keeps a heap on purpose).",
    },
    RuleDoc {
        id: "R1",
        summary: "determinism taint: no nondeterminism sources reachable from the Simulator",
        rationale: "D1 is textual and per-crate; R1 walks a name-based call \
                    graph from `impl Simulator` methods across every crate the \
                    sim can reach (including `shadowsocks`, `sscrypto`, \
                    `analysis`) and flags clock/entropy calls there, plus \
                    `HashMap`/`HashSet` iteration whose order can leak into \
                    output. Hash iteration order is per-process-seeded, so one \
                    stray `.iter()` makes two identically-seeded runs diverge. \
                    The graph is name-based and over-approximate on purpose: \
                    dyn-dispatch never escapes it.",
        escape: "`// gfwlint: allow(R1)` on the source line, after convincing \
                 yourself the order/value cannot reach simulator output; or \
                 switch to a BTree container / the seeded sim RNG.",
    },
    RuleDoc {
        id: "U1",
        summary: "unsafe audit: every unsafe site has a `// SAFETY:` comment and fits the budget",
        rationale: "The `std::arch` fast paths (`sscrypto::x86`: AES-NI, CLMUL \
                    GHASH, SSSE3/AVX2 ChaCha20; `analysis::simd`: AVX2 entropy \
                    histogram) are the repo's only real `unsafe`, and U1 is \
                    their audit discipline: each `unsafe` block, fn or impl \
                    needs an adjacent `// SAFETY:` comment stating the \
                    invariant, and per-crate site counts live in \
                    `[unsafe-budget]` of `lint-baseline.toml`, ratcheting down \
                    like P1/A1.",
        escape: "Write the SAFETY comment (that is the point); \
                 `// gfwlint: allow(U1)` exists for generated code only. New \
                 sites need a hand-raised budget entry, then `--bless`.",
    },
    RuleDoc {
        id: "W1",
        summary: "wrapping-arithmetic discipline on hot-path integer state",
        rationale: "Release builds wrap silently on overflow. In the hot-path \
                    modules (`sscrypto`, `analysis::entropy`/`simd`, \
                    `netsim::eventq`, `gfw_core::passive`, \
                    `shadowsocks::wire`), bare `+` / `*` / `<<` on integer \
                    state that crosses a function boundary (params, `self` \
                    fields) must say what it means: `wrapping_*` when wrap is \
                    the semantics (hashes, counters), `checked_*`/`saturating_*` \
                    when it is not. The ci.sh overflow-checks test run \
                    cross-checks these findings dynamically.",
        escape: "`// gfwlint: allow(W1)` with a comment proving the bound (e.g. \
                 index arithmetic already bounds-checked by the slice).",
    },
];

/// Render the catalogue entry for `rule`, or `None` if unknown.
pub fn explain(rule: &str) -> Option<String> {
    let doc = RULES.iter().find(|d| d.id.eq_ignore_ascii_case(rule))?;
    Some(format!(
        "{} — {}\n\nWhy:\n  {}\n\nEscape hatch:\n  {}\n",
        doc.id, doc.summary, doc.rationale, doc.escape
    ))
}

/// Render the one-line index of all rules (for `--explain` with no
/// argument or an unknown rule).
pub fn index() -> String {
    let mut out = String::from("rules:\n");
    for d in RULES {
        out.push_str(&format!("  {:3} {}\n", d.id, d.summary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_documented_and_found() {
        for id in [
            "D1", "D2", "P1", "A1", "C1", "H1", "T1", "T2", "R1", "U1", "W1",
        ] {
            let text = explain(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(text.contains(id));
            assert!(text.contains("Escape hatch"));
        }
        assert!(explain("Z9").is_none());
        assert!(explain("w1").is_some(), "case-insensitive lookup");
    }

    #[test]
    fn index_lists_all() {
        let idx = index();
        assert_eq!(RULES.len(), 11);
        for d in RULES {
            assert!(idx.contains(d.id));
        }
    }
}
