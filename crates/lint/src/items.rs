//! The item tree: a structural pass over the token stream.
//!
//! One walk over [`crate::lex`]'s tokens recovers the item structure
//! the rules care about — no full AST, just the shapes that carry lint
//! semantics:
//!
//! * **functions** with their module/impl path, parameter list (name +
//!   type text), body token range and line span, so findings attribute
//!   to the enclosing function and the call graph has nodes;
//! * **`#[cfg(...)]` regions**, evaluated exactly: `#[cfg(test)]`,
//!   `#[cfg(all(test, …))]` and nested test modules all mark their
//!   whole item span as test-only (`any(test, …)` does **not** — such
//!   code also compiles outside tests);
//! * **`unsafe` blocks / fns / impls**, each with its line, for the U1
//!   SAFETY-comment and budget audit;
//! * **struct fields** with integer types, so W1 can type `self.field`
//!   operands.
//!
//! The walk is a single pass with a scope stack keyed on brace depth.
//! Braces that open match arms, struct literals or plain blocks become
//! anonymous scopes and simply nest; only item-shaped headers (`fn`,
//! `mod`, `impl`, `trait`, `struct`, a trailing `unsafe`) get typed
//! scopes.

use crate::lex::{Tok, TokKind};

/// One function (or method) item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Qualified path: enclosing modules and impl self-type joined with
    /// `::` (e.g. `eventq::EventQueue::push`), without the crate name.
    pub qual: String,
    /// Impl self-type when this is a method (`EventQueue`), else None.
    pub impl_type: Option<String>,
    /// Parameters as `(name, type text)`; `self` receivers appear as
    /// `("self", "Self")`.
    pub params: Vec<(String, String)>,
    /// 1-based first line (of the `fn` keyword or its attributes).
    pub line_start: usize,
    /// 1-based last line (closing brace). Equal to `line_start` for
    /// bodyless signatures.
    pub line_end: usize,
    /// Token index range of the body, **excluding** the outer braces.
    /// Empty for bodyless signatures (trait methods, extern decls).
    pub body: std::ops::Range<usize>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Inside a `#[cfg(test)]`-only region (own attribute or any
    /// enclosing item's).
    pub in_test: bool,
}

/// Kind of an `unsafe` occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn`.
    Fn,
    /// `unsafe impl … { … }`.
    Impl,
}

/// One `unsafe` site (block, fn or impl) in non-test or test code.
#[derive(Debug)]
pub struct UnsafeSite {
    /// Which form.
    pub kind: UnsafeKind,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Index into [`ItemTree::fns`] of the enclosing function, if any.
    pub fn_idx: Option<usize>,
    /// Inside test-only code (exempt from U1).
    pub in_test: bool,
}

/// The structural view of one source file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// All `unsafe` sites, in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Per-line (0-indexed) test-only flags, exact per `#[cfg]`.
    pub test_lines: Vec<bool>,
    /// Struct fields declared in this file whose type is a primitive
    /// integer (or array of one): field name → type text.
    pub int_fields: std::collections::BTreeMap<String, String>,
}

impl ItemTree {
    /// Innermost function whose line span contains `line` (1-based).
    pub fn fn_at_line(&self, line: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.line_start <= line && line <= f.line_end)
            .min_by_key(|f| f.line_end - f.line_start)
    }

    /// True when `line` (1-based) is test-only code.
    pub fn line_in_test(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.test_lines.get(i))
            .copied()
            .unwrap_or(false)
    }
}

/// Is `ty` text a primitive integer type (or reference/array of one)?
pub fn is_int_type(ty: &str) -> bool {
    let t = ty
        .trim()
        .trim_start_matches(['&', '['])
        .trim_start_matches("mut ")
        .trim();
    let head: String = t
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .collect();
    matches!(
        head.as_str(),
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ScopeKind {
    Mod,
    Impl,
    Trait,
    Struct,
    Fn(usize),
    UnsafeBlock,
    Block,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth before this scope's `{` was counted.
    close_at: usize,
    /// Module or impl-type name contributing to qualified paths.
    path_seg: Option<String>,
    /// This scope's item (attrs included) started on this line.
    start_line: usize,
    /// The item carried a test-only cfg (or inherited one).
    test_only: bool,
}

/// Build the item tree for one file's source and token stream.
pub fn build(src: &str, toks: &[Tok]) -> ItemTree {
    let n_lines = src.lines().count().max(1);
    let mut tree = ItemTree {
        test_lines: vec![false; n_lines],
        ..ItemTree::default()
    };

    // Significant (non-trivia) token indices.
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_trivia()).collect();
    let text = |i: usize| toks[i].text(src);

    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    // Header: significant tokens since the last item boundary, with any
    // attached attributes summarized separately.
    let mut header: Vec<usize> = Vec::new();
    let mut header_test_attr = false;
    let mut header_start_line: Option<usize> = None;
    // Paren/bracket nesting inside the current header: a `;` or `,`
    // inside `[u8; TAG_LEN]` or `(a, b)` is part of a type/expression,
    // not an item boundary.
    let mut header_nest = 0i32;

    let inherited_test = |scopes: &[Scope]| scopes.last().map(|s| s.test_only).unwrap_or(false);

    let mut k = 0usize; // index into `sig`
    while k < sig.len() {
        let i = sig[k];
        let t = &toks[i];
        if header_start_line.is_none() {
            header_start_line = Some(t.line);
        }
        match t.kind {
            TokKind::Punct('#') => {
                // Attribute: `#[...]` or inner `#![...]`.
                let mut j = k + 1;
                let inner = j < sig.len() && text(sig[j]) == "!";
                if inner {
                    j += 1;
                }
                if j < sig.len() && toks[sig[j]].kind == TokKind::Punct('[') {
                    // Collect the bracketed token slice.
                    let mut bdepth = 0usize;
                    let attr_start = j;
                    while j < sig.len() {
                        match toks[sig[j]].kind {
                            TokKind::Punct('[') => bdepth += 1,
                            TokKind::Punct(']') => {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if !inner {
                        let words: Vec<&str> = sig[attr_start..=j.min(sig.len() - 1)]
                            .iter()
                            .map(|&x| text(x))
                            .collect();
                        if attr_implies_test(&words) {
                            header_test_attr = true;
                        }
                    }
                    k = j + 1;
                    continue;
                }
                header.push(i);
                k += 1;
            }
            TokKind::Punct('{') => {
                let test_only = inherited_test(&scopes) || header_test_attr;
                let start_line = header_start_line.unwrap_or(t.line);
                let kind = classify_header(src, toks, &header);
                match kind {
                    HeaderKind::Fn { name_at, is_unsafe } => {
                        let name = name_at.map(|x| text(x).to_string()).unwrap_or_default();
                        let params = parse_params(src, toks, &sig, &header, name_at);
                        let qual = qual_path(&scopes, &name);
                        let impl_type = scopes.iter().rev().find_map(|s| {
                            (s.kind == ScopeKind::Impl || s.kind == ScopeKind::Trait)
                                .then(|| s.path_seg.clone())
                                .flatten()
                        });
                        tree.fns.push(FnItem {
                            name,
                            qual,
                            impl_type,
                            params,
                            line_start: start_line,
                            line_end: t.line,   // fixed at close
                            body: i + 1..i + 1, // end fixed at close
                            is_unsafe,
                            in_test: test_only,
                        });
                        let fn_idx = tree.fns.len() - 1;
                        if is_unsafe {
                            tree.unsafe_sites.push(UnsafeSite {
                                kind: UnsafeKind::Fn,
                                line: start_line,
                                fn_idx: Some(fn_idx),
                                in_test: test_only,
                            });
                        }
                        scopes.push(Scope {
                            kind: ScopeKind::Fn(fn_idx),
                            close_at: depth,
                            path_seg: None,
                            start_line,
                            test_only,
                        });
                    }
                    HeaderKind::Mod { name } => {
                        scopes.push(Scope {
                            kind: ScopeKind::Mod,
                            close_at: depth,
                            path_seg: Some(name),
                            start_line,
                            test_only,
                        });
                    }
                    HeaderKind::Impl { self_ty, is_unsafe } => {
                        if is_unsafe {
                            tree.unsafe_sites.push(UnsafeSite {
                                kind: UnsafeKind::Impl,
                                line: start_line,
                                fn_idx: None,
                                in_test: test_only,
                            });
                        }
                        scopes.push(Scope {
                            kind: ScopeKind::Impl,
                            close_at: depth,
                            path_seg: self_ty,
                            start_line,
                            test_only,
                        });
                    }
                    HeaderKind::Trait { name } => {
                        scopes.push(Scope {
                            kind: ScopeKind::Trait,
                            close_at: depth,
                            path_seg: Some(name),
                            start_line,
                            test_only,
                        });
                    }
                    HeaderKind::Struct => {
                        scopes.push(Scope {
                            kind: ScopeKind::Struct,
                            close_at: depth,
                            path_seg: None,
                            start_line,
                            test_only,
                        });
                    }
                    HeaderKind::UnsafeBlock => {
                        let fn_idx = scopes.iter().rev().find_map(|s| match s.kind {
                            ScopeKind::Fn(idx) => Some(idx),
                            _ => None,
                        });
                        tree.unsafe_sites.push(UnsafeSite {
                            kind: UnsafeKind::Block,
                            line: t.line,
                            fn_idx,
                            in_test: test_only,
                        });
                        scopes.push(Scope {
                            kind: ScopeKind::UnsafeBlock,
                            close_at: depth,
                            path_seg: None,
                            start_line,
                            test_only,
                        });
                    }
                    HeaderKind::Plain => {
                        scopes.push(Scope {
                            kind: ScopeKind::Block,
                            close_at: depth,
                            path_seg: None,
                            start_line,
                            test_only,
                        });
                    }
                }
                depth += 1;
                header.clear();
                header_nest = 0;
                header_test_attr = false;
                header_start_line = None;
                k += 1;
            }
            TokKind::Punct('}') => {
                // A struct's last field often has no trailing comma.
                collect_field(src, toks, &scopes, &header, &mut tree);
                depth = depth.saturating_sub(1);
                while let Some(top) = scopes.last() {
                    if top.close_at != depth {
                        break;
                    }
                    let top = scopes.pop().expect("non-empty");
                    if top.test_only {
                        mark_lines(&mut tree.test_lines, top.start_line, t.line);
                    }
                    if let ScopeKind::Fn(idx) = top.kind {
                        tree.fns[idx].line_end = t.line;
                        let body_start = tree.fns[idx].body.start;
                        tree.fns[idx].body = body_start..i;
                    }
                    if top.kind == ScopeKind::Struct {
                        // Fields were collected inline below.
                    }
                }
                header.clear();
                header_nest = 0;
                header_test_attr = false;
                header_start_line = None;
                k += 1;
            }
            TokKind::Punct(';') if header_nest > 0 => {
                header.push(i);
                k += 1;
            }
            TokKind::Punct(';') => {
                // `#[cfg(test)] use …;` — a braceless test-only item.
                if header_test_attr {
                    let start = header_start_line.unwrap_or(t.line);
                    mark_lines(&mut tree.test_lines, start, t.line);
                }
                // Struct field declarations end at `,`; tuple structs
                // and consts end at `;`. Either way the header resets.
                collect_field(src, toks, &scopes, &header, &mut tree);
                header.clear();
                header_nest = 0;
                header_test_attr = false;
                header_start_line = None;
                k += 1;
            }
            TokKind::Punct(',') => {
                if header_nest == 0 && scopes.last().map(|s| s.kind) == Some(ScopeKind::Struct) {
                    collect_field(src, toks, &scopes, &header, &mut tree);
                    header.clear();
                    header_nest = 0;
                    header_start_line = None;
                } else {
                    header.push(i);
                }
                k += 1;
            }
            _ => {
                match t.kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => header_nest += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => {
                        header_nest = (header_nest - 1).max(0)
                    }
                    _ => {}
                }
                header.push(i);
                k += 1;
            }
        }
    }
    // Whole-file test inheritance cannot happen (no inner-attr cfg),
    // but an unterminated scope (unbalanced braces) should still mark
    // what it covered.
    for s in scopes {
        if s.test_only {
            mark_lines(&mut tree.test_lines, s.start_line, n_lines);
        }
    }
    tree
}

fn mark_lines(test_lines: &mut [bool], start: usize, end: usize) {
    for line in start..=end.min(test_lines.len()) {
        if let Some(slot) = test_lines.get_mut(line - 1) {
            *slot = true;
        }
    }
}

fn qual_path(scopes: &[Scope], name: &str) -> String {
    let mut parts: Vec<&str> = scopes
        .iter()
        .filter_map(|s| s.path_seg.as_deref())
        .collect();
    parts.push(name);
    parts.join("::")
}

enum HeaderKind {
    Fn {
        name_at: Option<usize>,
        is_unsafe: bool,
    },
    Mod {
        name: String,
    },
    Impl {
        self_ty: Option<String>,
        is_unsafe: bool,
    },
    Trait {
        name: String,
    },
    Struct,
    UnsafeBlock,
    Plain,
}

/// Classify what an opening `{` belongs to from its header tokens.
fn classify_header(src: &str, toks: &[Tok], header: &[usize]) -> HeaderKind {
    let text = |i: usize| toks[i].text(src);
    let mut is_unsafe = false;
    for (h, &i) in header.iter().enumerate() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        match text(i) {
            "unsafe" => is_unsafe = true,
            "fn" => {
                let name_at = header
                    .get(h + 1)
                    .copied()
                    .filter(|&j| toks[j].kind == TokKind::Ident);
                return HeaderKind::Fn { name_at, is_unsafe };
            }
            "mod" => {
                let name = header
                    .get(h + 1)
                    .map(|&j| text(j).to_string())
                    .unwrap_or_default();
                return HeaderKind::Mod { name };
            }
            "impl" => {
                return HeaderKind::Impl {
                    self_ty: impl_self_type(src, toks, &header[h + 1..]),
                    is_unsafe,
                };
            }
            "trait" => {
                let name = header
                    .get(h + 1)
                    .map(|&j| text(j).to_string())
                    .unwrap_or_default();
                return HeaderKind::Trait { name };
            }
            "struct" | "enum" | "union" => return HeaderKind::Struct,
            // `match x {`, `loop {`, `while … {`, `if … {`, struct
            // literals, closures: anonymous blocks. `for … in … {` too.
            _ => {}
        }
    }
    if header
        .last()
        .is_some_and(|&i| toks[i].kind == TokKind::Ident && text(i) == "unsafe")
    {
        return HeaderKind::UnsafeBlock;
    }
    HeaderKind::Plain
}

/// Self-type name of an `impl` header: the last path segment before the
/// generics of the implemented-on type (after `for` in trait impls).
fn impl_self_type(src: &str, toks: &[Tok], rest: &[usize]) -> Option<String> {
    let text = |i: usize| toks[i].text(src);
    // Prefer the segment after `for`; otherwise the whole rest.
    let after_for = rest
        .iter()
        .position(|&i| toks[i].kind == TokKind::Ident && text(i) == "for")
        .map(|p| &rest[p + 1..])
        .unwrap_or(rest);
    let mut last_ident = None;
    let mut angle = 0i32;
    let mut idx = 0usize;
    while idx < after_for.len() {
        let i = after_for[idx];
        match toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                // `->` return arrows don't close impl generics here.
                angle -= 1;
            }
            TokKind::Ident if angle == 0 => {
                let w = text(i);
                if w != "for" && w != "dyn" && w != "where" {
                    last_ident = Some(w.to_string());
                }
                if w == "where" {
                    break;
                }
            }
            _ => {}
        }
        idx += 1;
    }
    last_ident
}

/// Parse the parameter list following the fn name in a header.
fn parse_params(
    src: &str,
    toks: &[Tok],
    _sig: &[usize],
    header: &[usize],
    name_at: Option<usize>,
) -> Vec<(String, String)> {
    let text = |i: usize| toks[i].text(src);
    let Some(name_tok) = name_at else {
        return Vec::new();
    };
    let start = match header.iter().position(|&i| i == name_tok) {
        Some(p) => p + 1,
        None => return Vec::new(),
    };
    // Skip generics, find the opening paren.
    let mut idx = start;
    let mut angle = 0i32;
    while idx < header.len() {
        match toks[header[idx]].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('(') if angle <= 0 => break,
            _ => {}
        }
        idx += 1;
    }
    if idx >= header.len() {
        return Vec::new();
    }
    // Collect top-level comma-separated params inside the parens.
    let mut params = Vec::new();
    let mut pdepth = 0i32;
    let mut cur: Vec<usize> = Vec::new();
    let mut parts: Vec<Vec<usize>> = Vec::new();
    for &i in &header[idx..] {
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => {
                pdepth += 1;
                if pdepth > 1 {
                    cur.push(i);
                }
            }
            TokKind::Punct(')') | TokKind::Punct(']') => {
                pdepth -= 1;
                if pdepth == 0 {
                    break;
                }
                cur.push(i);
            }
            TokKind::Punct(',') if pdepth == 1 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ if pdepth >= 1 => cur.push(i),
            _ => {}
        }
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    for part in parts {
        if part
            .iter()
            .any(|&i| toks[i].kind == TokKind::Ident && text(i) == "self")
        {
            params.push(("self".to_string(), "Self".to_string()));
            continue;
        }
        // Split at the top-level `:` (angle-bracket aware for the type).
        let Some(colon) = part
            .iter()
            .position(|&i| toks[*&i].kind == TokKind::Punct(':'))
        else {
            continue;
        };
        // `path::seg` double colons: skip `:` directly adjacent to
        // another `:`.
        if colon + 1 < part.len() && toks[part[colon + 1]].kind == TokKind::Punct(':') {
            continue; // pathological; ignore this param
        }
        let name = part[..colon]
            .iter()
            .rev()
            .find(|&&i| toks[i].kind == TokKind::Ident && text(i) != "mut")
            .map(|&i| text(i).to_string());
        let ty: String = part[colon + 1..]
            .iter()
            .map(|&i| text(i))
            .collect::<Vec<_>>()
            .join(" ");
        if let Some(name) = name {
            params.push((name, ty));
        }
    }
    params
}

/// Inside a struct scope, record `name: IntType` field declarations.
fn collect_field(src: &str, toks: &[Tok], scopes: &[Scope], header: &[usize], tree: &mut ItemTree) {
    if scopes.last().map(|s| s.kind) != Some(ScopeKind::Struct) {
        return;
    }
    let text = |i: usize| toks[i].text(src);
    let Some(colon) = header
        .iter()
        .position(|&i| toks[i].kind == TokKind::Punct(':'))
    else {
        return;
    };
    if colon + 1 < header.len() && toks[header[colon + 1]].kind == TokKind::Punct(':') {
        return;
    }
    let name = header[..colon]
        .iter()
        .rev()
        .find(|&&i| toks[i].kind == TokKind::Ident)
        .map(|&i| text(i).to_string());
    let ty: String = header[colon + 1..]
        .iter()
        .map(|&i| text(i))
        .collect::<Vec<_>>()
        .join(" ");
    if let Some(name) = name {
        if is_int_type(&ty) {
            tree.int_fields.insert(name, ty);
        }
    }
}

/// Does a `#[cfg(...)]`-style attribute (given as its token texts,
/// starting at `[`) make the item test-only?
///
/// Exact evaluation of the `cfg` predicate under "does this imply
/// `test`": `test` → yes, `all(a, …)` → any operand implies test,
/// `any(a, …)` → **all** operands imply test (otherwise the item also
/// compiles outside tests), `not(…)` → no.
fn attr_implies_test(words: &[&str]) -> bool {
    // words looks like: [ cfg ( … ) ] — also accept cfg_attr's first arg.
    if words.len() < 3 || words[0] != "[" {
        return false;
    }
    if words[1] != "cfg" {
        return false;
    }
    // Strip `[ cfg ( … ) ]` to the inner predicate tokens.
    let inner = &words[3..words.len().saturating_sub(2).max(3).min(words.len())];
    let inner: Vec<&str> = if words.len() >= 5 {
        words[3..words.len() - 2].to_vec()
    } else {
        inner.to_vec()
    };
    let mut pos = 0usize;
    implies_test(&inner, &mut pos)
}

/// Recursive-descent over one cfg predicate at `words[*pos..]`.
fn implies_test(words: &[&str], pos: &mut usize) -> bool {
    let Some(&head) = words.get(*pos) else {
        return false;
    };
    *pos += 1;
    match head {
        // `doctest` builds are test-only too: `any(test, doctest)`
        // never compiles into a live binary.
        "test" | "doctest" => true,
        "all" | "any" | "not" => {
            if words.get(*pos) != Some(&"(") {
                return false;
            }
            *pos += 1;
            let mut operands = Vec::new();
            loop {
                match words.get(*pos) {
                    None | Some(&")") => {
                        *pos += 1;
                        break;
                    }
                    Some(&",") => {
                        *pos += 1;
                    }
                    _ => {
                        operands.push(implies_test(words, pos));
                    }
                }
            }
            match head {
                "all" => operands.iter().any(|&b| b),
                "any" => !operands.is_empty() && operands.iter().all(|&b| b),
                _ => false, // not(…)
            }
        }
        _ => {
            // `feature = "x"` or similar: skip a possible `= value`.
            if words.get(*pos) == Some(&"=") {
                *pos += 2;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn tree(src: &str) -> ItemTree {
        build(src, &lex(src))
    }

    #[test]
    fn fn_and_method_paths() {
        let src = "mod a {\n    pub struct S { pub n: u64 }\n    impl S {\n        pub fn bump(&mut self, by: u64) -> u64 { self.n }\n    }\n    fn free(x: usize) {}\n}\n";
        let t = tree(src);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].qual, "a::S::bump");
        assert_eq!(t.fns[0].impl_type.as_deref(), Some("S"));
        assert_eq!(
            t.fns[0].params,
            vec![
                ("self".to_string(), "Self".to_string()),
                ("by".to_string(), "u64".to_string())
            ]
        );
        assert_eq!(t.fns[1].qual, "a::free");
        assert_eq!(
            t.fns[1].params,
            vec![("x".to_string(), "usize".to_string())]
        );
        assert_eq!(t.int_fields.get("n").map(String::as_str), Some("u64"));
    }

    #[test]
    fn trait_impl_self_type() {
        let src = "impl<T: Ord> std::fmt::Display for Entry<T> {\n    fn fmt(&self) {}\n}\n";
        let t = tree(src);
        assert_eq!(t.fns[0].impl_type.as_deref(), Some("Entry"));
    }

    #[test]
    fn cfg_test_variants() {
        let src = "\
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn a() {}
    mod nested { fn b() {} }
}
#[cfg(all(test, feature = \"slow\"))]
fn gated() {}
#[cfg(any(test, feature = \"x\"))]
fn not_test_only() {}
#[cfg(any(test, doctest))]
fn both_test() {}
";
        let t = tree(src);
        assert!(!t.line_in_test(1));
        assert!(t.line_in_test(2)); // attribute line
        assert!(t.line_in_test(4));
        assert!(t.line_in_test(5)); // nested module
        assert!(t.line_in_test(8)); // all(test, …)
        assert!(!t.line_in_test(10)); // any(test, feature) also compiles live
        assert!(t.line_in_test(12)); // any(test, doctest): every arm is test-only
    }

    #[test]
    fn nested_cfg_test_modules_span_exactly() {
        let src = "\
mod outer {
    #[cfg(test)]
    mod tests {
        #[cfg(test)]
        mod inner { fn f() {} }
        fn g() {}
    }
    fn live() {}
}
";
        let t = tree(src);
        assert!(t.line_in_test(2));
        assert!(t.line_in_test(5));
        assert!(t.line_in_test(6));
        assert!(!t.line_in_test(8)); // live() after the region closes
    }

    #[test]
    fn unsafe_sites_are_found() {
        let src = "\
fn f() {
    let p = unsafe { *ptr };
}
unsafe fn g() {}
unsafe impl Send for X {}
#[cfg(test)]
mod tests {
    fn t() { unsafe { nop() } }
}
";
        let t = tree(src);
        let kinds: Vec<(UnsafeKind, usize, bool)> = t
            .unsafe_sites
            .iter()
            .map(|u| (u.kind, u.line, u.in_test))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (UnsafeKind::Block, 2, false),
                (UnsafeKind::Fn, 4, false),
                (UnsafeKind::Impl, 5, false),
                (UnsafeKind::Block, 8, true),
            ]
        );
        assert_eq!(t.unsafe_sites[0].fn_idx, Some(0));
    }

    #[test]
    fn fn_at_line_picks_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        x();\n    }\n}\n";
        let t = tree(src);
        assert_eq!(t.fn_at_line(3).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(t.fn_at_line(1).map(|f| f.name.as_str()), Some("outer"));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let t = tree(src);
        assert!(t.line_in_test(1));
        assert!(t.line_in_test(2));
        assert!(!t.line_in_test(3));
    }

    #[test]
    fn match_arms_and_struct_literals_are_plain_blocks() {
        let src = "fn f(x: u8) -> P {\n    match x {\n        0 => P { a: 1 },\n        _ => P { a: 2 },\n    }\n}\n";
        let t = tree(src);
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].line_end, 6);
        assert!(t.unsafe_sites.is_empty());
    }

    #[test]
    fn array_return_type_does_not_split_the_header() {
        // The `;` inside `[u8; 16]` is part of the return type, not an
        // item boundary: the fn must still be recorded with a body.
        let src = "impl Aead {\n    fn seal(&self, buf: &mut [u8]) -> [u8; 16] {\n        work();\n    }\n}\n";
        let t = tree(src);
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "seal");
        assert_eq!(t.fns[0].qual, "Aead::seal");
        assert!(!t.fns[0].body.is_empty());
    }

    #[test]
    fn tuple_and_array_struct_fields_survive_inner_separators() {
        // Commas inside `(u32, u32)` and the `;` inside `[u32; 4]` must
        // not be taken for field separators / item boundaries.
        let src = "struct S {\n    pad: [u32; 4],\n    pair: (u32, u32),\n    n: u64,\n}\nfn after() {}\n";
        let t = tree(src);
        assert_eq!(
            t.int_fields.get("pad").map(String::as_str),
            Some("[ u32 ; 4 ]")
        );
        assert_eq!(t.int_fields.get("n").map(String::as_str), Some("u64"));
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "after");
    }

    #[test]
    fn closure_header_does_not_poison_following_boundaries() {
        // `|x| {` opens a block while the header still has an open `(`;
        // the nest counter must reset so later fns are still seen.
        let src =
            "fn a(v: Vec<u8>) {\n    v.iter().map(|x| {\n        x + 1\n    });\n}\nfn b() {}\n";
        let t = tree(src);
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
