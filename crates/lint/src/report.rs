//! Rendering: human-readable text and `--json` output.
//!
//! JSON is serialized by hand — the linter is dependency-free on
//! principle (it is the tool that polices the dependency graph).

use crate::Report;

/// Render the human-readable report.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&format!("{finding}\n"));
    }
    for allow in &report.allows {
        out.push_str(&format!(
            "note: {}:{} suppressed {} via gfwlint: allow\n",
            allow.file, allow.line, allow.rule
        ));
    }
    if !report.panic_counts.is_empty() {
        let counts: Vec<String> = report
            .panic_counts
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        out.push_str(&format!("panic sites (P1): {}\n", counts.join(" ")));
    }
    if !report.alloc_counts.is_empty() {
        let counts: Vec<String> = report
            .alloc_counts
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        out.push_str(&format!("alloc sites (A1): {}\n", counts.join(" ")));
    }
    if !report.unsafe_counts.is_empty() {
        let counts: Vec<String> = report
            .unsafe_counts
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        out.push_str(&format!("unsafe sites (U1): {}\n", counts.join(" ")));
    }
    if report.is_clean() {
        out.push_str(&format!(
            "gfw-lint: clean ({} files scanned, {} allow escape(s) honored)\n",
            report.files_scanned,
            report.allows.len()
        ));
    } else {
        out.push_str(&format!(
            "gfw-lint: {} finding(s) across {} files ({} allow escape(s) honored)\n",
            report.findings.len(),
            report.files_scanned,
            report.allows.len()
        ));
    }
    out
}

/// Render the report as JSON.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str("\n  ],\n  \"allows\": [");
    for (i, a) in report.allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}}}",
            json_str(&a.rule),
            json_str(&a.file),
            a.line
        ));
    }
    out.push_str("\n  ],\n  \"panic_counts\": {");
    for (i, (name, count)) in report.panic_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json_str(name), count));
    }
    out.push_str("\n  },\n  \"alloc_counts\": {");
    for (i, (name, count)) in report.alloc_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json_str(name), count));
    }
    out.push_str("\n  },\n  \"unsafe_counts\": {");
    for (i, (name, count)) in report.unsafe_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json_str(name), count));
    }
    out.push_str("\n  },\n  \"panic_sites\": [");
    render_sites(&mut out, &report.panic_sites);
    out.push_str("\n  ],\n  \"alloc_sites\": [");
    render_sites(&mut out, &report.alloc_sites);
    out.push_str(&format!(
        "\n  ],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
        report.files_scanned,
        report.is_clean()
    ));
    out
}

/// Render the budget-site arrays: each site names its enclosing
/// function, so `--json` consumers can aggregate per-function.
fn render_sites(out: &mut String, sites: &[crate::Site]) {
    for (i, s) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"function\": {}, \"token\": {}}}",
            json_str(&s.file),
            s.line,
            json_str(&s.function),
            json_str(&s.token)
        ));
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_shape() {
        let mut report = Report::default();
        report.findings.push(Finding {
            rule: "D1",
            file: "crates/core/src/x.rs".into(),
            line: 3,
            message: "bad \"thing\"".into(),
        });
        report.files_scanned = 7;
        let json = render_json(&report);
        assert!(json.contains("\"rule\": \"D1\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\\\"thing\\\""));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn human_clean_summary() {
        let report = Report {
            files_scanned: 4,
            ..Report::default()
        };
        assert!(render_human(&report).contains("clean (4 files"));
    }
}
