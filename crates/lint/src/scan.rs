//! A small hand-rolled Rust source scanner.
//!
//! The rules in this linter are token-level, not AST-level, so all they
//! need from a source file is, per line:
//!
//! * the *code text* — the line with comments and string/char literal
//!   contents blanked out, so a `thread_rng` inside a doc comment or a
//!   format string never trips a rule;
//! * whether the line sits inside a `#[cfg(test)]` region (the panic
//!   budget only counts non-test code);
//! * any `// gfwlint: allow(RULE)` escapes attached to the line.
//!
//! The scanner is a line-oriented state machine that carries block
//! comment depth and string state across lines, and understands raw
//! strings (`r#"…"#`), byte strings and the char-literal/lifetime
//! ambiguity well enough for this codebase.

use std::path::Path;

/// One scanned source line.
#[derive(Debug)]
pub struct Line {
    /// The original line text.
    pub raw: String,
    /// The line with comments and literal contents replaced by spaces.
    /// Columns are preserved, so byte offsets into `code` line up with
    /// `raw`.
    pub code: String,
    /// True when the line is inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// Rule IDs suppressed on this line via `// gfwlint: allow(...)`.
    pub allows: Vec<String>,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The scanned lines, 0-indexed (line numbers in findings are 1-based).
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum StrState {
    None,
    /// Inside a normal `"…"` (or `b"…"`) string.
    Normal,
    /// Inside a raw string with this many `#`s.
    Raw(usize),
}

impl SourceFile {
    /// Scan `text` as the contents of `rel`.
    pub fn scan(rel: &str, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut depth = 0usize; // block comment nesting
        let mut strst = StrState::None;
        let mut pending_allows: Vec<String> = Vec::new();

        for raw in text.lines() {
            let (code, comment) = strip_line(raw, &mut depth, &mut strst);
            let mut allows = parse_allows(&comment);
            let code_blank = code.trim().is_empty();
            if code_blank {
                // A comment-only line: its allows apply to the next code line.
                pending_allows.append(&mut allows);
            } else {
                allows.append(&mut pending_allows);
            }
            lines.push(Line {
                raw: raw.to_string(),
                code,
                in_test: false,
                allows,
            });
        }

        let mut file = SourceFile {
            rel: rel.to_string(),
            lines,
        };
        mark_test_regions(&mut file);
        file
    }

    /// Load and scan a file on disk. `root` is the workspace root used
    /// to compute the relative path.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::scan(&rel, &text))
    }
}

/// Strip one line, updating cross-line state. Returns (code, comment-text).
fn strip_line(raw: &str, depth: &mut usize, strst: &mut StrState) -> (String, String) {
    let chars: Vec<char> = raw.chars().collect();
    let n = chars.len();
    let mut out = vec![' '; n];
    let mut comment = String::new();
    let mut i = 0;
    while i < n {
        if *depth > 0 {
            if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                *depth += 1;
                comment.push_str("/*");
                i += 2;
            } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                *depth -= 1;
                i += 2;
            } else {
                comment.push(chars[i]);
                i += 1;
            }
            continue;
        }
        match *strst {
            StrState::Normal => {
                if chars[i] == '\\' {
                    i += 2;
                } else if chars[i] == '"' {
                    *strst = StrState::None;
                    out[i] = '"';
                    i += 1;
                } else {
                    i += 1;
                }
                continue;
            }
            StrState::Raw(hashes) => {
                if chars[i] == '"'
                    && chars[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                {
                    *strst = StrState::None;
                    out[i] = '"';
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
                continue;
            }
            StrState::None => {}
        }
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            comment.extend(&chars[i..]);
            break;
        }
        // Block comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            *depth = 1;
            i += 2;
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, br"…", b"…".
        if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
            // Position of the would-be opening quote and whether an `r`
            // was part of the prefix.
            let (j, is_raw) = match (c, chars.get(i + 1)) {
                ('b', Some('r')) => (i + 2, true),
                ('b', _) => (i + 1, false),
                _ => (i + 1, true),
            };
            let hashes = if is_raw {
                chars[j.min(n)..].iter().take_while(|&&c| c == '#').count()
            } else {
                0
            };
            let k = j + hashes;
            if k < n && chars[k] == '"' {
                out[k] = '"';
                *strst = if is_raw {
                    StrState::Raw(hashes)
                } else {
                    StrState::Normal
                };
                i = k + 1;
                continue;
            }
        }
        // Plain string.
        if c == '"' {
            out[i] = '"';
            *strst = StrState::Normal;
            i += 1;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: skip to closing quote.
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                // 'x' char literal.
                i += 3;
                continue;
            }
            // Lifetime: drop the quote, keep scanning the identifier.
            i += 1;
            continue;
        }
        out[i] = c;
        i += 1;
    }
    (out.into_iter().collect(), comment)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Parse `gfwlint: allow(D1, P1)` escapes out of a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("gfwlint: allow(") {
        let after = &rest[pos + "gfwlint: allow(".len()..];
        if let Some(end) = after.find(')') {
            for id in after[..end].split(',') {
                let id = id.trim();
                if !id.is_empty() {
                    out.push(id.to_string());
                }
            }
            rest = &after[end + 1..];
        } else {
            break;
        }
    }
    out
}

/// Mark lines inside `#[cfg(test)]`-gated items. A region starts at the
/// attribute and runs to the close of the brace block that follows it.
fn mark_test_regions(file: &mut SourceFile) {
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        if file.lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace, then its match.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            'outer: while j < n {
                for c in file.lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                    if opened && depth == 0 {
                        break 'outer;
                    }
                }
                j += 1;
            }
            let end = j.min(n - 1);
            for line in &mut file.lines[i..=end] {
                line.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// Does `code` contain `token` at an identifier boundary on both sides?
pub fn has_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let f = SourceFile::scan(
            "t.rs",
            "let x = 1; // thread_rng\n/* Instant::now */ let y = 2;\n",
        );
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(!f.lines[1].code.contains("Instant"));
        assert!(f.lines[1].code.contains("let y = 2;"));
    }

    #[test]
    fn strips_string_contents_including_raw_and_multiline() {
        let src = "let a = \"thread_rng\";\nlet b = r#\"Instant::now\"#;\nlet c = \"spans\nlines thread_rng\";\nlet d = 1;\n";
        let f = SourceFile::scan("t.rs", src);
        for line in &f.lines[..4] {
            assert!(!line.code.contains("thread_rng"), "{:?}", line.code);
            assert!(!line.code.contains("Instant"), "{:?}", line.code);
        }
        assert!(f.lines[4].code.contains("let d = 1;"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let f = SourceFile::scan(
            "t.rs",
            "fn f<'a>(x: &'a str) -> &'a str { thread_rng(x) }\n",
        );
        assert!(f.lines[0].code.contains("thread_rng"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let f = SourceFile::scan("t.rs", "let q = '\"'; let z = thread_rng();\n");
        assert!(f.lines[0].code.contains("thread_rng"));
        // The quote char literal must not open a string.
        assert!(f.lines[0].code.contains("let z"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn allows_attach_to_line_or_next_line() {
        let src = "let a = now(); // gfwlint: allow(D1)\n// gfwlint: allow(P1, C1)\nlet b = 1;\n";
        let f = SourceFile::scan("t.rs", src);
        assert_eq!(f.lines[0].allows, vec!["D1"]);
        assert!(f.lines[1].allows.is_empty() || f.lines[1].code.trim().is_empty());
        assert_eq!(f.lines[2].allows, vec!["P1", "C1"]);
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("Method::ChaCha20 => 8", "ChaCha20"));
        assert!(!has_token("Method::ChaCha20Ietf => 12", "ChaCha20"));
        assert!(!has_token("XChaCha20IetfPoly1305", "ChaCha20IetfPoly1305"));
        assert!(has_token(
            "Method::ChaCha20IetfPoly1305 => 32",
            "ChaCha20IetfPoly1305"
        ));
    }
}
