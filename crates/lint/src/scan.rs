//! Source scanning: per-line views derived from the real lexer.
//!
//! Historically this module was a line-oriented state machine that
//! carried comment/string state across lines and guessed at
//! `#[cfg(test)]` regions by brace counting. It is now a thin
//! projection of the [`crate::lex`] token stream and the
//! [`crate::items`] item tree:
//!
//! * the *code text* per line — comments and string/char literal
//!   contents blanked out (columns preserved), so a `thread_rng` inside
//!   a doc comment or a format string never trips a token rule;
//! * the *comment text* per line, for `// gfwlint: allow(RULE)` escapes
//!   and the U1 `// SAFETY:` audit;
//! * whether the line sits inside a `#[cfg(test)]`-gated item —
//!   **exact**, including nested `mod tests` and `#[cfg(all(test, …))]`
//!   forms, because it comes from the item tree rather than a regex;
//! * the full token stream and item tree themselves, which the R1/U1/W1
//!   rules query directly.

use crate::items::{self, ItemTree};
use crate::lex::{self, Tok, TokKind};
use std::path::Path;

/// One scanned source line.
#[derive(Debug)]
pub struct Line {
    /// The original line text.
    pub raw: String,
    /// The line with comments and literal contents replaced by spaces.
    /// Columns are preserved, so byte offsets into `code` line up with
    /// `raw`.
    pub code: String,
    /// The comment text on this line (contents of `//`/`/* */` pieces).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// Rule IDs suppressed on this line via `// gfwlint: allow(...)`.
    pub allows: Vec<String>,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The scanned lines, 0-indexed (line numbers in findings are 1-based).
    pub lines: Vec<Line>,
    /// The full source text.
    pub text: String,
    /// The token stream for `text` (spans tile the source exactly).
    pub toks: Vec<Tok>,
    /// The structural item tree (fns, cfg regions, unsafe sites).
    pub items: ItemTree,
}

impl SourceFile {
    /// Scan `text` as the contents of `rel`.
    pub fn scan(rel: &str, text: &str) -> SourceFile {
        let toks = lex::lex(text);
        let items = items::build(text, &toks);

        // Blank a copy of the source: comments erased entirely, string
        // and char literal *contents* erased (delimiters kept so quoted
        // regions stay visually delimited). Newlines always survive so
        // the line structure is unchanged.
        let mut blanked: Vec<u8> = text.as_bytes().to_vec();
        let blank = |buf: &mut [u8], range: std::ops::Range<usize>| {
            for b in &mut buf[range] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        };
        let mut comments: Vec<(usize, String)> = Vec::new(); // (start line, text)
        for t in &toks {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    comments.push((t.line, t.text(text).to_string()));
                    blank(&mut blanked, t.start..t.end);
                }
                TokKind::Str => {
                    // Keep the opening delimiter's quote and the final
                    // closing quote; blank the interior.
                    let s = t.text(text);
                    let open = s.find('"').map(|p| t.start + p);
                    let close = s.rfind('"').map(|p| t.start + p);
                    blank(&mut blanked, t.start..t.end);
                    if let Some(o) = open {
                        blanked[o] = b'"';
                    }
                    if let (Some(o), Some(c)) = (open, close) {
                        if c > o {
                            blanked[c] = b'"';
                        }
                    }
                }
                TokKind::Char => blank(&mut blanked, t.start..t.end),
                _ => {}
            }
        }
        let blanked = String::from_utf8(blanked).unwrap_or_else(|_| {
            // Blanking only rewrites ASCII bytes in-place, so this is
            // unreachable for valid input; fall back to the raw text.
            text.to_string()
        });

        // Distribute comment text across the lines each comment spans.
        let n_lines = text.lines().count();
        let mut per_line_comment = vec![String::new(); n_lines];
        for (start_line, ctext) in comments {
            for (off, piece) in ctext.split('\n').enumerate() {
                if let Some(slot) = per_line_comment.get_mut(start_line - 1 + off) {
                    slot.push_str(piece);
                }
            }
        }

        let mut lines = Vec::with_capacity(n_lines);
        let mut pending_allows: Vec<String> = Vec::new();
        for (idx, (raw, code)) in text.lines().zip(blanked.lines()).enumerate() {
            let comment = std::mem::take(&mut per_line_comment[idx]);
            let mut allows = parse_allows(&comment);
            if code.trim().is_empty() {
                // A comment-only line: its allows apply to the next code line.
                pending_allows.append(&mut allows);
            } else {
                allows.append(&mut pending_allows);
            }
            lines.push(Line {
                raw: raw.to_string(),
                code: code.to_string(),
                comment,
                in_test: items.line_in_test(idx + 1),
                allows,
            });
        }

        SourceFile {
            rel: rel.to_string(),
            lines,
            text: text.to_string(),
            toks,
            items,
        }
    }

    /// Load and scan a file on disk. `root` is the workspace root used
    /// to compute the relative path.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::scan(&rel, &text))
    }
}

/// Parse `gfwlint: allow(D1, P1)` escapes out of a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("gfwlint: allow(") {
        let after = &rest[pos + "gfwlint: allow(".len()..];
        if let Some(end) = after.find(')') {
            for id in after[..end].split(',') {
                let id = id.trim();
                if !id.is_empty() {
                    out.push(id.to_string());
                }
            }
            rest = &after[end + 1..];
        } else {
            break;
        }
    }
    out
}

/// Does `code` contain `token` at an identifier boundary on both sides?
pub fn has_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let f = SourceFile::scan(
            "t.rs",
            "let x = 1; // thread_rng\n/* Instant::now */ let y = 2;\n",
        );
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(!f.lines[1].code.contains("Instant"));
        assert!(f.lines[1].code.contains("let y = 2;"));
    }

    #[test]
    fn comment_text_is_preserved_per_line() {
        let f = SourceFile::scan(
            "t.rs",
            "// SAFETY: bounds checked above\nlet x = 1; // trailing\n/* a\nb */ let y = 2;\n",
        );
        assert!(f.lines[0].comment.contains("SAFETY: bounds checked"));
        assert!(f.lines[1].comment.contains("trailing"));
        assert!(f.lines[2].comment.contains("a"));
        assert!(f.lines[3].comment.contains("b"));
    }

    #[test]
    fn strips_string_contents_including_raw_and_multiline() {
        let src = "let a = \"thread_rng\";\nlet b = r#\"Instant::now\"#;\nlet c = \"spans\nlines thread_rng\";\nlet d = 1;\n";
        let f = SourceFile::scan("t.rs", src);
        for line in &f.lines[..4] {
            assert!(!line.code.contains("thread_rng"), "{:?}", line.code);
            assert!(!line.code.contains("Instant"), "{:?}", line.code);
        }
        assert!(f.lines[4].code.contains("let d = 1;"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let f = SourceFile::scan(
            "t.rs",
            "fn f<'a>(x: &'a str) -> &'a str { thread_rng(x) }\n",
        );
        assert!(f.lines[0].code.contains("thread_rng"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let f = SourceFile::scan("t.rs", "let q = '\"'; let z = thread_rng();\n");
        assert!(f.lines[0].code.contains("thread_rng"));
        // The quote char literal must not open a string.
        assert!(f.lines[0].code.contains("let z"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn nested_and_all_cfg_test_regions_are_exact() {
        let src = "\
mod m {
    #[cfg(test)]
    mod tests {
        mod inner { fn b() { x.unwrap(); } }
    }
    fn live() { y.unwrap(); }
}
#[cfg(all(test, feature = \"slow\"))]
fn gated() { z.unwrap(); }
";
        let f = SourceFile::scan("t.rs", src);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test); // nested module body
        assert!(!f.lines[5].in_test); // live() is NOT test code
        assert!(f.lines[7].in_test); // all(test, …) attribute line
        assert!(f.lines[8].in_test);
    }

    #[test]
    fn allows_attach_to_line_or_next_line() {
        let src = "let a = now(); // gfwlint: allow(D1)\n// gfwlint: allow(P1, C1)\nlet b = 1;\n";
        let f = SourceFile::scan("t.rs", src);
        assert_eq!(f.lines[0].allows, vec!["D1"]);
        assert!(f.lines[1].allows.is_empty() || f.lines[1].code.trim().is_empty());
        assert_eq!(f.lines[2].allows, vec!["P1", "C1"]);
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("Method::ChaCha20 => 8", "ChaCha20"));
        assert!(!has_token("Method::ChaCha20Ietf => 12", "ChaCha20"));
        assert!(!has_token("XChaCha20IetfPoly1305", "ChaCha20IetfPoly1305"));
        assert!(has_token(
            "Method::ChaCha20IetfPoly1305 => 32",
            "ChaCha20IetfPoly1305"
        ));
    }
}
