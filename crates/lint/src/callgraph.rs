//! The R1 determinism-taint engine: a name-based call graph.
//!
//! D1 bans nondeterminism *tokens* inside the simulation crates, but a
//! sim can also lose determinism indirectly: a helper in `shadowsocks`
//! or `sscrypto` that grabs `Instant::now`, or a sim-crate function
//! that iterates a `HashMap`/`HashSet` in an output-ordering position.
//! R1 closes that gap by building a per-workspace call graph over the
//! crates the simulator can depend on and flagging nondeterminism
//! *sources* in functions reachable from `impl Simulator` methods.
//!
//! The graph is deliberately name-based and over-approximate: a call
//! edge exists from `f` to every function named `g` when `f`'s body
//! contains `g(…)`, `Type::g(…)` or `.g(…)`. Over-approximation is the
//! right polarity for a lint — dynamic dispatch and trait calls resolve
//! to *every* same-named candidate, so reachability never misses a real
//! path; an unreachable false edge at worst asks for an explicit
//! `// gfwlint: allow(R1)` with a justification.
//!
//! Two source classes:
//!
//! 1. **Clock/entropy calls** (`SystemTime::now`, `Instant::now`,
//!    `thread_rng`, `from_entropy`) in *non-sim* reachable crates
//!    (`shadowsocks`, `sscrypto`, `analysis`). Inside sim crates D1
//!    already reports these line-for-line, so R1 stays quiet there
//!    rather than double-reporting.
//! 2. **Unordered-map iteration** (`.iter()`, `.keys()`, `.values()`,
//!    `.drain()`, `for … in &map`) over a `HashMap`/`HashSet`-typed
//!    binding, in any reachable function, unless the line feeds an
//!    order-insensitive sink (`.sum()`, `.count()`, `.min(`/`.max(`,
//!    `.all(`/`.any(`, a `.sort*` call, `.collect::<BTree…>`, …).
//!    Iteration order of std's hashed containers is seeded per-process,
//!    so any ordering that leaks into simulator output breaks
//!    bit-for-bit reproducibility.

use crate::scan::{has_token, SourceFile};
use crate::{AllowUse, Finding, Report, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Crates in the R1 graph: the sim crates plus everything they can
/// reach. `experiments` and `bench` are excluded on purpose — they
/// legitimately measure wall-clock time, and nothing in a sim calls
/// back into them.
pub const R1_CRATES: &[&str] = &[
    "core",
    "netsim",
    "probesim",
    "trafficgen",
    "defense",
    "shadowsocks",
    "sscrypto",
    "analysis",
];

/// Crates where D1 already reports clock/entropy tokens line-by-line.
const D1_COVERED: &[&str] = &["core", "netsim", "probesim", "trafficgen", "defense"];

/// Clock / OS-entropy call tokens (the D1 set).
const CLOCK_TOKENS: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "thread_rng",
    "from_entropy",
];

/// Method-call fragments that iterate a map/set.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain()",
];

/// Order-insensitive sinks: a map iteration feeding one of these on the
/// same expression line cannot leak hash order into output.
const ORDER_NEUTRAL: &[&str] = &[
    ".sum()",
    ".sum::<",
    ".count()",
    ".min(",
    ".min_by",
    ".max(",
    ".max_by",
    ".all(",
    ".any(",
    ".fold(",
    ".sort",
    ".len()",
    ".is_empty()",
    ".contains",
    "collect::<BTree",
    "BTreeMap>",
    "BTreeSet>",
];

/// Rust keywords that look like call heads (`if x(…)` never parses that
/// way, but `matches!`-style scans can produce them).
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "let", "impl", "pub", "use", "mod",
    "move", "in", "as", "else", "unsafe", "where", "break", "continue",
];

/// One function node in the graph.
struct FnNode {
    /// Workspace-relative file.
    file: String,
    /// Index into that file's `items.fns`.
    fn_idx: usize,
    /// Crate directory name.
    crate_name: String,
}

/// A nondeterminism source found inside a function body.
struct Source {
    /// Node that contains it.
    node: usize,
    /// 1-based line.
    line: usize,
    /// What it is, for the message.
    what: String,
    /// True when D1 already reports this exact line (sim crates).
    d1_covered: bool,
}

/// Run the R1 rule over the workspace.
pub fn r1_determinism_taint(ws: &Workspace, report: &mut Report) {
    // ---- Collect nodes.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for crate_name in R1_CRATES {
        let prefix = format!("crates/{crate_name}/src/");
        for file in ws.sources_under(&prefix) {
            for (fn_idx, f) in file.items.fns.iter().enumerate() {
                if f.in_test || f.name.is_empty() {
                    continue;
                }
                let node = nodes.len();
                nodes.push(FnNode {
                    file: file.rel.clone(),
                    fn_idx,
                    crate_name: crate_name.to_string(),
                });
                by_name.entry(f.name.clone()).or_default().push(node);
            }
        }
    }

    // ---- Entry points: `impl Simulator` methods.
    let entries: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let f = &ws.sources[&n.file].items.fns[n.fn_idx];
            f.impl_type.as_deref() == Some("Simulator")
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return; // nothing to taint from in this tree
    }

    // ---- Edges: name-based call matching over body lines.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    // Remember one representative call line per (caller, callee name)
    // so taint chains can cite where the call happens.
    let mut call_lines: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (ni, node) in nodes.iter().enumerate() {
        let file = &ws.sources[&node.file];
        let f = &file.items.fns[node.fn_idx];
        let mut callees: BTreeSet<usize> = BTreeSet::new();
        for line_no in f.line_start..=f.line_end.min(file.lines.len()) {
            let code = &file.lines[line_no - 1].code;
            for (name, targets) in called_names(code) {
                let _ = name;
                for t in targets(&by_name) {
                    if t != ni {
                        callees.insert(t);
                        call_lines.entry((ni, t)).or_insert(line_no);
                    }
                }
            }
        }
        edges[ni] = callees.into_iter().collect();
    }

    // ---- Reachability with parent links for chain reconstruction.
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut reached: Vec<bool> = vec![false; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in &entries {
        reached[e] = true;
        queue.push_back(e);
    }
    while let Some(n) = queue.pop_front() {
        for &m in &edges[n] {
            if !reached[m] {
                reached[m] = true;
                parent[m] = Some(n);
                queue.push_back(m);
            }
        }
    }

    // ---- Sources inside reachable functions.
    let mut sources: Vec<Source> = Vec::new();
    for (ni, node) in nodes.iter().enumerate() {
        if !reached[ni] {
            continue;
        }
        let file = &ws.sources[&node.file];
        let f = &file.items.fns[node.fn_idx];
        let map_names = map_typed_names(file);
        let d1_crate = D1_COVERED.contains(&node.crate_name.as_str());
        for line_no in f.line_start..=f.line_end.min(file.lines.len()) {
            let line = &file.lines[line_no - 1];
            if line.in_test {
                continue;
            }
            for token in CLOCK_TOKENS {
                if has_token(&line.code, token) {
                    sources.push(Source {
                        node: ni,
                        line: line_no,
                        what: format!("`{token}`"),
                        d1_covered: d1_crate,
                    });
                }
            }
            if let Some(name) = map_iteration(&line.code, &map_names) {
                sources.push(Source {
                    node: ni,
                    line: line_no,
                    what: format!("iteration over hash-ordered `{name}`"),
                    d1_covered: false,
                });
            }
        }
    }

    // ---- Report, deterministically ordered.
    sources.sort_by(|a, b| {
        (&nodes[a.node].file, a.line, &a.what).cmp(&(&nodes[b.node].file, b.line, &b.what))
    });
    sources.dedup_by(|a, b| a.node == b.node && a.line == b.line && a.what == b.what);
    for s in sources {
        if s.d1_covered {
            continue; // D1 reports this line already
        }
        let node = &nodes[s.node];
        let file = &ws.sources[&node.file];
        if file.lines[s.line - 1].allows.iter().any(|a| a == "R1") {
            report.allows.push(AllowUse {
                rule: "R1".to_string(),
                file: node.file.clone(),
                line: s.line,
            });
            continue;
        }
        let chain = chain_to(&nodes, &ws_fn_names(ws, &nodes), &parent, s.node);
        report.findings.push(Finding {
            rule: "R1",
            file: node.file.clone(),
            line: s.line,
            message: format!(
                "{} in a function reachable from the simulator ({chain}): \
                 nondeterminism here breaks bit-for-bit reproducibility; thread the \
                 seeded RNG / sim clock through, use a BTree container, or justify \
                 with `// gfwlint: allow(R1)`",
                s.what
            ),
        });
    }
    // Keep global finding order stable across rules: the caller sorts
    // nothing, so R1's own output is already (file, line)-sorted.
}

/// Qualified display names, parallel to `nodes`.
fn ws_fn_names(ws: &Workspace, nodes: &[FnNode]) -> Vec<String> {
    nodes
        .iter()
        .map(|n| {
            let f = &ws.sources[&n.file].items.fns[n.fn_idx];
            format!("{}::{}", n.crate_name, f.qual)
        })
        .collect()
}

/// Render `Simulator::run → a → b` for the BFS path to `node`.
fn chain_to(_nodes: &[FnNode], names: &[String], parent: &[Option<usize>], node: usize) -> String {
    let mut path = vec![node];
    let mut cur = node;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
        if path.len() > 12 {
            break; // chains longer than this stop being useful
        }
    }
    path.reverse();
    let rendered: Vec<&str> = path.iter().map(|&i| names[i].as_str()).collect();
    format!("via {}", rendered.join(" -> "))
}

/// Extract call-head names from one line of stripped code. Returns a
/// closure-based resolver so the (name → nodes) map lookup stays in one
/// place.
#[allow(clippy::type_complexity)]
fn called_names<'a>(
    code: &'a str,
) -> Vec<(
    String,
    Box<dyn Fn(&BTreeMap<String, Vec<usize>>) -> Vec<usize> + 'a>,
)> {
    let mut out: Vec<(
        String,
        Box<dyn Fn(&BTreeMap<String, Vec<usize>>) -> Vec<usize>>,
    )> = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &code[start..i];
            // A call head: identifier directly followed by `(`, or
            // `::<` turbofish then `(`.
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            let is_call = j < bytes.len() && bytes[j] == b'(';
            if is_call && !NOT_CALLS.contains(&word) {
                let name = word.to_string();
                let key = name.clone();
                out.push((
                    name,
                    Box::new(move |by_name| by_name.get(&key).cloned().unwrap_or_default()),
                ));
            }
            continue;
        }
        i += 1;
    }
    out
}

/// Names in this file bound to a `HashMap`/`HashSet` (let bindings,
/// struct fields, fn params — any `name: Hash{Map,Set}<` or
/// `name = Hash{Map,Set}::` shape on a single line).
fn map_typed_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        for marker in ["HashMap", "HashSet"] {
            let mut from = 0usize;
            while let Some(pos) = code[from..].find(marker) {
                let at = from + pos;
                from = at + marker.len();
                if !has_token(code, marker) {
                    continue;
                }
                // Look left for `name :` or `name =`.
                let before = code[..at].trim_end();
                let before = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix("::<").map(|b| b.trim_end()))
                    .or_else(|| before.strip_suffix('=').map(|b| b.trim_end()))
                    .unwrap_or("");
                let name: String = before
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                let name = name
                    .trim_start_matches(|c: char| c.is_ascii_digit())
                    .to_string();
                if !name.is_empty() && name != "mut" && name != "let" {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Does this line iterate one of the map-typed names without an
/// order-insensitive sink? Returns the offending name.
fn map_iteration(code: &str, map_names: &BTreeSet<String>) -> Option<String> {
    if map_names.is_empty() {
        return None;
    }
    if ORDER_NEUTRAL.iter().any(|n| code.contains(n)) {
        return None;
    }
    for name in map_names {
        let hit = ITER_METHODS
            .iter()
            .any(|m| code.contains(&format!("{name}{m}")))
            || code.contains(&format!("in &{name}"))
            || code.contains(&format!("in &mut {name}"))
            || code.contains(&format!("in {name} "))
            || code.trim_end().ends_with(&format!("in {name}"));
        if hit && has_token(code, name) {
            return Some(name.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_names_from_decls() {
        let f = SourceFile::scan(
            "t.rs",
            "let mut seen: HashMap<u32, u64> = HashMap::new();\nlet used = HashSet::new();\n",
        );
        let names = map_typed_names(&f);
        assert!(names.contains("seen"));
        assert!(names.contains("used"));
    }

    #[test]
    fn iteration_detection_and_neutral_sinks() {
        let names: BTreeSet<String> = ["seen".to_string()].into_iter().collect();
        assert!(map_iteration("for (k, v) in &seen {", &names).is_some());
        assert!(map_iteration("seen.values().collect::<Vec<_>>()", &names).is_some());
        assert!(map_iteration("let total: u64 = seen.values().sum();", &names).is_none());
        assert!(map_iteration("let n = seen.len();", &names).is_none());
        assert!(map_iteration(
            "let mut v: Vec<_> = seen.keys().collect(); v.sort();",
            &names
        )
        .is_none());
        assert!(map_iteration("for x in &other {", &names).is_none());
    }

    #[test]
    fn call_heads() {
        let calls = called_names("let x = helper(3) + Type::assoc(y); obj.method(z);");
        let names: Vec<&str> = calls.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["helper", "assoc", "method"]);
        let none = called_names("if (a) { } while (b) { }");
        assert!(none.is_empty());
    }
}
