//! `gfw-lint` command-line entry point.
//!
//! ```text
//! gfw-lint [--root DIR] [--json] [--fix] [--bless] [--explain RULE]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gfw_lint::{bless, explain, fix, report, run, Options};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    fix: bool,
    bless: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        fix: false,
        bless: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--fix" => args.fix = true,
            "--bless" => args.bless = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--explain" => {
                let rule = it
                    .next()
                    .ok_or("--explain needs a rule ID (try `--explain R1`)")?;
                args.explain = Some(rule);
            }
            "--help" | "-h" => {
                println!(
                    "gfw-lint: workspace invariant checker\n\n\
                     USAGE: gfw-lint [--root DIR] [--json] [--fix] [--bless] [--explain RULE]\n\n\
                     Rules: D1 determinism, D2 crate attributes, P1 panic budget,\n\
                     A1 allocation budget (crypto hot path), C1 protocol-constant\n\
                     consistency, H1 workspace dependencies, T1 thread isolation\n\
                     (threads only in experiments::runner), T2 heap isolation,\n\
                     R1 determinism taint (call-graph reachability from the\n\
                     Simulator), U1 unsafe/SAFETY audit, W1 wrapping-arithmetic\n\
                     discipline on the hot path.\n\
                     Suppress one finding with `// gfwlint: allow(RULE)`.\n\n\
                     --root DIR     lint this workspace (default: nearest enclosing workspace)\n\
                     --json         machine-readable output (incl. per-function budget sites)\n\
                     --fix          apply mechanical fixes (D2 attributes, H1 rewrites)\n\
                     --bless        regenerate the P1/A1/U1 baselines (budgets only ratchet down)\n\
                     --explain RULE print a rule's rationale and escape hatch"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Walk upward from the current directory to the nearest directory with
/// a `Cargo.toml` declaring `[workspace]`.
fn discover_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no enclosing Cargo workspace found (use --root)".to_string());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gfw-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.map(Ok).unwrap_or_else(discover_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gfw-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &args.explain {
        return match explain::explain(rule) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("gfw-lint: unknown rule `{rule}`\n{}", explain::index());
                ExitCode::from(2)
            }
        };
    }

    if args.bless {
        return match bless(&root) {
            Ok(msg) => {
                println!("gfw-lint: {msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gfw-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let opts = Options { root };
    let result = if args.fix {
        fix::fix(&opts).map(|(applied, report)| {
            for a in &applied {
                println!("fixed {}: {}", a.file, a.what);
            }
            report
        })
    } else {
        run(&opts)
    };

    match result {
        Ok(rep) => {
            if args.json {
                print!("{}", report::render_json(&rep));
            } else {
                print!("{}", report::render_human(&rep));
            }
            if rep.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("gfw-lint: {e}");
            ExitCode::from(2)
        }
    }
}
