//! The lint rules (R1 lives in [`crate::callgraph`]).
//!
//! Each rule pushes [`Finding`]s (and honored allow-escapes) into the
//! shared [`Report`]. Token rules operate on the comment/string-stripped
//! `code` text produced by [`crate::scan`], so tokens inside comments,
//! doc examples rendered as comments, or string literals never fire;
//! the structural rules (U1, W1) and the budget attribution query the
//! per-file item tree ([`crate::items`]) directly.

use crate::baseline::{Baseline, BASELINE_FILE};
use crate::items::{is_int_type, UnsafeKind};
use crate::lex::TokKind;
use crate::scan::{has_token, SourceFile};
use crate::{AllowUse, Finding, Report, Site, Workspace};
use std::collections::BTreeMap;

/// Crates whose behaviour must be a pure function of the seed (D1).
pub const SIM_CRATES: &[&str] = &["core", "netsim", "probesim", "trafficgen", "defense"];

/// Crates with a panic-site budget (P1).
pub const PANIC_BUDGET_CRATES: &[&str] = &["core", "netsim", "sscrypto"];

/// Wall-clock / OS-entropy tokens banned in simulation crates.
const D1_TOKENS: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "thread_rng",
    "from_entropy",
];

/// Explicit panic-site tokens counted by P1.
const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!", "unreachable!"];

/// Hot-path areas with an allocation budget (A1):
/// `(baseline key, path prefix, file findings point at)`.
pub const ALLOC_BUDGET_AREAS: &[(&str, &str, &str)] = &[
    (
        "shadowsocks-wire",
        "crates/shadowsocks/src/wire.rs",
        "crates/shadowsocks/src/wire.rs",
    ),
    (
        "sscrypto",
        "crates/sscrypto/src/",
        "crates/sscrypto/src/lib.rs",
    ),
];

/// Heap-allocation tokens counted by A1. These are the per-call
/// allocations the zero-copy codec work removed from the crypto hot
/// path; the budget keeps them from creeping back.
const ALLOC_TOKENS: &[&str] = &[".to_vec()", "Vec::new()", ".clone()"];

/// Crates that must stay single-threaded-deterministic (T1): the
/// simulation stack never spawns threads or uses channel-based
/// concurrency — all parallelism lives in `experiments::runner`.
pub const SINGLE_THREADED_CRATES: &[&str] = &[
    "core",
    "netsim",
    "probesim",
    "trafficgen",
    "defense",
    "shadowsocks",
    "sscrypto",
];

/// Threading primitives banned outside the run engine. `std::thread`
/// also covers `thread::spawn`/`scope`/`Builder` via the path prefix;
/// the bare forms are listed for `use`-renamed call sites.
const T1_TOKENS: &[&str] = &[
    "std::thread",
    "thread::spawn",
    "thread::scope",
    "thread::Builder",
    "std::sync::mpsc",
    "rayon",
];

/// The places threads are allowed: the experiment run engine and the
/// simulator's shard executor. Both get their parallelism by building
/// whole `Simulator`s per worker thread — the simulators themselves
/// stay single-threaded, which is exactly the property T1 protects.
const T1_EXEMPT: &[&str] = &[
    "crates/experiments/src/runner.rs",
    "crates/netsim/src/shard.rs",
];

/// The scheduling structure T2 bans. Both the simulator's event queue
/// and the GFW scheduler replaced `BinaryHeap<Reverse<..>>` with the
/// timer wheel; a heap reappearing on a hot path would silently undo
/// that and reintroduce `O(log n)` comparison churn per event.
const T2_TOKEN: &str = "BinaryHeap";

/// The one place a heap survives: the timer wheel's far-future
/// overflow store inside the event queue itself.
const T2_EVENTQ: &str = "crates/netsim/src/eventq.rs";

/// The paper's IV/salt length table (Fig 10 row groups): every
/// `sscrypto::method::Method` variant and the byte length its
/// `iv_len()` arm must declare.
const IV_EXPECT: &[(&str, usize)] = &[
    ("Aes128Ctr", 16),
    ("Aes192Ctr", 16),
    ("Aes256Ctr", 16),
    ("Aes128Cfb", 16),
    ("Aes192Cfb", 16),
    ("Aes256Cfb", 16),
    ("ChaCha20", 8),
    ("ChaCha20Ietf", 12),
    ("Rc4Md5", 16),
    ("Aes128Gcm", 16),
    ("Aes192Gcm", 24),
    ("Aes256Gcm", 32),
    ("ChaCha20IetfPoly1305", 32),
    ("XChaCha20IetfPoly1305", 32),
];

/// Variants using the AEAD construction (their `iv_len` is a salt).
const AEAD_VARIANTS: &[&str] = &[
    "Aes128Gcm",
    "Aes192Gcm",
    "Aes256Gcm",
    "ChaCha20IetfPoly1305",
    "XChaCha20IetfPoly1305",
];

/// An AEAD server first decrypts (and reacts) at `salt + 35` bytes, so
/// the probe sweep places a trio center at `salt + 17` — inside the
/// silent zone for the next-larger salt but past the stream IVs.
const AEAD_CENTER_OFFSET: usize = 17;

/// The AEAD decrypt threshold: salt + 2-byte length + two 16-byte tags
/// + 1 (`salt + 35`). `NR2_LEN` must exceed it for the largest salt.
const AEAD_THRESHOLD_OFFSET: usize = 35;

fn allowed(report: &mut Report, rule: &str, file: &SourceFile, idx: usize) -> bool {
    if file.lines[idx].allows.iter().any(|a| a == rule) {
        report.allows.push(AllowUse {
            rule: rule.to_string(),
            file: file.rel.clone(),
            line: idx + 1,
        });
        true
    } else {
        false
    }
}

/// D1: no wall-clock or OS-entropy calls in simulation crates.
pub fn d1_determinism(ws: &Workspace, report: &mut Report) {
    for crate_name in SIM_CRATES {
        let prefix = format!("crates/{crate_name}/");
        let rels: Vec<String> = ws.sources_under(&prefix).map(|f| f.rel.clone()).collect();
        for rel in rels {
            let file = &ws.sources[&rel];
            let mut hits = Vec::new();
            for (idx, line) in file.lines.iter().enumerate() {
                for token in D1_TOKENS {
                    if has_token(&line.code, token) {
                        hits.push((idx, *token));
                    }
                }
            }
            for (idx, token) in hits {
                if allowed(report, "D1", &ws.sources[&rel], idx) {
                    continue;
                }
                report.findings.push(Finding {
                    rule: "D1",
                    file: rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{token}` in simulation crate `{crate_name}`: simulations must \
                         derive all time and randomness from the seeded simulator state"
                    ),
                });
            }
        }
    }
}

/// T1: thread primitives only inside `experiments::runner`.
///
/// The simulators are pure functions of the seed precisely because
/// each `Simulator` lives on one thread (`Rc<RefCell>` taps, one
/// `StdRng`, one event queue). Any thread spawned inside a sim crate
/// would either fail to compile (`!Send`) or, worse, introduce
/// scheduling nondeterminism that D1 cannot see. The run engine gets
/// its parallelism by building a whole `Simulator` per worker, so the
/// only legitimate home for `std::thread` is `runner.rs` itself.
pub fn t1_thread_isolation(ws: &Workspace, report: &mut Report) {
    let mut prefixes: Vec<String> = SINGLE_THREADED_CRATES
        .iter()
        .map(|c| format!("crates/{c}/"))
        .collect();
    prefixes.push("crates/experiments/".to_string());
    for prefix in prefixes {
        let rels: Vec<String> = ws
            .sources_under(&prefix)
            .filter(|f| !T1_EXEMPT.contains(&f.rel.as_str()))
            .map(|f| f.rel.clone())
            .collect();
        for rel in rels {
            let file = &ws.sources[&rel];
            let mut hits = Vec::new();
            for (idx, line) in file.lines.iter().enumerate() {
                // One finding per line: the tokens overlap by design
                // (`std::thread::spawn` matches two of them).
                if let Some(token) = T1_TOKENS.iter().find(|t| has_token(&line.code, t)) {
                    hits.push((idx, *token));
                }
            }
            for (idx, token) in hits {
                if allowed(report, "T1", &ws.sources[&rel], idx) {
                    continue;
                }
                report.findings.push(Finding {
                    rule: "T1",
                    file: rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{token}` outside `experiments::runner`: simulation code is \
                         single-threaded by contract; declare parallel work as runner \
                         jobs instead"
                    ),
                });
            }
        }
    }
}

/// T2: `BinaryHeap` only inside `netsim::eventq`.
///
/// The hierarchical timer wheel in `netsim::eventq` is the workspace's
/// one scheduling structure; everything time-ordered (simulator events,
/// GFW probe orders) routes through `EventQueue`. Non-test code in the
/// single-threaded crates and `experiments` must not grow a new heap.
/// Test code is exempt: the differential property test keeps a
/// `BinaryHeap` reference on purpose, as the oracle the wheel is
/// checked against.
pub fn t2_heap_isolation(ws: &Workspace, report: &mut Report) {
    let mut prefixes: Vec<String> = SINGLE_THREADED_CRATES
        .iter()
        .map(|c| format!("crates/{c}/"))
        .collect();
    prefixes.push("crates/experiments/".to_string());
    for prefix in prefixes {
        let rels: Vec<String> = ws
            .sources_under(&prefix)
            .filter(|f| f.rel != T2_EVENTQ && !f.rel.contains("/tests/"))
            .map(|f| f.rel.clone())
            .collect();
        for rel in rels {
            let file = &ws.sources[&rel];
            let mut hits = Vec::new();
            for (idx, line) in file.lines.iter().enumerate() {
                if !line.in_test && has_token(&line.code, T2_TOKEN) {
                    hits.push(idx);
                }
            }
            for idx in hits {
                if allowed(report, "T2", &ws.sources[&rel], idx) {
                    continue;
                }
                report.findings.push(Finding {
                    rule: "T2",
                    file: rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{T2_TOKEN}` outside `netsim::eventq`: the timer wheel is the \
                         workspace's one scheduling structure; queue time-ordered work \
                         through `netsim::eventq::EventQueue` instead"
                    ),
                });
            }
        }
    }
}

/// D2: every crate root file carries both lint attributes.
///
/// A crate with a non-zero `[unsafe-budget]` entry cannot use
/// `#![forbid(unsafe_code)]` (forbid rejects item-level overrides), so
/// for those crates `#![deny(unsafe_code)]` satisfies the rule — the
/// audited islands then go through `#[allow(unsafe_code)]` and rule U1.
pub fn d2_crate_attrs(ws: &Workspace, report: &mut Report) {
    let unsafe_budgets = Baseline::load(&ws.root)
        .ok()
        .flatten()
        .map(|b| b.unsafe_budgets)
        .unwrap_or_default();
    let mut roots: Vec<(String, String)> = Vec::new(); // (crate label, root file rel)
    if ws.sources.contains_key("src/lib.rs") {
        roots.push(("workspace root".into(), "src/lib.rs".into()));
    }
    for c in &ws.crates {
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let rel = format!("crates/{}/{candidate}", c.name);
            if ws.sources.contains_key(&rel) {
                roots.push((c.name.clone(), rel));
                break;
            }
        }
    }
    for (label, rel) in roots {
        let file = &ws.sources[&rel];
        let budgeted_unsafe = unsafe_budgets.get(&label).copied().unwrap_or(0) > 0;
        for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            let mut present = file.lines.iter().any(|l| l.code.contains(attr));
            if !present && attr.contains("unsafe_code") && budgeted_unsafe {
                present = file
                    .lines
                    .iter()
                    .any(|l| l.code.contains("#![deny(unsafe_code)]"));
            }
            if !present {
                report.findings.push(Finding {
                    rule: "D2",
                    file: rel.clone(),
                    line: 1,
                    message: format!("crate `{label}` is missing `{attr}` (fixable with --fix)"),
                });
            }
        }
    }
}

/// Count P1 panic-site tokens in the non-test `src/` code of the
/// budgeted crates. Allow-escaped lines are excluded from the count
/// (the escape is recorded on the report during `p1_panic_budget`).
pub fn panic_counts(ws: &Workspace) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for crate_name in PANIC_BUDGET_CRATES {
        let prefix = format!("crates/{crate_name}/src/");
        let mut count = 0usize;
        for file in ws.sources_under(&prefix) {
            for line in &file.lines {
                if line.in_test || line.allows.iter().any(|a| a == "P1") {
                    continue;
                }
                for token in PANIC_TOKENS {
                    count += count_token(&line.code, token);
                }
            }
        }
        counts.insert(crate_name.to_string(), count);
    }
    counts
}

/// Collect budget-counted sites under `prefix`, attributed to their
/// enclosing function via the item tree.
fn attributed_sites(ws: &Workspace, prefix: &str, tokens: &[&str], rule: &str) -> Vec<Site> {
    let mut sites = Vec::new();
    for file in ws.sources_under(prefix) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test || line.allows.iter().any(|a| a == rule) {
                continue;
            }
            for token in tokens {
                for _ in 0..count_token(&line.code, token) {
                    let function = file
                        .items
                        .fn_at_line(idx + 1)
                        .map(|f| f.qual.clone())
                        .unwrap_or_else(|| "(file scope)".to_string());
                    sites.push(Site {
                        file: file.rel.clone(),
                        line: idx + 1,
                        function,
                        token: token.to_string(),
                    });
                }
            }
        }
    }
    sites
}

/// P1: per-crate panic budget against the checked-in baseline.
pub fn p1_panic_budget(ws: &Workspace, report: &mut Report) -> Result<(), String> {
    let counts = panic_counts(ws);
    report.panic_counts = counts.clone();
    for crate_name in PANIC_BUDGET_CRATES {
        let prefix = format!("crates/{crate_name}/src/");
        report
            .panic_sites
            .extend(attributed_sites(ws, &prefix, PANIC_TOKENS, "P1"));
    }
    // Record honored escapes.
    for crate_name in PANIC_BUDGET_CRATES {
        let prefix = format!("crates/{crate_name}/src/");
        let escapes: Vec<(String, usize)> = ws
            .sources_under(&prefix)
            .flat_map(|file| {
                file.lines.iter().enumerate().filter_map(|(idx, line)| {
                    let is_panic_line = PANIC_TOKENS.iter().any(|t| count_token(&line.code, t) > 0);
                    (!line.in_test && is_panic_line && line.allows.iter().any(|a| a == "P1"))
                        .then(|| (file.rel.clone(), idx + 1))
                })
            })
            .collect();
        for (file, line) in escapes {
            report.allows.push(AllowUse {
                rule: "P1".to_string(),
                file,
                line,
            });
        }
    }

    let has_budgeted_crate = ws
        .crates
        .iter()
        .any(|c| PANIC_BUDGET_CRATES.contains(&c.name.as_str()));
    if !has_budgeted_crate {
        return Ok(());
    }
    let Some(baseline) = Baseline::load(&ws.root)? else {
        report.findings.push(Finding {
            rule: "P1",
            file: BASELINE_FILE.to_string(),
            line: 0,
            message: "panic-budget baseline missing; run `gfw-lint --bless` to create it"
                .to_string(),
        });
        return Ok(());
    };
    for (name, &count) in &counts {
        if !ws.crates.iter().any(|c| &c.name == name) {
            continue;
        }
        match baseline.budgets.get(name) {
            None => report.findings.push(Finding {
                rule: "P1",
                file: BASELINE_FILE.to_string(),
                line: 0,
                message: format!(
                    "crate `{name}` has no panic budget entry (current count: {count}); \
                     run `gfw-lint --bless`"
                ),
            }),
            Some(&budget) if count > budget => report.findings.push(Finding {
                rule: "P1",
                file: format!("crates/{name}/src/lib.rs"),
                line: 1,
                message: format!(
                    "crate `{name}` has {count} explicit panic sites in non-test code, \
                     over its budget of {budget}; remove some or raise the budget by \
                     hand in {BASELINE_FILE}"
                ),
            }),
            _ => {}
        }
    }
    Ok(())
}

/// Count A1 heap-allocation tokens in the non-test code of each
/// budgeted hot-path area. Allow-escaped lines are excluded (the
/// escape is recorded during `a1_alloc_budget`). Areas with no source
/// files in this workspace are omitted.
pub fn alloc_counts(ws: &Workspace) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for &(key, prefix, _) in ALLOC_BUDGET_AREAS {
        let mut count = 0usize;
        let mut present = false;
        for file in ws.sources_under(prefix) {
            present = true;
            for line in &file.lines {
                if line.in_test || line.allows.iter().any(|a| a == "A1") {
                    continue;
                }
                for token in ALLOC_TOKENS {
                    count += count_token(&line.code, token);
                }
            }
        }
        if present {
            counts.insert(key.to_string(), count);
        }
    }
    counts
}

/// A1: per-area heap-allocation budget against the checked-in baseline.
///
/// The crypto hot path (`sscrypto` and the `shadowsocks` wire codec)
/// went through a deliberate de-allocation pass: keystream batching,
/// in-place sealing/opening and scratch-buffer reuse. This rule pins
/// the remaining `.to_vec()` / `Vec::new()` / `.clone()` sites so a
/// refactor cannot quietly reintroduce per-chunk allocations. Budgets
/// live in `[alloc-budget]` of `lint-baseline.toml` and only ratchet
/// down via `--bless`. When the baseline file itself is missing, P1
/// already reports that; this rule stays quiet to avoid a duplicate.
pub fn a1_alloc_budget(ws: &Workspace, report: &mut Report) -> Result<(), String> {
    let counts = alloc_counts(ws);
    report.alloc_counts = counts.clone();
    if counts.is_empty() {
        return Ok(());
    }
    for &(_, prefix, _) in ALLOC_BUDGET_AREAS {
        report
            .alloc_sites
            .extend(attributed_sites(ws, prefix, ALLOC_TOKENS, "A1"));
    }
    // Record honored escapes.
    for &(_, prefix, _) in ALLOC_BUDGET_AREAS {
        let escapes: Vec<(String, usize)> = ws
            .sources_under(prefix)
            .flat_map(|file| {
                file.lines.iter().enumerate().filter_map(|(idx, line)| {
                    let is_alloc_line = ALLOC_TOKENS.iter().any(|t| count_token(&line.code, t) > 0);
                    (!line.in_test && is_alloc_line && line.allows.iter().any(|a| a == "A1"))
                        .then(|| (file.rel.clone(), idx + 1))
                })
            })
            .collect();
        for (file, line) in escapes {
            report.allows.push(AllowUse {
                rule: "A1".to_string(),
                file,
                line,
            });
        }
    }

    let Some(baseline) = Baseline::load(&ws.root)? else {
        return Ok(());
    };
    for (name, &count) in &counts {
        let report_file = ALLOC_BUDGET_AREAS
            .iter()
            .find(|(key, _, _)| key == name)
            .map(|&(_, _, f)| f)
            .unwrap_or(BASELINE_FILE);
        match baseline.alloc_budgets.get(name) {
            None => report.findings.push(Finding {
                rule: "A1",
                file: BASELINE_FILE.to_string(),
                line: 0,
                message: format!(
                    "area `{name}` has no alloc budget entry (current count: {count}); \
                     run `gfw-lint --bless`"
                ),
            }),
            Some(&budget) if count > budget => report.findings.push(Finding {
                rule: "A1",
                file: report_file.to_string(),
                line: 1,
                message: format!(
                    "area `{name}` has {count} heap-allocation sites (`.to_vec()` / \
                     `Vec::new()` / `.clone()`) in non-test code, over its budget of \
                     {budget}; reuse scratch buffers on the hot path or raise the \
                     budget by hand in {BASELINE_FILE}"
                ),
            }),
            _ => {}
        }
    }
    Ok(())
}

/// C1: protocol constants agree across `sscrypto::method`,
/// `core::probe` and `shadowsocks::wire`.
pub fn c1_protocol_constants(ws: &Workspace, report: &mut Report) {
    let method_rel = "crates/sscrypto/src/method.rs";
    let Some(method) = ws.sources.get(method_rel) else {
        return; // nothing to cross-check in this tree
    };

    // 1. Parse the `iv_len` match arms and compare against the paper.
    let Some(arms) = parse_iv_len_arms(method) else {
        report.findings.push(Finding {
            rule: "C1",
            file: method_rel.to_string(),
            line: 1,
            message: "could not locate `fn iv_len` match arms to cross-check".to_string(),
        });
        return;
    };
    let mut declared: Vec<(&str, usize)> = Vec::new(); // (variant, declared len)
    for &(variant, want) in IV_EXPECT {
        let token = format!("Method::{variant}");
        match arms.iter().find(|(pat, _, _)| has_token(pat, &token)) {
            None => report.findings.push(Finding {
                rule: "C1",
                file: method_rel.to_string(),
                line: 1,
                message: format!("no `iv_len` arm covers `Method::{variant}`"),
            }),
            Some(&(_, got, line)) => {
                declared.push((variant, got));
                if got != want {
                    let kind = if AEAD_VARIANTS.contains(&variant) {
                        "salt"
                    } else {
                        "IV"
                    };
                    report.findings.push(Finding {
                        rule: "C1",
                        file: method_rel.to_string(),
                        line,
                        message: format!(
                            "`Method::{variant}` declares a {got}-byte {kind}; the paper's \
                             Fig 10 table requires {want} bytes"
                        ),
                    });
                }
            }
        }
    }
    let stream_ivs: Vec<usize> = dedup_sorted(
        declared
            .iter()
            .filter(|(v, _)| !AEAD_VARIANTS.contains(v))
            .map(|&(_, l)| l),
    );
    let aead_salts: Vec<usize> = dedup_sorted(
        declared
            .iter()
            .filter(|(v, _)| AEAD_VARIANTS.contains(v))
            .map(|&(_, l)| l),
    );

    // 2. The probe sweep in core::probe must cover those lengths.
    let probe_rel = "crates/core/src/probe.rs";
    if let Some(probe) = ws.sources.get(probe_rel) {
        match parse_array_const(probe, "NR1_CENTERS") {
            None => report.findings.push(Finding {
                rule: "C1",
                file: probe_rel.to_string(),
                line: 1,
                message: "could not parse `NR1_CENTERS` to cross-check probe lengths".to_string(),
            }),
            Some((centers, line)) => {
                for &iv in &stream_ivs {
                    if !centers.contains(&iv) {
                        report.findings.push(Finding {
                            rule: "C1",
                            file: probe_rel.to_string(),
                            line,
                            message: format!(
                                "probe sweep `NR1_CENTERS` misses the {iv}-byte stream IV \
                                 length declared by sscrypto::method"
                            ),
                        });
                    }
                }
                for &salt in &aead_salts {
                    let center = salt + AEAD_CENTER_OFFSET;
                    if !centers.contains(&center) {
                        report.findings.push(Finding {
                            rule: "C1",
                            file: probe_rel.to_string(),
                            line,
                            message: format!(
                                "probe sweep `NR1_CENTERS` misses {center} \
                                 (salt {salt} + {AEAD_CENTER_OFFSET}) for the AEAD salt \
                                 declared by sscrypto::method"
                            ),
                        });
                    }
                }
            }
        }
        match parse_int_const(probe, "NR2_LEN") {
            None => report.findings.push(Finding {
                rule: "C1",
                file: probe_rel.to_string(),
                line: 1,
                message: "could not parse `NR2_LEN` to cross-check probe lengths".to_string(),
            }),
            Some((nr2, line)) => {
                if let Some(&max_salt) = aead_salts.iter().max() {
                    let need = max_salt + AEAD_THRESHOLD_OFFSET;
                    if nr2 <= need {
                        report.findings.push(Finding {
                            rule: "C1",
                            file: probe_rel.to_string(),
                            line,
                            message: format!(
                                "`NR2_LEN` = {nr2} does not exceed the largest AEAD decrypt \
                                 threshold salt+{AEAD_THRESHOLD_OFFSET} = {need}; long probes \
                                 would never trigger the threshold reaction"
                            ),
                        });
                    }
                }
            }
        }
    }

    // 3. The wire framing must derive salt lengths from Method::iv_len.
    let wire_rel = "crates/shadowsocks/src/wire.rs";
    if let Some(wire) = ws.sources.get(wire_rel) {
        let iv_len_refs: usize = wire
            .lines
            .iter()
            .map(|l| count_token(&l.code, ".iv_len()"))
            .sum();
        if iv_len_refs < 2 {
            report.findings.push(Finding {
                rule: "C1",
                file: wire_rel.to_string(),
                line: 1,
                message: format!(
                    "expected both wire constructions to take their IV/salt length from \
                     `Method::iv_len()` (found {iv_len_refs} reference(s)); hardcoded \
                     lengths drift from sscrypto::method"
                ),
            });
        }
        let has_salt_guard = wire
            .lines
            .iter()
            .any(|l| l.code.contains("salt.len()") && l.code.contains(".iv_len()"));
        if !has_salt_guard {
            report.findings.push(Finding {
                rule: "C1",
                file: wire_rel.to_string(),
                line: 1,
                message: "missing the salt-length guard coupling `salt.len()` to \
                          `Method::iv_len()`"
                    .to_string(),
            });
        }
    }
}

/// H1: member Cargo.toml dependencies must all be `workspace = true`.
pub fn h1_workspace_deps(ws: &Workspace, report: &mut Report) -> Result<(), String> {
    let mut manifests: Vec<(String, std::path::PathBuf)> = Vec::new();
    let root_manifest = ws.root.join("Cargo.toml");
    if root_manifest.is_file() {
        manifests.push(("Cargo.toml".to_string(), root_manifest));
    }
    for c in &ws.crates {
        manifests.push((
            format!("crates/{}/Cargo.toml", c.name),
            c.path.join("Cargo.toml"),
        ));
    }
    for (rel, path) in manifests {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        report.files_scanned += 1;
        h1_check_manifest(&rel, &text, report);
    }
    Ok(())
}

/// Check one manifest's dependency sections.
fn h1_check_manifest(rel: &str, text: &str, report: &mut Report) {
    #[derive(PartialEq)]
    enum Section {
        Other,
        Deps,
        /// `[dependencies.foo]` subtable: must contain `workspace = true`.
        DepSubtable {
            header_line: usize,
            name: String,
            satisfied: bool,
        },
    }
    let mut section = Section::Other;
    let flush = |section: &mut Section, report: &mut Report| {
        if let Section::DepSubtable {
            header_line,
            name,
            satisfied: false,
        } = section
        {
            report.findings.push(Finding {
                rule: "H1",
                file: rel.to_string(),
                line: *header_line,
                message: format!(
                    "dependency `{name}` does not use `workspace = true`; versions \
                     belong in the root [workspace.dependencies]"
                ),
            });
        }
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let has_allow = raw.contains("gfwlint: allow(H1)");
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut section, report);
            let name = line.trim_matches(['[', ']']);
            section = if name == "workspace.dependencies"
                || name.starts_with("workspace.dependencies.")
            {
                Section::Other
            } else if is_dep_section(name) {
                Section::Deps
            } else if let Some((table, dep)) = name.rsplit_once('.') {
                if is_dep_section(table) {
                    Section::DepSubtable {
                        header_line: idx + 1,
                        name: dep.to_string(),
                        satisfied: false,
                    }
                } else {
                    Section::Other
                }
            } else {
                Section::Other
            };
            continue;
        }
        match &mut section {
            Section::Other => {}
            Section::DepSubtable { satisfied, .. } => {
                if line.replace(' ', "") == "workspace=true" {
                    *satisfied = true;
                }
            }
            Section::Deps => {
                let Some((key, _value)) = line.split_once('=') else {
                    continue;
                };
                let key = key.trim();
                let ok = key.ends_with(".workspace") && line.replace(' ', "").ends_with("=true")
                    || line.contains("workspace = true");
                if !ok {
                    let dep = key.split('.').next().unwrap_or(key);
                    if has_allow {
                        report.allows.push(AllowUse {
                            rule: "H1".to_string(),
                            file: rel.to_string(),
                            line: idx + 1,
                        });
                        continue;
                    }
                    report.findings.push(Finding {
                        rule: "H1",
                        file: rel.to_string(),
                        line: idx + 1,
                        message: format!(
                            "dependency `{dep}` does not use `workspace = true`; versions \
                             belong in the root [workspace.dependencies]"
                        ),
                    });
                }
            }
        }
    }
    flush(&mut section, report);
}

fn is_dep_section(name: &str) -> bool {
    matches!(
        name,
        "dependencies" | "dev-dependencies" | "build-dependencies"
    ) || (name.starts_with("target.") && name.ends_with("dependencies"))
}

/// Count non-overlapping occurrences of `token` in `code`.
pub fn count_token(code: &str, token: &str) -> usize {
    let mut count = 0;
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        count += 1;
        start += pos + token.len();
    }
    count
}

fn dedup_sorted(iter: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = iter.collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Extract the `(pattern, value, line)` arms of the `fn iv_len` match.
fn parse_iv_len_arms(file: &SourceFile) -> Option<Vec<(String, usize, usize)>> {
    let start = file
        .lines
        .iter()
        .position(|l| l.code.contains("fn iv_len"))?;
    // Capture the body of the function by brace counting.
    let mut depth = 0i32;
    let mut opened = false;
    let mut body: Vec<(usize, String)> = Vec::new(); // (line idx, code)
    'outer: for (idx, line) in file.lines.iter().enumerate().skip(start) {
        let mut kept = String::new();
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        body.push((idx, kept));
                        break 'outer;
                    }
                }
                _ => {
                    if opened {
                        kept.push(c);
                    }
                }
            }
        }
        if opened {
            body.push((idx, kept));
        }
    }
    if body.is_empty() {
        return None;
    }
    let mut arms = Vec::new();
    let mut pattern = String::new();
    for (idx, code) in body {
        if let Some((before, after)) = code.split_once("=>") {
            pattern.push(' ');
            pattern.push_str(before);
            let digits: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(value) = digits.parse::<usize>() {
                arms.push((std::mem::take(&mut pattern), value, idx + 1));
            } else {
                pattern.clear();
            }
        } else {
            pattern.push(' ');
            pattern.push_str(&code);
        }
    }
    Some(arms)
}

/// Parse `NAME ... = [a, b, c]`, which may span lines. Returns the
/// values and the 1-based line of the `NAME` token.
fn parse_array_const(file: &SourceFile, name: &str) -> Option<(Vec<usize>, usize)> {
    let start = file.lines.iter().position(|l| has_token(&l.code, name))?;
    // Accumulate lines until a `]` shows up after the `=`, so the
    // `[usize; N]` type annotation is not mistaken for the initializer.
    let mut text = String::new();
    for line in &file.lines[start..] {
        text.push_str(&line.code);
        text.push(' ');
        if let Some(eq) = text.find('=') {
            if text[eq..].contains(']') {
                break;
            }
        }
    }
    let eq = text.find('=')?;
    let open = text[eq..].find('[')? + eq;
    let close = text[open..].find(']')? + open;
    let mut values = Vec::new();
    for part in text[open + 1..close].split(',') {
        let digits: String = part
            .trim()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if !digits.is_empty() {
            values.push(digits.parse().ok()?);
        }
    }
    Some((values, start + 1))
}

/// Parse `NAME ... = <int>`. Returns the value and 1-based line.
fn parse_int_const(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let idx = file
        .lines
        .iter()
        .position(|l| has_token(&l.code, name) && l.code.contains('='))?;
    let code = &file.lines[idx].code;
    let after = &code[code.find('=')? + 1..];
    let digits: String = after
        .trim()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    Some((digits.parse().ok()?, idx + 1))
}

// ---------------------------------------------------------------------------
// U1: unsafe audit.

/// Count non-test `unsafe` sites (blocks, fns, impls) per crate. Crates
/// with zero sites are omitted — the `[unsafe-budget]` table only lists
/// crates that actually carry unsafe code.
pub fn unsafe_counts(ws: &Workspace) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for c in &ws.crates {
        let prefix = format!("crates/{}/src/", c.name);
        let count: usize = ws
            .sources_under(&prefix)
            .map(|f| f.items.unsafe_sites.iter().filter(|u| !u.in_test).count())
            .sum();
        if count > 0 {
            counts.insert(c.name.clone(), count);
        }
    }
    counts
}

/// Does the unsafe site at 1-based `line` have an adjacent `// SAFETY:`
/// comment — trailing on the same line, or on the contiguous run of
/// comment-only lines directly above?
fn has_safety_comment(file: &SourceFile, line: usize) -> bool {
    let idx = line - 1;
    if file
        .lines
        .get(idx)
        .is_some_and(|l| l.comment.contains("SAFETY:"))
    {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        if !l.code.trim().is_empty() {
            // An attribute line between the comment and the site is
            // fine; real code is not.
            if l.code.trim_start().starts_with("#[") {
                continue;
            }
            return false;
        }
        if l.comment.contains("SAFETY:") {
            return true;
        }
        if l.comment.trim().is_empty() && l.raw.trim().is_empty() {
            return false; // blank line breaks adjacency
        }
    }
    false
}

/// U1: every non-test `unsafe` site needs a `// SAFETY:` comment, and
/// per-crate site counts stay within `[unsafe-budget]` (ratchet-down).
///
/// This exists *ahead* of the ROADMAP-4 SIMD work on purpose: the first
/// `unsafe` block to land in `sscrypto` arrives into a workspace where
/// the audit discipline is already enforced, not retrofitted.
pub fn u1_unsafe_audit(ws: &Workspace, report: &mut Report) -> Result<(), String> {
    let counts = unsafe_counts(ws);
    report.unsafe_counts = counts.clone();

    // Per-site SAFETY comments.
    for c in &ws.crates {
        let prefix = format!("crates/{}/src/", c.name);
        let rels: Vec<String> = ws.sources_under(&prefix).map(|f| f.rel.clone()).collect();
        for rel in rels {
            let file = &ws.sources[&rel];
            let missing: Vec<(usize, UnsafeKind)> = file
                .items
                .unsafe_sites
                .iter()
                .filter(|u| !u.in_test && !has_safety_comment(file, u.line))
                .map(|u| (u.line, u.kind))
                .collect();
            for (line, kind) in missing {
                if allowed(report, "U1", &ws.sources[&rel], line - 1) {
                    continue;
                }
                let what = match kind {
                    UnsafeKind::Block => "unsafe block",
                    UnsafeKind::Fn => "unsafe fn",
                    UnsafeKind::Impl => "unsafe impl",
                };
                report.findings.push(Finding {
                    rule: "U1",
                    file: rel.clone(),
                    line,
                    message: format!(
                        "{what} without an adjacent `// SAFETY:` comment; state the \
                         invariant that makes this sound (same line or the comment \
                         block directly above)"
                    ),
                });
            }
        }
    }

    // Per-crate budgets.
    if counts.is_empty() {
        return Ok(());
    }
    let Some(baseline) = Baseline::load(&ws.root)? else {
        return Ok(()); // P1 already reports the missing baseline file
    };
    for (name, &count) in &counts {
        match baseline.unsafe_budgets.get(name) {
            None => report.findings.push(Finding {
                rule: "U1",
                file: BASELINE_FILE.to_string(),
                line: 0,
                message: format!(
                    "crate `{name}` has {count} unsafe site(s) but no [unsafe-budget] \
                     entry; add one by hand, then `gfw-lint --bless`"
                ),
            }),
            Some(&budget) if count > budget => report.findings.push(Finding {
                rule: "U1",
                file: format!("crates/{name}/src/lib.rs"),
                line: 1,
                message: format!(
                    "crate `{name}` has {count} unsafe site(s) in non-test code, over \
                     its budget of {budget}; remove some or raise the budget by hand \
                     in {BASELINE_FILE}"
                ),
            }),
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// W1: wrapping-arithmetic discipline on the hot path.

/// The designated hot-path modules: release builds wrap silently here,
/// and these run millions of iterations per simulated experiment.
pub const W1_HOT_PATHS: &[&str] = &[
    "crates/sscrypto/src/",
    "crates/analysis/src/entropy.rs",
    "crates/analysis/src/simd.rs",
    "crates/netsim/src/eventq.rs",
    "crates/netsim/src/flow.rs",
    "crates/core/src/passive.rs",
    "crates/shadowsocks/src/wire.rs",
    "crates/trafficgen/src/profiles.rs",
];

/// Is `ty` text a float type?
fn is_float_type(ty: &str) -> bool {
    let t = ty.trim().trim_start_matches('&').trim();
    t.starts_with("f32") || t.starts_with("f64")
}

/// W1: in hot-path non-test functions, bare `+`/`*`/`<<` (and their
/// `=`-compounds) where an operand is an integral-typed parameter or
/// `self` field must be spelled `wrapping_*` / `checked_*` /
/// `saturating_*` or carry an allow.
///
/// The operand filter is the rule's precision lever: arithmetic on
/// locals, constants and floats is never flagged — only integer state
/// that *crosses the function boundary* (params, fields), which is
/// exactly the state that accumulates across calls and overflows after
/// the millionth packet instead of in the unit test.
pub fn w1_wrapping_audit(ws: &Workspace, report: &mut Report) {
    let mut rels: Vec<String> = Vec::new();
    for prefix in W1_HOT_PATHS {
        for f in ws.sources_under(prefix) {
            if !rels.contains(&f.rel) {
                rels.push(f.rel.clone());
            }
        }
    }
    rels.sort();
    for rel in rels {
        let file = &ws.sources[&rel];
        let hits = w1_scan_file(file);
        for (line, op, operand, ty) in hits {
            if allowed(report, "W1", &ws.sources[&rel], line - 1) {
                continue;
            }
            let alt = match op {
                "+" | "+=" => "wrapping_add / checked_add / saturating_add",
                "*" | "*=" => "wrapping_mul / checked_mul / saturating_mul",
                _ => "wrapping_shl / checked_shl",
            };
            report.findings.push(Finding {
                rule: "W1",
                file: rel.clone(),
                line,
                message: format!(
                    "bare `{op}` on hot-path integer state `{operand}` ({ty}) crossing \
                     a function boundary; in release builds this wraps silently — say \
                     what you mean ({alt}) or justify with `// gfwlint: allow(W1)`"
                ),
            });
        }
    }
}

/// Scan one file's non-test fn bodies for W1 hits:
/// `(line, op, operand, operand type)`.
fn w1_scan_file(file: &SourceFile) -> Vec<(usize, &'static str, String, String)> {
    let mut hits = Vec::new();
    let src = &file.text;
    // Significant token indices across the file; per-fn filtering below.
    let sig: Vec<usize> = (0..file.toks.len())
        .filter(|&i| !file.toks[i].is_trivia())
        .collect();
    for f in &file.items.fns {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        let int_params: BTreeMap<&str, &str> = f
            .params
            .iter()
            .filter(|(_, ty)| is_int_type(ty))
            .map(|(n, ty)| (n.as_str(), ty.as_str()))
            .collect();
        let float_params: Vec<&str> = f
            .params
            .iter()
            .filter(|(_, ty)| is_float_type(ty))
            .map(|(n, _)| n.as_str())
            .collect();
        // Positions (into `sig`) of this fn's body tokens.
        let body: Vec<usize> = sig
            .iter()
            .enumerate()
            .filter(|&(_, &ti)| f.body.contains(&ti))
            .map(|(si, _)| si)
            .collect();
        let (Some(&first), Some(&last)) = (body.first(), body.last()) else {
            continue;
        };
        let mut si = first;
        while si <= last {
            let ti = sig[si];
            let tok = &file.toks[ti];
            let (op, width): (&'static str, usize) = match tok.kind {
                TokKind::Punct('+') => {
                    if adjacent(file, &sig, si, '=') {
                        ("+=", 2)
                    } else {
                        ("+", 1)
                    }
                }
                TokKind::Punct('*') => {
                    // Binary only: previous significant token must be a
                    // value-ending token, not `(`/`,`/`=`/… (deref) or
                    // `*const`/`*mut` (raw pointer types).
                    let prev_ok = si > 0
                        && matches!(
                            file.toks[sig[si - 1]].kind,
                            TokKind::Ident
                                | TokKind::Int
                                | TokKind::Float
                                | TokKind::Punct(')')
                                | TokKind::Punct(']')
                        );
                    if !prev_ok {
                        si += 1;
                        continue;
                    }
                    if adjacent(file, &sig, si, '=') {
                        ("*=", 2)
                    } else {
                        ("*", 1)
                    }
                }
                TokKind::Punct('<') => {
                    // `<<` = two adjacent `<`; `<<=` when a `=` follows.
                    if !adjacent(file, &sig, si, '<') {
                        si += 1;
                        continue;
                    }
                    if adjacent(file, &sig, si + 1, '=') {
                        ("<<=", 3)
                    } else {
                        ("<<", 2)
                    }
                }
                _ => {
                    si += 1;
                    continue;
                }
            };

            // Resolve operands. For compounds only the LHS is state.
            let left = operand_left(file, src, &sig, si);
            let right = if op.ends_with('=') {
                None
            } else {
                operand_right(file, src, &sig, si + width - 1)
            };
            let mut float_involved = matches!(right, Some(Operand::FloatLit));
            let mut flagged: Option<(String, String)> = None;
            for opnd in [&left, &right] {
                match opnd {
                    Some(Operand::Chain(chain)) => {
                        if let Some(base) = chain.strip_prefix("self.") {
                            if let Some(ty) = file.items.int_fields.get(base) {
                                flagged = Some((chain.clone(), ty.clone()));
                            }
                        } else if let Some(ty) = int_params.get(chain.as_str()) {
                            flagged = Some((chain.clone(), ty.to_string()));
                        } else if float_params.contains(&chain.as_str()) {
                            float_involved = true;
                        }
                    }
                    Some(Operand::FloatLit) => float_involved = true,
                    _ => {}
                }
            }
            if !float_involved {
                if let Some((operand, ty)) = flagged {
                    hits.push((tok.line, op, operand, ty));
                }
            }
            si += width.max(1);
        }
    }
    hits.sort();
    hits.dedup();
    hits
}

/// Is the significant token after `si` the punct `c`, with no gap in
/// the source (so `+ =` never reads as `+=`)?
fn adjacent(file: &SourceFile, sig: &[usize], si: usize, c: char) -> bool {
    let (Some(&a), Some(&b)) = (sig.get(si), sig.get(si + 1)) else {
        return false;
    };
    file.toks[b].kind == TokKind::Punct(c) && file.toks[a].end == file.toks[b].start
}

enum Operand {
    /// `name` or `self.field` (the resolvable shapes).
    Chain(String),
    /// A float literal: the whole expression is float arithmetic.
    FloatLit,
    /// Anything else (unresolved).
    Other,
}

/// Resolve the operand ending just before the op at `sig[si]`.
fn operand_left(file: &SourceFile, src: &str, sig: &[usize], si: usize) -> Option<Operand> {
    if si == 0 {
        return None;
    }
    let t = &file.toks[sig[si - 1]];
    match t.kind {
        TokKind::Float => Some(Operand::FloatLit),
        TokKind::Int => Some(Operand::Other),
        TokKind::Ident => {
            let name = t.text(src);
            // `self.field` / `x.y` chains: look two tokens further back.
            if si >= 3
                && file.toks[sig[si - 2]].kind == TokKind::Punct('.')
                && file.toks[sig[si - 3]].kind == TokKind::Ident
            {
                let base = file.toks[sig[si - 3]].text(src);
                // Only single-step chains resolve; deeper ones are Other.
                let prev_prev_dot = si >= 4 && file.toks[sig[si - 4]].kind == TokKind::Punct('.');
                if prev_prev_dot {
                    return Some(Operand::Other);
                }
                return Some(Operand::Chain(format!("{base}.{name}")));
            }
            // A bare ident, not itself a field of something else.
            Some(Operand::Chain(name.to_string()))
        }
        _ => Some(Operand::Other),
    }
}

/// Resolve the operand starting just after the op at `sig[si]`.
fn operand_right(file: &SourceFile, src: &str, sig: &[usize], si: usize) -> Option<Operand> {
    let t = &file.toks[*sig.get(si + 1)?];
    match t.kind {
        TokKind::Float => Some(Operand::FloatLit),
        TokKind::Int => Some(Operand::Other),
        TokKind::Ident => {
            let name = t.text(src);
            if name == "self" {
                // `self.field` on the right.
                if let (Some(&d), Some(&f)) = (sig.get(si + 2), sig.get(si + 3)) {
                    if file.toks[d].kind == TokKind::Punct('.')
                        && file.toks[f].kind == TokKind::Ident
                    {
                        return Some(Operand::Chain(format!("self.{}", file.toks[f].text(src))));
                    }
                }
                return Some(Operand::Other);
            }
            // `name.method()` chains on the right stay unresolved
            // unless it's a plain ident followed by a non-`.` token.
            if sig
                .get(si + 2)
                .is_some_and(|&d| file.toks[d].kind == TokKind::Punct('.'))
            {
                return Some(Operand::Other);
            }
            Some(Operand::Chain(name.to_string()))
        }
        _ => Some(Operand::Other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_token_counts() {
        assert_eq!(count_token("a.unwrap().unwrap()", ".unwrap()"), 2);
        assert_eq!(count_token("no panics here", "panic!"), 0);
    }

    #[test]
    fn iv_len_arm_parser() {
        let src = "impl Method {\n    pub fn iv_len(&self) -> usize {\n        match self {\n            Method::ChaCha20 => 8,\n            Method::A\n            | Method::B => 16,\n            Method::ChaCha20Ietf => 12,\n        }\n    }\n}\n";
        let f = SourceFile::scan("m.rs", src);
        let arms = parse_iv_len_arms(&f).unwrap();
        assert_eq!(arms.len(), 3);
        assert!(has_token(&arms[0].0, "Method::ChaCha20"));
        assert_eq!(arms[0].1, 8);
        assert_eq!(arms[0].2, 4);
        assert!(has_token(&arms[1].0, "Method::B"));
        assert_eq!(arms[1].1, 16);
        assert_eq!(arms[2].1, 12);
    }

    #[test]
    fn array_and_int_consts() {
        let src = "/// doc\npub const NR1_CENTERS: [usize; 3] = [8,\n    12, 16];\npub const NR2_LEN: usize = 221;\n";
        let f = SourceFile::scan("p.rs", src);
        let (vals, line) = parse_array_const(&f, "NR1_CENTERS").unwrap();
        assert_eq!(vals, vec![8, 12, 16]);
        assert_eq!(line, 2);
        let (v, line) = parse_int_const(&f, "NR2_LEN").unwrap();
        assert_eq!(v, 221);
        assert_eq!(line, 4);
    }

    #[test]
    fn h1_manifest_check() {
        let mut report = Report::default();
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\ngood.workspace = true\nalso = { workspace = true, features = [\"y\"] }\nbad = \"1.0\"\npathdep = { path = \"../other\" }\n\n[dev-dependencies]\nok.workspace = true\n";
        h1_check_manifest("crates/x/Cargo.toml", toml, &mut report);
        let deps: Vec<&str> = report
            .findings
            .iter()
            .map(|f| {
                assert_eq!(f.rule, "H1");
                f.message.split('`').nth(1).unwrap()
            })
            .collect();
        assert_eq!(deps, vec!["bad", "pathdep"]);
        assert_eq!(report.findings[0].line, 7);
    }

    #[test]
    fn h1_subtable_and_allow() {
        let mut report = Report::default();
        let toml = "[dependencies.foo]\nversion = \"1\"\n\n[dependencies]\nlegacy = \"0.1\" # gfwlint: allow(H1)\n";
        h1_check_manifest("Cargo.toml", toml, &mut report);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("`foo`"));
        assert_eq!(report.allows.len(), 1);
        assert_eq!(report.allows[0].line, 5);
    }

    #[test]
    fn h1_workspace_dependencies_exempt() {
        let mut report = Report::default();
        let toml = "[workspace.dependencies]\nrand = { path = \"vendor/rand\" }\nserde = { path = \"vendor/serde\", features = [\"derive\"] }\n";
        h1_check_manifest("Cargo.toml", toml, &mut report);
        assert!(report.findings.is_empty());
    }
}
