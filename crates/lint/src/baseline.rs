//! The checked-in panic-budget baseline (`lint-baseline.toml`).
//!
//! The file is a single `[panic-budget]` table mapping crate directory
//! names to the number of explicit panic sites (`unwrap()` / `expect(` /
//! `panic!` / `unreachable!`) allowed in that crate's non-test code.
//! Rule P1 fails when a crate exceeds its budget; `--bless` regenerates
//! the file and only ever ratchets the numbers *down* — raising a
//! budget is a deliberate act done by editing the file by hand.
//!
//! The parser is a deliberately tiny TOML subset (one table, `key =
//! integer` entries, `#` comments) so the linter stays dependency-free.

use std::collections::BTreeMap;
use std::path::Path;

/// File name of the baseline, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// Parsed baseline: crate directory name → allowed panic-site count.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Budgets per crate directory name.
    pub budgets: BTreeMap<String, usize>,
}

impl Baseline {
    /// Load the baseline from `root`, if present. Returns `Ok(None)`
    /// when the file does not exist.
    pub fn load(root: &Path) -> Result<Option<Baseline>, String> {
        let path = root.join(BASELINE_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Some(Baseline::parse(&text)?))
    }

    /// Parse baseline text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut budgets = BTreeMap::new();
        let mut in_table = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_table = line == "[panic-budget]";
                continue;
            }
            if !in_table {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "{BASELINE_FILE}:{}: expected `crate = count`",
                    lineno + 1
                ));
            };
            let count: usize = value.trim().parse().map_err(|_| {
                format!(
                    "{BASELINE_FILE}:{}: `{}` is not a count",
                    lineno + 1,
                    value.trim()
                )
            })?;
            budgets.insert(key.trim().to_string(), count);
        }
        Ok(Baseline { budgets })
    }

    /// Serialize to the canonical file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-site budget per crate (gfw-lint rule P1).\n\
             # Counts cover `unwrap()` / `expect(` / `panic!` / `unreachable!` in\n\
             # non-test code. Regenerate with `cargo run -p gfw-lint -- --bless`;\n\
             # blessing only ratchets budgets DOWN. Raising one is a hand edit.\n\
             \n[panic-budget]\n",
        );
        for (name, count) in &self.budgets {
            out.push_str(&format!("{name} = {count}\n"));
        }
        out
    }

    /// Write the baseline file under `root`.
    pub fn store(&self, root: &Path) -> Result<(), String> {
        let path = root.join(BASELINE_FILE);
        std::fs::write(&path, self.render()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let b = Baseline::parse("# hi\n[panic-budget]\ncore = 3 # note\nnetsim = 0\n").unwrap();
        assert_eq!(b.budgets.get("core"), Some(&3));
        assert_eq!(b.budgets.get("netsim"), Some(&0));
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again.budgets, b.budgets);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("[panic-budget]\ncore three\n").is_err());
        assert!(Baseline::parse("[panic-budget]\ncore = many\n").is_err());
    }

    #[test]
    fn other_tables_ignored() {
        let b = Baseline::parse("[other]\nx = 9\n[panic-budget]\ncore = 1\n").unwrap();
        assert_eq!(b.budgets.len(), 1);
    }
}
