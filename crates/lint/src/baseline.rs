//! The checked-in budget baseline (`lint-baseline.toml`).
//!
//! The file holds three tables. `[panic-budget]` maps crate directory
//! names to the number of explicit panic sites (`unwrap()` / `expect(` /
//! `panic!` / `unreachable!`) allowed in that crate's non-test code
//! (rule P1). `[alloc-budget]` maps crypto hot-path areas to the number
//! of heap-allocation sites (`.to_vec()` / `Vec::new()` / `.clone()`)
//! allowed there (rule A1). `[unsafe-budget]` maps crate names to the
//! number of non-test `unsafe` sites allowed (rule U1); unlisted crates
//! get zero. Each rule fails when an area exceeds its
//! budget; `--bless` regenerates the file and only ever ratchets the
//! numbers *down* — raising a budget is a deliberate act done by
//! editing the file by hand.
//!
//! The parser is a deliberately tiny TOML subset (named tables, `key =
//! integer` entries, `#` comments) so the linter stays dependency-free.

use std::collections::BTreeMap;
use std::path::Path;

/// File name of the baseline, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// Parsed baseline: budget tables keyed by crate/area name.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// P1 budgets per crate directory name.
    pub budgets: BTreeMap<String, usize>,
    /// A1 budgets per hot-path area name.
    pub alloc_budgets: BTreeMap<String, usize>,
    /// U1 budgets per crate directory name (unsafe sites in non-test
    /// code). Crates not listed have a budget of zero.
    pub unsafe_budgets: BTreeMap<String, usize>,
}

impl Baseline {
    /// Load the baseline from `root`, if present. Returns `Ok(None)`
    /// when the file does not exist.
    pub fn load(root: &Path) -> Result<Option<Baseline>, String> {
        let path = root.join(BASELINE_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Some(Baseline::parse(&text)?))
    }

    /// Parse baseline text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        #[derive(PartialEq)]
        enum Table {
            None,
            Panic,
            Alloc,
            Unsafe,
        }
        let mut out = Baseline::default();
        let mut table = Table::None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                table = match line {
                    "[panic-budget]" => Table::Panic,
                    "[alloc-budget]" => Table::Alloc,
                    "[unsafe-budget]" => Table::Unsafe,
                    _ => Table::None,
                };
                continue;
            }
            if table == Table::None {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "{BASELINE_FILE}:{}: expected `name = count`",
                    lineno + 1
                ));
            };
            let count: usize = value.trim().parse().map_err(|_| {
                format!(
                    "{BASELINE_FILE}:{}: `{}` is not a count",
                    lineno + 1,
                    value.trim()
                )
            })?;
            let dest = match table {
                Table::Panic => &mut out.budgets,
                Table::Alloc => &mut out.alloc_budgets,
                Table::Unsafe => &mut out.unsafe_budgets,
                Table::None => unreachable!(),
            };
            dest.insert(key.trim().to_string(), count);
        }
        Ok(out)
    }

    /// Serialize to the canonical file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-site budget per crate (gfw-lint rule P1).\n\
             # Counts cover `unwrap()` / `expect(` / `panic!` / `unreachable!` in\n\
             # non-test code. Regenerate with `cargo run -p gfw-lint -- --bless`;\n\
             # blessing only ratchets budgets DOWN. Raising one is a hand edit.\n\
             \n[panic-budget]\n",
        );
        for (name, count) in &self.budgets {
            out.push_str(&format!("{name} = {count}\n"));
        }
        if !self.alloc_budgets.is_empty() {
            out.push_str(
                "\n# Heap-allocation budget per crypto hot-path area (rule A1).\n\
                 # Counts cover `.to_vec()` / `Vec::new()` / `.clone()` in non-test\n\
                 # code. Same ratchet: blessing only goes down.\n\
                 \n[alloc-budget]\n",
            );
            for (name, count) in &self.alloc_budgets {
                out.push_str(&format!("{name} = {count}\n"));
            }
        }
        out.push_str(
            "\n# Unsafe-site budget per crate (rule U1): `unsafe` blocks / fns /\n\
             # impls in non-test code, each requiring an adjacent `// SAFETY:`\n\
             # comment. Crates not listed have a budget of zero. New entries are\n\
             # a hand edit (then `--bless`); blessing only ratchets down.\n\
             \n[unsafe-budget]\n",
        );
        for (name, count) in &self.unsafe_budgets {
            out.push_str(&format!("{name} = {count}\n"));
        }
        out
    }

    /// Write the baseline file under `root`.
    pub fn store(&self, root: &Path) -> Result<(), String> {
        let path = root.join(BASELINE_FILE);
        std::fs::write(&path, self.render()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let b = Baseline::parse("# hi\n[panic-budget]\ncore = 3 # note\nnetsim = 0\n").unwrap();
        assert_eq!(b.budgets.get("core"), Some(&3));
        assert_eq!(b.budgets.get("netsim"), Some(&0));
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again.budgets, b.budgets);
    }

    #[test]
    fn parse_roundtrip_with_alloc_table() {
        let b = Baseline::parse(
            "[panic-budget]\ncore = 3\n\n[alloc-budget]\nsscrypto = 7\nshadowsocks-wire = 2\n",
        )
        .unwrap();
        assert_eq!(b.budgets.get("core"), Some(&3));
        assert_eq!(b.alloc_budgets.get("sscrypto"), Some(&7));
        assert_eq!(b.alloc_budgets.get("shadowsocks-wire"), Some(&2));
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again.budgets, b.budgets);
        assert_eq!(again.alloc_budgets, b.alloc_budgets);
    }

    #[test]
    fn parse_roundtrip_with_unsafe_table() {
        let b = Baseline::parse(
            "[panic-budget]\ncore = 3\n\n[unsafe-budget]\nsscrypto = 2\nnetsim = 0\n",
        )
        .unwrap();
        assert_eq!(b.unsafe_budgets.get("sscrypto"), Some(&2));
        assert_eq!(b.unsafe_budgets.get("netsim"), Some(&0));
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again.unsafe_budgets, b.unsafe_budgets);
        // The rendered file always carries the (possibly empty) table
        // header so the section stays documented.
        assert!(b.render().contains("[unsafe-budget]"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("[panic-budget]\ncore three\n").is_err());
        assert!(Baseline::parse("[panic-budget]\ncore = many\n").is_err());
        assert!(Baseline::parse("[alloc-budget]\nsscrypto = lots\n").is_err());
    }

    #[test]
    fn other_tables_ignored() {
        let b = Baseline::parse("[other]\nx = 9\n[panic-budget]\ncore = 1\n").unwrap();
        assert_eq!(b.budgets.len(), 1);
        assert!(b.alloc_budgets.is_empty());
    }
}
