//! Table 3: counts of unique prober IP addresses per autonomous system.
//!
//! Paper shape: AS4837 (6,262) and AS4134 (5,188) dominate; a long tail
//! of eleven more ASes accounts for the remaining ~850.

use crate::report::{Comparison, Table};
use crate::runs::{shadowsocks_run, SsRunConfig};
use crate::Scale;
use gfw_core::probe::ProbeRecord;
use std::collections::{HashMap, HashSet};

/// Result: unique prober addresses per AS.
pub struct Table3 {
    /// ASN → unique address count.
    pub per_as: HashMap<u32, usize>,
    /// Unique addresses total.
    pub unique_total: usize,
}

impl Table3 {
    /// Comparison with the paper's proportions.
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        let count = |asn: u32| self.per_as.get(&asn).copied().unwrap_or(0);
        let total = self.unique_total.max(1) as f64;
        let frac4837 = count(4837) as f64 / total;
        let frac4134 = count(4134) as f64 / total;
        c.add(
            "AS4837 share",
            format!("{:.0}%", 100.0 * 6262.0 / 12300.0),
            format!("{:.0}%", frac4837 * 100.0),
            (frac4837 - 0.509).abs() < 0.12,
        );
        c.add(
            "AS4134 share",
            format!("{:.0}%", 100.0 * 5188.0 / 12300.0),
            format!("{:.0}%", frac4134 * 100.0),
            (frac4134 - 0.422).abs() < 0.12,
        );
        c.add(
            "two backbones dominate",
            "93% combined (AS4837 + AS4134)",
            format!("{:.0}%", (frac4837 + frac4134) * 100.0),
            frac4837 + frac4134 > 0.85 && frac4837 > 0.28 && frac4134 > 0.28,
        );
        c
    }
}

impl std::fmt::Display for Table3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 3 — unique prober addresses per AS\n")?;
        let mut rows: Vec<(u32, usize)> = self.per_as.iter().map(|(&a, &c)| (a, c)).collect();
        rows.sort_by_key(|&(asn, c)| (std::cmp::Reverse(c), asn));
        let mut t = Table::new(&["AS", "measured unique IPs", "paper unique IPs"]);
        for (asn, count) in rows {
            let paper = analysis::asn::AS_TABLE
                .iter()
                .find(|e| e.asn == asn)
                .map(|e| e.paper_count.to_string())
                .unwrap_or_else(|| "-".into());
            t.row(&[format!("AS{asn}"), count.to_string(), paper]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Analyze probe records.
pub fn analyze(probes: &[ProbeRecord]) -> Table3 {
    let unique: HashSet<_> = probes.iter().map(|p| p.src).collect();
    let mut per_as: HashMap<u32, usize> = HashMap::new();
    for ip in &unique {
        if let Some(e) = analysis::asn::lookup(*ip) {
            *per_as.entry(e.asn).or_insert(0) += 1;
        }
    }
    Table3 {
        per_as,
        unique_total: unique.len(),
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Table3 {
    let cfg = SsRunConfig {
        connections: scale.pick(2_500, 30_000),
        fleet_pool: scale.pick(2_000, 16_000),
        nr_min_gap: netsim::time::Duration::from_mins(scale.pick(4, 18)),
        seed,
        ..Default::default()
    };
    analyze(&shadowsocks_run(&cfg).probes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbone_dominance_holds() {
        let t = run(Scale::Quick, 6);
        assert!(t.unique_total > 20);
        assert!(t.comparison().all_hold(), "\n{t}");
    }
}
