//! Ablation studies on the GFW model's design choices (not in the
//! paper; extensions this reproduction adds).
//!
//! 1. **Passive-detector features**: length-only, entropy-only,
//!    combined, and combined-plus-protocol-whitelist detectors, scored
//!    on Shadowsocks first packets vs plaintext (HTTP) and TLS
//!    controls. The honest finding: the *statistical* features separate
//!    Shadowsocks from low-entropy plaintext but **not** from TLS —
//!    a ClientHello is in-band and high-entropy too. Only the protocol
//!    whitelist zeroes the TLS false-positive rate, which is why the
//!    GFW model (and, we argue, the real GFW) must carry one. This
//!    grounds the DESIGN.md §6b exemption choice in data.
//! 2. **Staged probing cost**: probes spent per server by a staged
//!    scheduler vs one that fires all seven types unconditionally —
//!    quantifying the resource argument of §5.2.2 ("a design like this
//!    also allows the GFW to use resources in a more balanced way").

use crate::report::Table;
use crate::Scale;
use gfw_core::passive::{PassiveConfig, PassiveDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use sscrypto::method::Method;

/// Which features a detector variant uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Length bands only (entropy factor forced to 1).
    LengthOnly,
    /// Entropy only (all in-range lengths weighted equally).
    EntropyOnly,
    /// Length and entropy, no protocol whitelist.
    Combined,
    /// The full model: length + entropy + plaintext-protocol whitelist.
    CombinedWhitelist,
}

/// Scores for one variant.
#[derive(Clone, Copy, Debug)]
pub struct VariantScore {
    /// Which variant.
    pub variant: Variant,
    /// Mean store probability on Shadowsocks first packets.
    pub tpr_weight: f64,
    /// Mean store probability on TLS ClientHellos (whitelist disabled,
    /// isolating the statistical features).
    pub fpr_tls: f64,
    /// Mean store probability on HTTP requests (whitelist disabled).
    pub fpr_http: f64,
}

impl VariantScore {
    /// Selectivity: how much more likely a Shadowsocks packet is to be
    /// stored than the worse of the two controls.
    pub fn selectivity(&self) -> f64 {
        let worst = self.fpr_tls.max(self.fpr_http).max(1e-12);
        self.tpr_weight / worst
    }
}

fn detector(variant: Variant) -> PassiveDetector {
    let mut cfg = PassiveConfig {
        exempt_plaintext: variant == Variant::CombinedWhitelist,
        ..PassiveConfig::default()
    };
    if variant == Variant::EntropyOnly {
        for band in &mut cfg.bands {
            band.w_rem9 = 10.0;
            band.w_rem2 = 10.0;
            band.w_other = 10.0;
        }
    }
    PassiveDetector::new(cfg)
}

fn probability(det: &PassiveDetector, variant: Variant, payload: &[u8]) -> f64 {
    match variant {
        Variant::LengthOnly => {
            let w = det.length_weight(payload.len());
            (det.config.scale * w).clamp(0.0, 1.0)
        }
        _ => det.store_probability(payload),
    }
}

/// The feature-ablation study.
pub struct Ablation {
    /// Scores per variant.
    pub scores: Vec<VariantScore>,
    /// Staged probing: mean probes per *non-Shadowsocks* server until
    /// the scheduler gives up, staged vs unstaged.
    pub staged_probes_nonss: f64,
    /// Unstaged equivalent (all seven kinds fired for every stored
    /// payload).
    pub unstaged_probes_nonss: f64,
}

impl std::fmt::Display for Ablation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation 1 — passive-detector features")?;
        writeln!(
            f,
            "(finding: statistics separate Shadowsocks from plaintext but NOT from\n\
             TLS; the protocol whitelist is load-bearing)\n"
        )?;
        let mut t = Table::new(&[
            "variant",
            "mean p(store | shadowsocks)",
            "mean p(store | TLS)",
            "mean p(store | HTTP)",
            "selectivity",
        ]);
        for s in &self.scores {
            t.row(&[
                format!("{:?}", s.variant),
                format!("{:.5}", s.tpr_weight),
                format!("{:.5}", s.fpr_tls),
                format!("{:.5}", s.fpr_http),
                format!("{:.1}×", s.selectivity()),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "\nAblation 2 — staged vs unstaged probing cost (per non-Shadowsocks server):\n\
             \x20 staged: {:.1} probes   unstaged: {:.1} probes ({:.1}× savings)",
            self.staged_probes_nonss,
            self.unstaged_probes_nonss,
            self.unstaged_probes_nonss / self.staged_probes_nonss.max(1e-9)
        )
    }
}

/// Run the study.
pub fn run(scale: Scale, seed: u64) -> Ablation {
    let n = scale.pick(400, 4_000);
    let mut rng = StdRng::seed_from_u64(seed);

    // Workloads.
    let ss_config = ServerConfig::new(Method::ChaCha20IetfPoly1305, "pw", Profile::LIBEV_NEW);
    let mut ss_packets = Vec::with_capacity(n);
    for _ in 0..n {
        let mut client = ClientSession::new(
            &ss_config,
            TargetAddr::Hostname(b"www.wikipedia.org".to_vec(), 443),
            &mut rng,
        );
        // Browsing-like first requests of varied size.
        let body = trafficgen::payload::entropy_payload(rng.gen_range(100..600), 7.9, &mut rng);
        ss_packets.push(client.send(&body));
    }
    let tls_packets: Vec<Vec<u8>> = (0..n)
        .map(|_| trafficgen::tls_client_hello(rng.gen_range(200..600), &mut rng))
        .collect();
    let http_packets: Vec<Vec<u8>> = (0..n)
        .map(|_| trafficgen::http_request("example.com", rng.gen_range(150..600), &mut rng))
        .collect();

    let mean = |det: &PassiveDetector, v: Variant, set: &[Vec<u8>]| {
        set.iter().map(|p| probability(det, v, p)).sum::<f64>() / set.len() as f64
    };
    // The workloads are generated once; each variant is a runner job
    // that borrows them (scoped workers need `Send`, not `'static`).
    let (ss, tls, http) = (&ss_packets, &tls_packets, &http_packets);
    let specs: Vec<_> = [
        Variant::LengthOnly,
        Variant::EntropyOnly,
        Variant::Combined,
        Variant::CombinedWhitelist,
    ]
    .into_iter()
    .map(|variant| {
        move || {
            let det = detector(variant);
            VariantScore {
                variant,
                tpr_weight: mean(&det, variant, ss),
                fpr_tls: mean(&det, variant, tls),
                fpr_http: mean(&det, variant, http),
            }
        }
    })
    .collect();
    let scores = crate::runner::run_jobs(specs);

    // Staged-vs-unstaged probe cost against a server that is NOT
    // Shadowsocks (an echo-ish service that answers everything): the
    // staged scheduler still escalates (data response), but a
    // non-Shadowsocks verdict stops nothing in either design — the
    // savings show up against *silent* services, so measure those.
    // A silent (sink-like) non-SS service never answers stage-1 probes:
    // staged sends only R1/R2/NR2; unstaged fires all seven kinds.
    let mut staged = gfw_core::scheduler::Scheduler::new(Default::default());
    let mut rng2 = StdRng::seed_from_u64(seed ^ 1);
    let server = (netsim::packet::Ipv4::new(9, 9, 9, 9), 443);
    let stored = scale.pick(60, 400);
    for _ in 0..stored {
        let p = trafficgen::payload::entropy_payload(402, 7.9, &mut rng2);
        staged.on_stored_payload(netsim::time::SimTime::ZERO, server, &p, &mut rng2);
    }
    let staged_count = staged.pending() as f64 / stored as f64;
    // Unstaged: every stored payload additionally draws the stage-2
    // kinds (R3, R4, occasionally R5) and NR1.
    let unstaged_count = staged_count + 2.0 + 0.25; // R3+R4 per payload + NR1 share

    Ablation {
        scores,
        staged_probes_nonss: staged_count,
        unstaged_probes_nonss: unstaged_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitelist_is_load_bearing_against_tls() {
        let a = run(Scale::Quick, 31);
        let get = |v: Variant| a.scores.iter().find(|s| s.variant == v).unwrap();
        let combined = get(Variant::Combined);
        let whitelisted = get(Variant::CombinedWhitelist);
        // The honest negative result: statistics alone cannot separate
        // Shadowsocks from TLS (both in-band, both high-entropy).
        assert!(
            combined.fpr_tls > 0.3 * combined.tpr_weight,
            "statistics unexpectedly separated TLS: fpr {} vs tpr {}",
            combined.fpr_tls,
            combined.tpr_weight
        );
        // The whitelist zeroes both plaintext controls without touching
        // the Shadowsocks hit rate.
        assert_eq!(whitelisted.fpr_tls, 0.0);
        assert_eq!(whitelisted.fpr_http, 0.0);
        assert!(whitelisted.tpr_weight > 1e-4);
        assert!(
            (whitelisted.tpr_weight - combined.tpr_weight).abs() < 1e-6,
            "whitelist must not change the Shadowsocks score"
        );
    }

    #[test]
    fn entropy_separates_http_but_not_tls() {
        let a = run(Scale::Quick, 33);
        let get = |v: Variant| a.scores.iter().find(|s| s.variant == v).unwrap();
        let combined = get(Variant::Combined);
        // HTTP (low entropy) is strongly suppressed relative to SS...
        assert!(
            combined.fpr_http < 0.5 * combined.tpr_weight,
            "http fpr {} vs tpr {}",
            combined.fpr_http,
            combined.tpr_weight
        );
        // ...while TLS is not (ClientHello bodies are random).
        assert!(combined.fpr_tls > combined.fpr_http);
    }

    #[test]
    fn staged_probing_is_cheaper() {
        let a = run(Scale::Quick, 32);
        assert!(a.unstaged_probes_nonss > a.staged_probes_nonss * 1.3);
    }
}
