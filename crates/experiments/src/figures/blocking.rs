//! §6: the blocking module's behaviour.
//!
//! Paper shape: despite intensive probing, few servers are blocked
//! (human factor); blocks are by port or by whole IP; only the
//! server→client direction is dropped; unblocking happens lazily (a
//! server came back after more than a week, with no re-check probes).

use crate::report::Comparison;
use crate::runs::{shadowsocks_run, SsRunConfig};
use crate::Scale;
use gfw_core::blocking::BlockScope;
use netsim::time::Duration;
use shadowsocks::Profile;
use sscrypto::method::Method;

/// Result of the blocking study.
pub struct Blocking {
    /// Rules installed under a sensitive regime.
    pub sensitive_rules: usize,
    /// Rules installed under an ordinary regime.
    pub ordinary_rules: usize,
    /// Suppressed (eligible but passed over) decisions under the
    /// ordinary regime.
    pub ordinary_suppressed: u64,
    /// Scope mix under the sensitive regime: (port blocks, ip blocks).
    pub scopes: (usize, usize),
    /// Rule durations in hours.
    pub durations_h: Vec<f64>,
}

impl Blocking {
    /// Comparison with the paper.
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        c.add(
            "sensitive period → blocked",
            "servers blocked during sensitive times",
            self.sensitive_rules,
            self.sensitive_rules >= 1,
        );
        c.add(
            "ordinary period → rarely blocked",
            "few of the probed servers blocked",
            format!(
                "{} rules ({} suppressed verdicts)",
                self.ordinary_rules, self.ordinary_suppressed
            ),
            self.ordinary_rules == 0 && self.ordinary_suppressed > 0,
        );
        let min_dur = self.durations_h.iter().copied().fold(f64::MAX, f64::min);
        c.add(
            "block durations ≥ a week",
            "unblocked after more than a week",
            if self.durations_h.is_empty() {
                "no rules".to_string()
            } else {
                format!("min {min_dur:.0} h")
            },
            !self.durations_h.is_empty() && min_dur >= 7.0 * 24.0,
        );
        c
    }
}

impl std::fmt::Display for Blocking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "§6 — blocking behaviour\n")?;
        writeln!(
            f,
            "  sensitive regime: {} rules (port: {}, ip: {})",
            self.sensitive_rules, self.scopes.0, self.scopes.1
        )?;
        writeln!(
            f,
            "  ordinary regime: {} rules, {} suppressed verdicts",
            self.ordinary_rules, self.ordinary_suppressed
        )?;
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Run the study: the same Outline server (which the classifier can
/// confirm) under sensitivity 1.0 and 0.0.
pub fn run(scale: Scale, seed: u64) -> Blocking {
    let base = SsRunConfig {
        profile: Profile::OUTLINE_1_0_7,
        method: Method::ChaCha20IetfPoly1305,
        connections: scale.pick(700, 5_000),
        conn_interval: Duration::from_secs(20),
        fleet_pool: scale.pick(600, 4_000),
        nr_min_gap: Duration::from_mins(4),
        seed,
        ..Default::default()
    };

    // The two regimes are independent worlds: run them as two jobs.
    enum Regime {
        Sensitive(Box<crate::runs::SsRunResult>),
        Ordinary(usize, u64),
    }
    let sens_cfg = SsRunConfig {
        sensitivity: 1.0,
        ..base.clone()
    };
    let ord_cfg = SsRunConfig {
        sensitivity: 0.0,
        ..base.clone()
    };
    let jobs: Vec<Box<dyn FnOnce() -> Regime + Send>> = vec![
        Box::new(move || Regime::Sensitive(Box::new(shadowsocks_run(&sens_cfg)))),
        Box::new(move || {
            let mut world = crate::runs::build_ss_world(&ord_cfg);
            for i in 0..ord_cfg.connections {
                world.sim.connect_at(
                    netsim::time::SimTime::ZERO
                        + Duration::from_nanos(ord_cfg.conn_interval.as_nanos() * i as u64),
                    world.driver,
                    world.client_ip,
                    (world.server_ip, 8388),
                    netsim::conn::TcpTuning::default(),
                );
            }
            world.sim.run();
            crate::runner::record_sim_stats(&world.sim.stats);
            let st = world.handle.state.borrow();
            Regime::Ordinary(st.blocking.all_rules().len(), st.blocking.suppressed)
        }),
    ];
    let mut out = crate::runner::run_jobs(jobs).into_iter();
    let (Some(Regime::Sensitive(sensitive)), Some(Regime::Ordinary(ord_rules, ord_suppressed))) =
        (out.next(), out.next())
    else {
        unreachable!("runner returns outputs in spec order");
    };
    let ordinary_res = (ord_rules, ord_suppressed);

    let scopes = sensitive
        .block_rules
        .iter()
        .fold((0, 0), |acc, r| match r.scope {
            BlockScope::Port(_) => (acc.0 + 1, acc.1),
            BlockScope::Ip(_) => (acc.0, acc.1 + 1),
        });
    let durations_h = sensitive
        .block_rules
        .iter()
        .map(|r| r.until.since(r.since).as_secs_f64() / 3600.0)
        .collect();
    Blocking {
        sensitive_rules: sensitive.block_rules.len(),
        ordinary_rules: ordinary_res.0,
        ordinary_suppressed: ordinary_res.1,
        scopes,
        durations_h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_factor_gates_blocking() {
        let b = run(Scale::Quick, 16);
        assert!(b.comparison().all_hold(), "\n{b}");
    }
}
