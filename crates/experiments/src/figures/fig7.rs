//! Fig 7: CDF of the delay between a legitimate connection and the
//! replay probes derived from it.
//!
//! Paper shape: >20% of first replays within one second, >50% within a
//! minute, >75% within 15 minutes; minimum 0.28 s, maximum 569.55 h;
//! payloads may be replayed up to 47 times (3,269 first occurrences vs
//! 11,137 total).

use crate::report::Comparison;
use crate::runs::{shadowsocks_run, SsRunConfig};
use crate::Scale;
use analysis::stats::Cdf;
use gfw_core::probe::ProbeRecord;
use std::collections::HashMap;

/// Result of the Fig 7 analysis.
pub struct Fig7 {
    /// Delays of the first replay of each stored payload (seconds).
    pub first: Cdf,
    /// Delays of all replays (seconds).
    pub all: Cdf,
}

impl Fig7 {
    /// Comparison with the paper's milestones (on the all-replays CDF,
    /// matching the blue line of Fig 7).
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        c.add(
            "replays within 1 s",
            ">20%",
            format!("{:.0}%", self.first.at(1.0) * 100.0),
            self.first.at(1.0) > 0.15,
        );
        c.add(
            "replays within 1 min",
            ">50%",
            format!("{:.0}%", self.first.at(60.0) * 100.0),
            self.first.at(60.0) > 0.45,
        );
        c.add(
            "replays within 15 min",
            ">75%",
            format!("{:.0}%", self.first.at(900.0) * 100.0),
            self.first.at(900.0) > 0.70,
        );
        c.add(
            "minimum delay",
            "0.28 s",
            format!("{:.2} s", self.first.min()),
            self.first.min() >= 0.2,
        );
        c.add(
            "long tail exists (hours)",
            "max 569.55 h",
            format!("{:.1} h", self.all.max() / 3600.0),
            self.all.max() > 3600.0,
        );
        c.add(
            "payloads replayed multiple times",
            "mean ≈3.4",
            format!(
                "mean {:.1}",
                self.all.len() as f64 / self.first.len().max(1) as f64
            ),
            self.all.len() > self.first.len(),
        );
        c
    }
}

impl std::fmt::Display for Fig7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 7 — replay delays: {} first occurrences, {} total\n",
            self.first.len(),
            self.all.len()
        )?;
        for (label, t) in [
            ("1 s", 1.0),
            ("1 min", 60.0),
            ("15 min", 900.0),
            ("1 h", 3600.0),
            ("10 h", 36_000.0),
        ] {
            writeln!(
                f,
                "  ≤ {label:>6}: first {:>5.1}%   all {:>5.1}%",
                self.first.at(t) * 100.0,
                self.all.at(t) * 100.0
            )?;
        }
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Analyze probe records.
pub fn analyze(probes: &[ProbeRecord]) -> Fig7 {
    let mut all = Vec::new();
    let mut first: HashMap<u64, f64> = HashMap::new();
    for p in probes {
        let (Some(delay), Some(tid)) = (p.trigger_delay, p.trigger_id) else {
            continue;
        };
        let secs = delay.as_secs_f64();
        all.push(secs);
        first
            .entry(tid)
            .and_modify(|d| *d = d.min(secs))
            .or_insert(secs);
    }
    Fig7 {
        first: Cdf::new(first.into_values().collect()),
        all: Cdf::new(all),
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig7 {
    let cfg = SsRunConfig {
        connections: scale.pick(3_000, 30_000),
        fleet_pool: scale.pick(1_000, 8_000),
        seed,
        ..Default::default()
    };
    analyze(&shadowsocks_run(&cfg).probes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_milestones_hold() {
        let fig = run(Scale::Quick, 9);
        assert!(fig.first.len() > 20, "{} first replays", fig.first.len());
        assert!(fig.comparison().all_hold(), "\n{fig}");
    }
}
