//! §9 (future work): the GFW's detector is not Shadowsocks-specific —
//! any fully-encrypted protocol (FEP) with Shadowsocks-like first-packet
//! statistics draws the same probes. The paper conjectures this from
//! the random-data experiments and VMess's 2020 vulnerability
//! disclosures; we test it directly with a VMess-shaped workload.

use crate::report::Comparison;
use crate::Scale;
use gfw_core::{Gfw, GfwConfig};
use netsim::app::{App, AppEvent, Ctx};
use netsim::capture::Capture;
use netsim::conn::{ConnId, TcpTuning};
use netsim::host::HostConfig;
use netsim::time::{Duration, SimTime};
use netsim::{SimConfig, Simulator};

/// A VMess-like client: the first packet is a fully-random-looking
/// blob — 16-byte auth header (HMAC of time+uuid in the real protocol)
/// followed by an encrypted instruction block and payload. No plaintext
/// anywhere; length similar to a browsing request.
struct VmessLikeClient {
    payload_len_range: (usize, usize),
}

impl App for VmessLikeClient {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Connected { conn } => {
                let (lo, hi) = self.payload_len_range;
                let n = ctx.rng.gen_range(lo..=hi);
                let mut first = vec![0u8; n];
                ctx.rng.fill(&mut first[..]);
                ctx.send(conn, first);
                ctx.set_timer(Duration::from_secs(15), conn.0);
            }
            AppEvent::Timer { token } => ctx.fin(ConnId(token)),
            _ => {}
        }
    }
}

use rand::Rng;

/// Result of the FEP study.
pub struct Fep {
    /// Probes received by the VMess-like server.
    pub probes_vmess: usize,
    /// Probes received by the TLS control server.
    pub probes_tls: usize,
    /// Replay-based probes at the VMess-like server.
    pub replays_vmess: usize,
}

impl Fep {
    /// Comparison with the paper's conjecture.
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        c.add(
            "FEP traffic draws probes",
            "likely to be detected too (§9)",
            self.probes_vmess,
            self.probes_vmess > 5,
        );
        c.add(
            "including replay-based probes",
            "replay attacks observed against V2Ray since 2017",
            self.replays_vmess,
            self.replays_vmess > 0,
        );
        c.add(
            "TLS control stays clean",
            "0 probes",
            self.probes_tls,
            self.probes_tls == 0,
        );
        c
    }
}

impl std::fmt::Display for Fep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "§9 — fully-encrypted protocols: VMess-like server got {} probes \
             ({} replays); TLS control got {}\n",
            self.probes_vmess, self.replays_vmess, self.probes_tls
        )?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Run the study.
pub fn run(scale: Scale, seed: u64) -> Fep {
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let mut gfw_config = GfwConfig::default();
    gfw_config.fleet.pool_size = scale.pick(600, 4_000);
    gfw_config.blocking.sensitivity = 0.0;
    let handle = Gfw::install(&mut sim, gfw_config, seed ^ 0x9E);

    let vmess_ip = sim.add_host(HostConfig::outside("vmess"));
    let tls_ip = sim.add_host(HostConfig::outside("https"));
    let client_ip = sim.add_host(HostConfig::china("client"));
    let _cap = sim.add_capture(Capture::with_filter(|_| false)); // no storage needed

    struct Sink;
    impl App for Sink {
        fn on_event(&mut self, _: AppEvent, _: &mut Ctx) {}
    }
    let sink1 = sim.add_app(Box::new(Sink));
    sim.listen((vmess_ip, 10086), sink1);
    let sink2 = sim.add_app(Box::new(Sink));
    sim.listen((tls_ip, 443), sink2);

    // VMess-like first packets: pick a band-resonant length range so the
    // conjecture is tested under the same conditions as Shadowsocks.
    let vmess = sim.add_app(Box::new(VmessLikeClient {
        payload_len_range: (380, 560),
    }));
    struct TlsClient;
    impl App for TlsClient {
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
            match ev {
                AppEvent::Connected { conn } => {
                    let n = ctx.rng.gen_range(380..=560);
                    let hello = trafficgen::tls_client_hello(n, ctx.rng);
                    ctx.send(conn, hello);
                    ctx.set_timer(Duration::from_secs(15), conn.0);
                }
                AppEvent::Timer { token } => ctx.fin(ConnId(token)),
                _ => {}
            }
        }
    }
    let tls = sim.add_app(Box::new(TlsClient));

    let n = scale.pick(2_000, 20_000);
    for i in 0..n {
        let t = SimTime::ZERO + Duration::from_secs(20 * i as u64);
        sim.connect_at(t, vmess, client_ip, (vmess_ip, 10086), TcpTuning::default());
        sim.connect_at(t, tls, client_ip, (tls_ip, 443), TcpTuning::default());
    }
    sim.run();
    crate::runner::record_sim_stats(&sim.stats);

    let st = handle.state.borrow();
    let probes_vmess = st
        .probes()
        .iter()
        .filter(|p| p.server.0 == vmess_ip)
        .count();
    let replays_vmess = st
        .probes()
        .iter()
        .filter(|p| p.server.0 == vmess_ip && p.kind.is_replay())
        .count();
    let probes_tls = st.probes().iter().filter(|p| p.server.0 == tls_ip).count();
    Fep {
        probes_vmess,
        probes_tls,
        replays_vmess,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fep_conjecture_holds() {
        let fep = run(Scale::Quick, 41);
        assert!(fep.comparison().all_hold(), "\n{fep}");
    }
}
