//! Fig 9: rate of replay-based probes per legitimate connection as a
//! function of the connection's payload entropy (Exp 3).
//!
//! Paper shape: packets of all entropies may be replayed, but a payload
//! of per-byte entropy 7.2 is roughly four times as likely to be
//! replayed as one of entropy 3.0.

use crate::report::Comparison;
use crate::runs::{sink_run, SinkExp, SinkRunConfig};
use crate::Scale;

/// Result of the Fig 9 analysis.
pub struct Fig9 {
    /// Per-entropy-bin (bin width 1 bit): (triggers, replays).
    pub bins: [(usize, usize); 8],
}

impl Fig9 {
    /// Replay ratio in a bin.
    pub fn ratio(&self, bin: usize) -> f64 {
        let (t, r) = self.bins[bin];
        if t == 0 {
            return 0.0;
        }
        r as f64 / t as f64
    }

    /// Pooled replay ratio over an inclusive bin range (pooling keeps
    /// small-sample noise manageable).
    pub fn pooled_ratio(&self, lo: usize, hi: usize) -> f64 {
        let (t, r) = self.bins[lo..=hi]
            .iter()
            .fold((0usize, 0usize), |acc, b| (acc.0 + b.0, acc.1 + b.1));
        if t == 0 {
            return 0.0;
        }
        r as f64 / t as f64
    }

    /// Comparison with the paper.
    pub fn comparison(&self) -> Comparison {
        let hi = self.pooled_ratio(6, 7);
        let mid = self.pooled_ratio(2, 4);
        let factor = if mid > 0.0 { hi / mid } else { f64::INFINITY };
        let mut c = Comparison::new();
        c.add(
            "high entropy replayed more (bins 6-7 vs 2-4)",
            "≈4× (7.2 vs 3.0 in the paper)",
            format!("{factor:.1}×"),
            factor > 1.5,
        );
        c.add(
            "rising curve",
            "rising",
            format!(
                "{:.4}% → {:.4}%",
                self.pooled_ratio(0, 3) * 100.0,
                hi * 100.0
            ),
            hi > self.pooled_ratio(0, 3),
        );
        let low_bins_nonempty = self.bins[..3].iter().map(|b| b.1).sum::<usize>();
        c.add(
            "low-entropy payloads still replayed sometimes",
            "nonzero",
            low_bins_nonempty,
            true, // informational: small samples may legitimately be 0
        );
        c
    }
}

impl std::fmt::Display for Fig9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 9 — replay rate by trigger entropy (Exp 3)\n")?;
        for (i, (t, r)) in self.bins.iter().enumerate() {
            writeln!(
                f,
                "  entropy [{},{}): {:>7} conns, {:>5} replays, ratio {:.4}%",
                i,
                i + 1,
                t,
                r,
                self.ratio(i) * 100.0
            )?;
        }
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Run Exp 3 and bin replays by the entropy of the replayed payload.
pub fn run(scale: Scale, seed: u64) -> Fig9 {
    let cfg = SinkRunConfig {
        exp: SinkExp::Exp3,
        connections: scale.pick(60_000, 500_000),
        conn_interval: netsim::time::Duration::from_secs(1),
        seed,
    };
    let res = sink_run(&cfg);
    let mut bins = [(0usize, 0usize); 8];
    for t in &res.triggers {
        let b = (t.entropy.floor() as usize).min(7);
        bins[b].0 += 1;
    }
    for &e in &res.replayed_entropy {
        let b = (e.floor() as usize).min(7);
        bins[b].1 += 1;
    }
    Fig9 { bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn entropy_gradient_holds() {
        let fig = run(Scale::Quick, 12);
        let total_replays: usize = fig.bins.iter().map(|b| b.1).sum();
        assert!(total_replays > 20, "{total_replays} replays");
        assert!(fig.comparison().all_hold(), "\n{fig}");
    }
}
