//! Fig 6: shared TCP-timestamp sequences expose centralized prober
//! processes.
//!
//! Paper shape: despite thousands of source addresses, the TSvals of
//! prober SYNs fall on at least seven straight lines — six at almost
//! exactly 250 Hz and one small ~1000 Hz cluster — with wraparound at
//! 2^32.

use crate::report::Comparison;
use crate::runs::{shadowsocks_run, SsRunConfig, SynObs};
use crate::Scale;
use analysis::tsval::{cluster, TsProcess};

/// Result of the Fig 6 analysis.
pub struct Fig6 {
    /// Recovered processes (≥2 observations each).
    pub processes: Vec<TsProcess>,
    /// Total observations clustered.
    pub observations: usize,
    /// Unique source addresses in the capture.
    pub unique_ips: usize,
}

impl Fig6 {
    /// Recovered rates, sorted.
    pub fn rates(&self) -> Vec<f64> {
        let mut r: Vec<f64> = self
            .processes
            .iter()
            .filter(|p| p.points.len() >= 3)
            .map(|p| p.rate_hz())
            .collect();
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        r
    }

    /// Comparison with the paper.
    pub fn comparison(&self) -> Comparison {
        let rates = self.rates();
        let n250 = rates.iter().filter(|r| (**r - 250.0).abs() < 15.0).count();
        let n1000 = rates.iter().filter(|r| (**r - 1000.0).abs() < 60.0).count();
        let mut c = Comparison::new();
        c.add(
            "processes ≪ unique source IPs",
            "7 vs 12,300",
            format!("{} vs {}", rates.len(), self.unique_ips),
            rates.len() < self.unique_ips / 4,
        );
        c.add("250 Hz sequences", "6", n250, n250 >= 2);
        c.add("~1000 Hz sequence", "1 (small)", n1000, n1000 <= 2);
        c.add(
            "all sequences near 250/1000 Hz",
            "yes",
            format!("{rates:.0?}"),
            rates
                .iter()
                .all(|r| (r - 250.0).abs() < 15.0 || (r - 1000.0).abs() < 60.0),
        );
        c
    }
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 6 — TSval processes: {} observations from {} source IPs\n",
            self.observations, self.unique_ips
        )?;
        for (i, p) in self.processes.iter().enumerate() {
            if p.points.len() >= 3 {
                writeln!(
                    f,
                    "  process {i}: {:>6} probes, slope {:.1} Hz",
                    p.points.len(),
                    p.rate_hz()
                )?;
            }
        }
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Analyze captured probe SYNs.
pub fn analyze(syns: &[SynObs]) -> Fig6 {
    let obs: Vec<(f64, u32)> = syns.iter().map(|s| (s.secs, s.tsval)).collect();
    let unique_ips = syns
        .iter()
        .map(|s| s.src)
        .collect::<std::collections::HashSet<_>>()
        .len();
    Fig6 {
        processes: cluster(obs, 2_000.0),
        observations: syns.len(),
        unique_ips,
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig6 {
    let cfg = SsRunConfig {
        connections: scale.pick(3_000, 30_000),
        conn_interval: netsim::time::Duration::from_secs(scale.pick(25, 30)),
        fleet_pool: scale.pick(1_500, 8_000),
        nr_min_gap: netsim::time::Duration::from_mins(scale.pick(4, 18)),
        seed,
        ..Default::default()
    };
    analyze(&shadowsocks_run(&cfg).probe_syns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralized_processes_recovered() {
        let fig = run(Scale::Quick, 8);
        assert!(fig.observations > 50, "{} obs", fig.observations);
        let rates = fig.rates();
        assert!(rates.len() >= 3, "rates {rates:?}");
        assert!(
            rates.iter().any(|r| (r - 250.0).abs() < 15.0),
            "rates {rates:?}"
        );
        assert!(fig.comparison().all_hold(), "\n{fig}");
    }
}
