//! Ablation: probe-battery size vs inference accuracy (extension).
//!
//! §5.2.2 notes the GFW needs "a set of several probes" and spreads
//! them over hours; this study quantifies how many probes per length
//! the inference battery needs before it reliably recovers the
//! implementation — i.e. how expensive stealth is for the censor.

use crate::report::Table;
use crate::Scale;
use probesim::{infer, EngineOracle};
use shadowsocks::{Profile, ServerConfig};
use sscrypto::method::Method;

/// One accuracy measurement.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Probes per length in the battery.
    pub samples: usize,
    /// Fraction of vulnerable grid cells correctly identified.
    pub accuracy: f64,
}

/// The study result.
pub struct Battery {
    /// Accuracy per battery size.
    pub points: Vec<Point>,
}

impl Battery {
    /// Smallest battery reaching full accuracy, if any.
    pub fn full_accuracy_at(&self) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.accuracy >= 1.0)
            .map(|p| p.samples)
    }
}

impl std::fmt::Display for Battery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — probe battery size vs inference accuracy\n")?;
        let mut t = Table::new(&["probes per length", "accuracy on vulnerable grid"]);
        for p in &self.points {
            t.row(&[p.samples.to_string(), format!("{:.0}%", p.accuracy * 100.0)]);
        }
        write!(f, "{}", t.render())?;
        match self.full_accuracy_at() {
            Some(s) => writeln!(f, "\nfull accuracy from {s} probes per length"),
            None => writeln!(f, "\nfull accuracy not reached in the sweep"),
        }
    }
}

/// The vulnerable grid: every cell an attacker should identify.
fn grid() -> Vec<(Profile, Method, bool)> {
    vec![
        (Profile::LIBEV_OLD, Method::ChaCha20, true),
        (Profile::LIBEV_OLD, Method::Aes256Cfb, true),
        (Profile::LIBEV_OLD, Method::Aes128Gcm, true),
        (Profile::LIBEV_OLD, Method::Aes256Gcm, true),
        (Profile::OUTLINE_1_0_6, Method::ChaCha20IetfPoly1305, true),
        (Profile::SS_PYTHON, Method::Aes256Cfb, true),
        // Opaque cells: correct answer is "not identified".
        (Profile::LIBEV_NEW, Method::Aes256Gcm, false),
        (Profile::OUTLINE_1_0_7, Method::ChaCha20IetfPoly1305, false),
    ]
}

/// Run the sweep.
pub fn run(scale: Scale, seed: u64) -> Battery {
    let sweeps: &[usize] = match scale {
        Scale::Quick => &[1, 2, 4, 8, 16, 32],
        Scale::Paper => &[1, 2, 4, 8, 16, 32, 64, 128],
    };
    // One runner job per battery size; each sweeps the whole grid.
    let specs: Vec<_> = sweeps
        .iter()
        .map(|&samples| {
            move || {
                let cells = grid();
                let correct = cells
                    .iter()
                    .filter(|(profile, method, should_identify)| {
                        let config = ServerConfig::new(*method, "battery-pw", *profile);
                        let mut oracle = EngineOracle::new(config, seed);
                        let inf = infer(&mut oracle, samples);
                        inf.shadowsocks_like == *should_identify
                            && (!*should_identify || inf.nonce_len == Some(method.iv_len()))
                    })
                    .count();
                Point {
                    samples,
                    accuracy: correct as f64 / cells.len() as f64,
                }
            }
        })
        .collect();
    Battery {
        points: crate::runner::run_jobs(specs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_grows_with_battery_size() {
        let b = run(Scale::Quick, 51);
        let first = b.points.first().unwrap().accuracy;
        let last = b.points.last().unwrap().accuracy;
        assert!(last >= first, "accuracy regressed: {first} → {last}");
        assert!(last >= 0.99, "large battery should be exact: {last}");
        // Finding: because the battery spans ~70 lengths, even one probe
        // per length aggregates enough long-probe observations for the
        // 13/16-RST statistic — the cost of confirmation is dozens of
        // probes either way, which is why the GFW paces them over hours.
        assert!(
            b.points.iter().all(|p| p.accuracy > 0.5),
            "battery sizes: {:?}",
            b.points
        );
    }
}
