//! Table 2: the most common prober IP addresses.
//!
//! Paper shape: the top address (175.42.1.21) sent 44 probes; the
//! top-10 counts decline gently (44, 38, 36, 36, 33, 32, 32, 32, 32,
//! 31). The exact addresses churn; the *shape* — a shallow head, no
//! single dominant prober like 2015's 202.108.181.70 — is the finding.

use crate::report::Table;
use crate::runs::{shadowsocks_run, SsRunConfig};
use crate::Scale;
use gfw_core::probe::ProbeRecord;
use netsim::packet::Ipv4;

/// Result: top prober addresses with counts.
pub struct Table2 {
    /// (address, probe count), descending.
    pub top: Vec<(Ipv4, u64)>,
    /// Total probes analyzed.
    pub total: u64,
}

impl Table2 {
    /// The paper's shallow-head property: the busiest address accounts
    /// for well under 1% of all probes.
    pub fn head_share(&self) -> f64 {
        self.top
            .first()
            .map(|&(_, c)| c as f64 / self.total.max(1) as f64)
            .unwrap_or(0.0)
    }
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 2 — most common prober IP addresses\n")?;
        let mut t = Table::new(&["Prober IP address", "Count", "AS"]);
        for (ip, count) in &self.top {
            let asn = analysis::asn::lookup(*ip)
                .map(|e| format!("AS{}", e.asn))
                .unwrap_or_else(|| "?".into());
            t.row(&[ip.to_string(), count.to_string(), asn]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "\nhead share: {:.2}% of {} probes (paper: 44/51837 = 0.08%)",
            self.head_share() * 100.0,
            self.total
        )
    }
}

/// Analyze probe records.
pub fn analyze(probes: &[ProbeRecord], k: usize) -> Table2 {
    let top = analysis::stats::top_k(probes.iter().map(|p| p.src), k);
    Table2 {
        top,
        total: probes.len() as u64,
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Table2 {
    let cfg = SsRunConfig {
        connections: scale.pick(2_500, 30_000),
        fleet_pool: scale.pick(1_000, 16_000),
        nr_min_gap: netsim::time::Duration::from_mins(scale.pick(4, 18)),
        seed,
        ..Default::default()
    };
    analyze(&shadowsocks_run(&cfg).probes, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_list_is_descending_and_attributable() {
        let t = run(Scale::Quick, 4);
        assert!(!t.top.is_empty());
        for w in t.top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for (ip, _) in &t.top {
            assert!(analysis::asn::lookup(*ip).is_some(), "{ip}");
        }
        // Shallow head: no prober dominates.
        assert!(t.head_share() < 0.2, "head share {}", t.head_share());
    }
}
