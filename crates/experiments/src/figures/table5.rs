//! Table 5: server reactions to identical (R1) and byte-changed
//! (R2–R5) replays, by implementation and construction.
//!
//! Paper shape:
//!
//! | Implementation | Mode | Identical | Byte-changed |
//! |---|---|---|---|
//! | ss-libev 3.0.8–3.2.5 | Stream | R | R/T/F |
//! | ss-libev 3.0.8–3.2.5 | AEAD | R | R |
//! | ss-libev 3.3.1/3.3.3 | Stream | T | T/F |
//! | ss-libev 3.3.1/3.3.3 | AEAD | T | T |
//! | OutlineVPN | AEAD | D | T |

use crate::report::Table;
use crate::Scale;
use probesim::matrix::replay_table;
use probesim::Reaction;
use shadowsocks::{Profile, ServerConfig};
use sscrypto::method::Method;

/// One row of the table.
pub struct Row {
    /// Implementation name.
    pub implementation: &'static str,
    /// Stream or AEAD.
    pub mode: &'static str,
    /// Reaction to an identical replay.
    pub identical: Reaction,
    /// Reactions to R2–R5.
    pub changed: Vec<Reaction>,
}

/// The whole table.
pub struct Table5 {
    /// Rows in paper order.
    pub rows: Vec<Row>,
}

fn letter(r: Reaction) -> &'static str {
    match r {
        Reaction::Rst => "R",
        Reaction::Timeout => "T",
        Reaction::FinAck => "F",
        Reaction::Data => "D",
        Reaction::ConnectFailed => "X",
    }
}

impl std::fmt::Display for Table5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 5 — reactions to replays (R: reset, T: timeout, F: FIN/ACK, D: data)\n"
        )?;
        let mut t = Table::new(&[
            "Implementation",
            "Mode",
            "Identical",
            "Byte-changed (R2-R5)",
        ]);
        for row in &self.rows {
            let changed: Vec<&str> = row.changed.iter().map(|&r| letter(r)).collect();
            t.row(&[
                row.implementation.into(),
                row.mode.into(),
                letter(row.identical).into(),
                changed.join("/"),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// Run the table.
pub fn run(_scale: Scale, seed: u64) -> Table5 {
    let cases: Vec<(&'static str, &'static str, Profile, Method)> = vec![
        (
            "ss-libev v3.0.8-v3.2.5",
            "Stream",
            Profile::LIBEV_OLD,
            Method::Aes256Cfb,
        ),
        (
            "ss-libev v3.0.8-v3.2.5",
            "AEAD",
            Profile::LIBEV_OLD,
            Method::Aes256Gcm,
        ),
        (
            "ss-libev v3.3.1-v3.3.3",
            "Stream",
            Profile::LIBEV_NEW,
            Method::Aes256Cfb,
        ),
        (
            "ss-libev v3.3.1-v3.3.3",
            "AEAD",
            Profile::LIBEV_NEW,
            Method::Aes256Gcm,
        ),
        (
            "OutlineVPN v1.0.7-v1.0.8",
            "AEAD",
            Profile::OUTLINE_1_0_7,
            Method::ChaCha20IetfPoly1305,
        ),
    ];
    // One runner job per implementation/mode case.
    let specs: Vec<_> = cases
        .into_iter()
        .map(|(implementation, mode, profile, method)| {
            move || {
                let config = ServerConfig::new(method, "t5-pw", profile);
                let (identical, changed) = replay_table(&config, seed);
                Row {
                    implementation,
                    mode,
                    identical,
                    changed,
                }
            }
        })
        .collect();
    Table5 {
        rows: crate::runner::run_jobs(specs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table5() {
        let t = run(Scale::Quick, 14);
        let by_name = |imp: &str, mode: &str| {
            t.rows
                .iter()
                .find(|r| r.implementation == imp && r.mode == mode)
                .unwrap()
        };
        assert_eq!(
            by_name("ss-libev v3.0.8-v3.2.5", "Stream").identical,
            Reaction::Rst
        );
        assert_eq!(
            by_name("ss-libev v3.0.8-v3.2.5", "AEAD").identical,
            Reaction::Rst
        );
        assert_eq!(
            by_name("ss-libev v3.3.1-v3.3.3", "Stream").identical,
            Reaction::Timeout
        );
        assert_eq!(
            by_name("ss-libev v3.3.1-v3.3.3", "AEAD").identical,
            Reaction::Timeout
        );
        assert_eq!(
            by_name("OutlineVPN v1.0.7-v1.0.8", "AEAD").identical,
            Reaction::Data,
            "no replay filter → proxied"
        );
        // AEAD byte-changed on old libev is always RST.
        assert!(by_name("ss-libev v3.0.8-v3.2.5", "AEAD")
            .changed
            .iter()
            .all(|&r| r == Reaction::Rst));
        // Outline byte-changed is always timeout.
        assert!(by_name("OutlineVPN v1.0.7-v1.0.8", "AEAD")
            .changed
            .iter()
            .all(|&r| r == Reaction::Timeout));
    }
}
