//! One module per paper table/figure. Each exposes a `run` function
//! returning a displayable, assertable result; [`REGISTRY`] lists every
//! experiment as a (id, title, render) spec for the run engine.

pub mod ablation;
pub mod baserate;
pub mod battery;
pub mod blocking;
pub mod fep;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod impair;
pub mod inference;
pub mod scale;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::Scale;

/// One registered experiment: a stable id (the `--only` key), the
/// banner title `exp-all` prints, and the render job — the thin
/// spec → report-text pair the run engine executes.
pub struct Entry {
    /// Stable identifier, e.g. `fig10` or `table5`.
    pub id: &'static str,
    /// Banner title, e.g. `Fig 10`.
    pub title: &'static str,
    /// Render the experiment at a scale and seed.
    pub render: fn(Scale, u64) -> String,
}

/// Every experiment, in the paper's evaluation order.
pub const REGISTRY: &[Entry] = &[
    Entry {
        id: "table1",
        title: "Table 1",
        render: |_, _| table1::render(),
    },
    Entry {
        id: "fig2",
        title: "Fig 2",
        render: |s, seed| fig2::run(s, seed).to_string(),
    },
    Entry {
        id: "fig3",
        title: "Fig 3",
        render: |s, seed| fig3::run(s, seed).to_string(),
    },
    Entry {
        id: "table2",
        title: "Table 2",
        render: |s, seed| table2::run(s, seed).to_string(),
    },
    Entry {
        id: "fig4",
        title: "Fig 4",
        render: |s, seed| fig4::run(s, seed).to_string(),
    },
    Entry {
        id: "table3",
        title: "Table 3",
        render: |s, seed| table3::run(s, seed).to_string(),
    },
    Entry {
        id: "fig5",
        title: "Fig 5",
        render: |s, seed| fig5::run(s, seed).to_string(),
    },
    Entry {
        id: "fig6",
        title: "Fig 6",
        render: |s, seed| fig6::run(s, seed).to_string(),
    },
    Entry {
        id: "fig7",
        title: "Fig 7",
        render: |s, seed| fig7::run(s, seed).to_string(),
    },
    Entry {
        id: "table4",
        title: "Table 4",
        render: |s, seed| table4::run(s, seed).to_string(),
    },
    Entry {
        id: "fig8",
        title: "Fig 8",
        render: |s, seed| fig8::run(s, seed).to_string(),
    },
    Entry {
        id: "fig9",
        title: "Fig 9",
        render: |s, seed| fig9::run(s, seed).to_string(),
    },
    Entry {
        id: "fig10",
        title: "Fig 10",
        render: |s, seed| fig10::run(s, seed).to_string(),
    },
    Entry {
        id: "table5",
        title: "Table 5",
        render: |s, seed| table5::run(s, seed).to_string(),
    },
    Entry {
        id: "fig11",
        title: "Fig 11",
        render: |s, seed| fig11::run(s, seed).to_string(),
    },
    Entry {
        id: "blocking",
        title: "S6 blocking",
        render: |s, seed| blocking::run(s, seed).to_string(),
    },
    Entry {
        id: "inference",
        title: "S5.2.2 inference",
        render: |s, seed| inference::run(s, seed).to_string(),
    },
    Entry {
        id: "ablation",
        title: "Extension: ablations",
        render: |s, seed| ablation::run(s, seed).to_string(),
    },
    Entry {
        id: "fep",
        title: "Extension: fully-encrypted protocols (S9)",
        render: |s, seed| fep::run(s, seed).to_string(),
    },
    Entry {
        id: "battery",
        title: "Extension: probe battery size",
        render: |s, seed| battery::run(s, seed).to_string(),
    },
    Entry {
        id: "impair",
        title: "Extension: link impairment",
        render: |s, seed| impair::run(s, seed).to_string(),
    },
    Entry {
        id: "scale",
        title: "Extension: hybrid engine scale",
        render: |s, seed| scale::run(s, seed).to_string(),
    },
    Entry {
        id: "baserate",
        title: "Extension: base-rate sweep",
        render: |s, seed| baserate::run(s, seed).to_string(),
    },
];
