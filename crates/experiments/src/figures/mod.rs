//! One module per paper table/figure. Each exposes a `run` function
//! returning a displayable, assertable result.

pub mod ablation;
pub mod battery;
pub mod blocking;
pub mod fep;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod inference;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
