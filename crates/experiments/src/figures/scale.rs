//! Extension: the hybrid flow/packet engine at scale.
//!
//! The paper's measurements ran against live traffic volumes no
//! packet-level simulator reproduces comfortably: detection decisions
//! ride on a handful of packets per connection (the handshake and the
//! first data segments), while the overwhelming majority of simulated
//! events would be bulk-transfer payload segments that no detector ever
//! looks at. The hybrid engine keeps the detection-relevant edges at
//! packet fidelity and promotes bulk-transfer tails into a fluid
//! max-min fair-share model (`netsim::flow`), collapsing thousands of
//! per-segment events per connection into a couple of completion
//! events.
//!
//! This experiment drives the same bulk workload — Poisson-free
//! deterministic arrivals every 4 ms, transfer sizes uniform in
//! [64 KiB, 448 KiB], China clients pushing to an outside sink — under
//! both engines and reports the deterministic counters side by side.
//! Wall-clock and memory numbers (which are machine-facts, not
//! sim-facts) live in `BENCH_scale.json`, produced by the `exp-scale`
//! binary; this module's rendering stays byte-reproducible.

use crate::report::Table;
use crate::Scale;
use netsim::app::{App, AppEvent, Ctx};
use netsim::conn::TcpTuning;
use netsim::host::HostConfig;
use netsim::sim::SimStats;
use netsim::time::{Duration, SimTime};
use netsim::{EngineMode, SimConfig, Simulator};
use trafficgen::drivers::{BulkTransferClient, Sample};

/// Gap between successive connection arrivals. With mean transfer size
/// 256 KiB this offers ~64 MB/s to the 125 MB/s border link (ρ ≈ 0.5),
/// so the fluid model operates in a contended-but-stable regime.
const ARRIVAL_GAP: Duration = Duration::from_millis(4);

/// Transfer size bounds (uniform), bytes.
const SIZE_LO: f64 = 65_536.0;
const SIZE_HI: f64 = 458_752.0;

/// A sink that completes the close handshake: replies FIN to a peer
/// FIN so connections fully close and get garbage-collected — at a
/// million flows, leaked connections would dominate memory.
struct FinSink;

impl App for FinSink {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        if let AppEvent::PeerFin { conn } = ev {
            ctx.fin(conn);
        }
    }
}

/// Deterministic outcome of one workload run.
pub struct Measured {
    /// Flows the driver opened.
    pub flows: usize,
    /// Transfers that completed ([`AppEvent::BulkDelivered`]).
    pub completed: u64,
    /// Bytes those transfers carried.
    pub bytes: u64,
    /// Simulator counters.
    pub stats: SimStats,
}

/// Run the bulk workload once under `engine`.
pub fn measure(engine: EngineMode, flows: usize, seed: u64) -> Measured {
    let config = SimConfig {
        engine,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(config, seed);
    let server = sim.add_host(HostConfig::outside("bulk-sink"));
    let client = sim.add_host(HostConfig::china("bulk-client"));
    let sink = sim.add_app(Box::new(FinSink));
    sim.listen((server, 443), sink);
    let bulk = BulkTransferClient::new(Sample::Uniform(SIZE_LO, SIZE_HI));
    let (completed, bytes) = bulk.counters();
    let app = sim.add_app(Box::new(bulk));
    let mut at = SimTime::ZERO;
    for _ in 0..flows {
        sim.connect_at(at, app, client, (server, 443), TcpTuning::default());
        at += ARRIVAL_GAP;
    }
    sim.run();
    crate::runner::record_sim_stats(&sim.stats);
    Measured {
        flows,
        completed: completed.get(),
        bytes: bytes.get(),
        stats: sim.stats,
    }
}

/// Run the bulk workload partitioned into `cells` independent shard
/// cells, advanced by `workers` executor threads.
///
/// Each cell gets its own client/sink pair, an even share of the flow
/// count, and a `1/cells` slice of the border bandwidth, so the
/// aggregate workload offers the same load to the same total capacity
/// as [`measure`] — the contention regime (ρ ≈ 0.5) is preserved while
/// the event queues shrink by `cells`×. Flows never cross cells, so the
/// cells couple as [`netsim::Coupling::Isolated`]; per-cell seeds and
/// conn-id bases are derived from the cell index, which makes the
/// counters a pure function of `(engine, flows, cells, seed)` — the
/// worker count only changes wall-clock, never output.
pub fn measure_sharded(
    engine: EngineMode,
    flows: usize,
    cells: usize,
    workers: usize,
    seed: u64,
) -> Measured {
    let per_cell = flows / cells;
    let remainder = flows % cells;
    let shard_cells: Vec<netsim::ShardCell<Measured>> = (0..cells)
        .map(|idx| {
            let cell_flows = per_cell + usize::from(idx < remainder);
            netsim::ShardCell::new(move |idx| {
                let config = SimConfig {
                    engine,
                    bandwidth: netsim::LinkBandwidth::default().divided(cells as u64),
                    ..SimConfig::default()
                };
                let mut sim = Simulator::new(config, seed ^ (idx as u64).wrapping_mul(0x9E37));
                sim.set_conn_id_base((idx as u64) << 48);
                let server = sim.add_host(HostConfig::outside("bulk-sink"));
                let client = sim.add_host(HostConfig::china("bulk-client"));
                let sink = sim.add_app(Box::new(FinSink));
                sim.listen((server, 443), sink);
                let bulk = BulkTransferClient::new(Sample::Uniform(SIZE_LO, SIZE_HI));
                let (completed, bytes) = bulk.counters();
                let app = sim.add_app(Box::new(bulk));
                let mut at = SimTime::ZERO;
                for _ in 0..cell_flows {
                    sim.connect_at(at, app, client, (server, 443), TcpTuning::default());
                    at += ARRIVAL_GAP;
                }
                let finish: netsim::shard::FinishFn<Measured> =
                    Box::new(move |sim: Simulator| Measured {
                        flows: cell_flows,
                        completed: completed.get(),
                        bytes: bytes.get(),
                        stats: sim.stats,
                    });
                (sim, finish)
            })
        })
        .collect();
    let per_cell_out = netsim::run_sharded(shard_cells, workers, netsim::Coupling::Isolated);
    // Merge in cell order: the totals are partition-order deterministic.
    let mut merged = Measured {
        flows: 0,
        completed: 0,
        bytes: 0,
        stats: SimStats::default(),
    };
    for m in per_cell_out {
        merged.flows += m.flows;
        merged.completed += m.completed;
        merged.bytes += m.bytes;
        merged.stats.merge(&m.stats);
    }
    crate::runner::record_sim_stats(&merged.stats);
    merged
}

/// Both engines over the same workload.
pub struct ScaleResult {
    /// Flows driven per engine.
    pub flows: usize,
    /// Pure packet engine outcome.
    pub packet: Measured,
    /// Hybrid engine outcome.
    pub hybrid: Measured,
}

impl std::fmt::Display for ScaleResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Bulk workload, both engines: {} flows, sizes uniform \
             [{} KiB, {} KiB], one arrival per {} ms",
            self.flows,
            SIZE_LO as u64 / 1024,
            SIZE_HI as u64 / 1024,
            ARRIVAL_GAP.0 / 1_000_000,
        )?;
        writeln!(f)?;
        let mut t = Table::new(&[
            "engine",
            "completed",
            "bytes",
            "events",
            "packets",
            "promoted",
            "demoted",
            "fluid bytes",
        ]);
        for (name, m) in [("packet", &self.packet), ("hybrid", &self.hybrid)] {
            t.row(&[
                name.to_string(),
                m.completed.to_string(),
                m.bytes.to_string(),
                m.stats.events.to_string(),
                m.stats.packets_sent.to_string(),
                m.stats.flows_promoted.to_string(),
                m.stats.flows_demoted.to_string(),
                m.stats.fluid_bytes_modeled.to_string(),
            ]);
        }
        write!(f, "{}", t.render())?;
        let ratio = self
            .packet
            .stats
            .events
            .checked_div(self.hybrid.stats.events)
            .unwrap_or(0);
        writeln!(
            f,
            "\nevent reduction: {ratio}x fewer events under the hybrid engine\n\
             (wall-clock and peak-RSS measurements live in BENCH_scale.json, \
             written by exp-scale; this output holds only seed-pure counters)"
        )
    }
}

/// Run the experiment: the same workload under both engines.
pub fn run(scale: Scale, seed: u64) -> ScaleResult {
    let flows = scale.pick(2_000, 20_000);
    let specs: Vec<_> = [EngineMode::Packet, EngineMode::Hybrid]
        .into_iter()
        .map(|engine| move || measure(engine, flows, seed))
        .collect();
    let mut out = crate::runner::run_jobs(specs);
    let hybrid = out.pop().expect("scale: missing hybrid run");
    let packet = out.pop().expect("scale: missing packet run");
    ScaleResult {
        flows,
        packet,
        hybrid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_complete_every_transfer() {
        let r = run(Scale::Quick, 7);
        assert_eq!(r.packet.completed as usize, r.flows);
        assert_eq!(r.hybrid.completed as usize, r.flows);
        assert_eq!(r.packet.bytes, r.hybrid.bytes);
    }

    #[test]
    fn hybrid_engine_collapses_events() {
        let r = run(Scale::Quick, 7);
        assert!(r.packet.stats.events >= 10 * r.hybrid.stats.events);
        assert_eq!(r.hybrid.stats.flows_promoted as usize, r.flows);
        // Byte conservation: what the fluid model carried plus what the
        // wire carried equals the packet engine's wire bytes.
        assert!(r.hybrid.stats.fluid_bytes_modeled > 0);
    }

    #[test]
    fn sharded_run_is_worker_count_invariant() {
        // The partition (cells) is part of the scenario; the worker
        // count is pure execution. Counters must not see the difference.
        let flows = 600;
        let one = measure_sharded(EngineMode::Hybrid, flows, 4, 1, 5);
        let four = measure_sharded(EngineMode::Hybrid, flows, 4, 4, 5);
        assert_eq!(one.completed, flows as u64);
        assert_eq!(one.completed, four.completed);
        assert_eq!(one.bytes, four.bytes);
        assert_eq!(one.stats.events, four.stats.events);
        assert_eq!(one.stats.packets_sent, four.stats.packets_sent);
        assert_eq!(one.stats.shards, 4);
    }

    #[test]
    fn sharded_run_conserves_flows_across_uneven_splits() {
        // 601 flows over 4 cells: 151+150+150+150. Every transfer still
        // completes and the totals add up.
        let m = measure_sharded(EngineMode::Packet, 601, 4, 2, 6);
        assert_eq!(m.flows, 601);
        assert_eq!(m.completed, 601);
    }

    #[test]
    fn rendering_is_deterministic_across_job_counts() {
        let a = {
            crate::runner::set_jobs(1);
            run(Scale::Quick, 9).to_string()
        };
        let b = {
            crate::runner::set_jobs(2);
            run(Scale::Quick, 9).to_string()
        };
        crate::runner::set_jobs(0);
        assert_eq!(a, b);
    }
}
