//! §5.2.2: what an attacker can infer about a server from probe
//! batteries — run across the full implementation × cipher grid.

use crate::report::Table;
use crate::Scale;
use probesim::{infer, EngineOracle, Inference};
use shadowsocks::{Profile, ServerConfig};
use sscrypto::method::Method;

/// One grid cell.
pub struct Cell {
    /// Implementation profile name.
    pub profile: &'static str,
    /// Cipher method.
    pub method: Method,
    /// What inference recovered.
    pub inference: Inference,
    /// Ground truth: was the nonce length recovered correctly (when
    /// recovered at all)?
    pub nonce_correct: Option<bool>,
}

/// The whole study.
pub struct InferenceStudy {
    /// All grid cells.
    pub cells: Vec<Cell>,
}

impl InferenceStudy {
    /// Cells where the server was identified as Shadowsocks-like.
    pub fn identified(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.inference.shadowsocks_like)
            .count()
    }

    /// Cells where identification failed because the implementation is
    /// probe-resistant.
    pub fn opaque(&self) -> usize {
        self.cells.len() - self.identified()
    }

    /// Every recovered nonce length was correct.
    pub fn all_nonces_correct(&self) -> bool {
        self.cells.iter().all(|c| c.nonce_correct.unwrap_or(true))
    }
}

impl std::fmt::Display for InferenceStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "§5.2.2 — implementation inference across the grid\n")?;
        let mut t = Table::new(&[
            "implementation",
            "method",
            "identified",
            "nonce",
            "filter",
            "guess",
        ]);
        for c in &self.cells {
            t.row(&[
                c.profile.into(),
                c.method.name().into(),
                if c.inference.shadowsocks_like {
                    "yes"
                } else {
                    "no"
                }
                .into(),
                c.inference
                    .nonce_len
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".into()),
                match c.inference.replay_filter {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "-",
                }
                .into(),
                c.inference.implementation_guess.into(),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "\nidentified: {} / {} (the rest are post-fix, deliberately opaque)",
            self.identified(),
            self.cells.len()
        )
    }
}

/// Run the study.
pub fn run(scale: Scale, seed: u64) -> InferenceStudy {
    let samples = scale.pick(40, 120);
    let grid: Vec<(Profile, Method)> = vec![
        (Profile::LIBEV_OLD, Method::ChaCha20),
        (Profile::LIBEV_OLD, Method::ChaCha20Ietf),
        (Profile::LIBEV_OLD, Method::Aes256Cfb),
        (Profile::LIBEV_OLD, Method::Aes128Gcm),
        (Profile::LIBEV_OLD, Method::Aes192Gcm),
        (Profile::LIBEV_OLD, Method::Aes256Gcm),
        (Profile::LIBEV_NEW, Method::Aes256Cfb),
        (Profile::LIBEV_NEW, Method::Aes256Gcm),
        (Profile::OUTLINE_1_0_6, Method::ChaCha20IetfPoly1305),
        (Profile::OUTLINE_1_0_7, Method::ChaCha20IetfPoly1305),
        (Profile::OUTLINE_1_1_0, Method::ChaCha20IetfPoly1305),
        (Profile::SS_PYTHON, Method::Aes256Cfb),
        (Profile::SSR, Method::Aes256Cfb),
    ];
    // One runner job per grid cell.
    let specs: Vec<_> = grid
        .into_iter()
        .map(|(profile, method)| {
            move || {
                let config = ServerConfig::new(method, "infer-pw", profile);
                let mut oracle = EngineOracle::new(config, seed);
                let inference = infer(&mut oracle, samples);
                let nonce_correct = inference.nonce_len.map(|n| n == method.iv_len());
                Cell {
                    profile: profile.name,
                    method,
                    inference,
                    nonce_correct,
                }
            }
        })
        .collect();
    InferenceStudy {
        cells: crate::runner::run_jobs(specs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerable_identified_fixed_opaque() {
        let s = run(Scale::Quick, 17);
        // All LIBEV_OLD / OUTLINE_1_0_6 / python / ssr cells identified.
        for c in &s.cells {
            let should_identify = matches!(
                c.profile,
                "ss-libev v3.0.8-v3.2.5"
                    | "OutlineVPN v1.0.6"
                    | "shadowsocks-python"
                    | "ShadowsocksR"
            );
            assert_eq!(
                c.inference.shadowsocks_like,
                should_identify,
                "{} {}",
                c.profile,
                c.method.name()
            );
        }
        assert!(s.all_nonces_correct());
        // Stream vs AEAD recovered correctly where identified.
        for c in s.cells.iter().filter(|c| c.inference.shadowsocks_like) {
            if let Some(k) = c.inference.construction {
                assert_eq!(k, c.method.kind(), "{}", c.method.name());
            }
        }
    }
}
