//! Extension: the Fig 10 reaction grid under link impairment.
//!
//! The paper's probes crossed a real, lossy transnational path; every
//! reaction in §5's taxonomy is therefore an *observation through loss*.
//! This experiment asks which Fig 10 cells are stable when the border
//! link drops packets and which degrade — the headline effect being
//! RST-vs-TIMEOUT: an RST is sent once and never retransmitted, so a
//! single lost segment converts an observed RST into an observed
//! TIMEOUT, while FIN/ACK and DATA reactions survive loss behind the
//! retransmission machine.
//!
//! Two parts:
//!
//! 1. **Analytic grid sweep** — the exact `fig10` grid (at loss 0 the
//!    output embeds it byte-for-byte), then the same grid transformed
//!    by a per-probe wire-fate model consistent with the netsim
//!    retransmission policy (SYN/SYN-ACK/data/FIN retransmitted up to
//!    the RTO budget, RSTs fire-and-forget).
//! 2. **End-to-end lossy runs** — the full §3.1 world re-run with
//!    [`netsim::ImpairmentSpec::lossy`] on the border link and a
//!    one-retry prober policy, reporting the impairment counters and
//!    observed reaction mix per loss rate.

use crate::figures::fig10::{self, Fig10, MatrixReport};
use crate::report::Table;
use crate::runner;
use crate::runs::{shadowsocks_run, SsRunConfig};
use crate::Scale;
use gfw_core::probe::Reaction;
use netsim::sim::SimStats;
use netsim::time::Duration;
use netsim::ImpairmentSpec;
use probesim::matrix::MatrixRow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The swept loss rates with their display labels (labels are fixed
/// strings so float formatting can never perturb golden output).
pub const LOSS_RATES: [(f64, &str); 4] = [(0.0, "0%"), (0.001, "0.1%"), (0.01, "1%"), (0.05, "5%")];

/// Retransmission budget assumed by the analytic wire-fate model —
/// matches the netsim default (`ImpairmentSpec::default().rto_max_retries`).
const RETRIES: u32 = 5;

/// The whole experiment.
pub struct Impair {
    /// One rendered Fig 10 grid per entry of [`LOSS_RATES`]; index 0 is
    /// the unmodified `fig10` rendering.
    pub grids: Vec<String>,
    /// End-to-end §3.1 runs, one per loss rate.
    pub e2e: Vec<E2eRow>,
}

/// One end-to-end lossy run.
pub struct E2eRow {
    /// Loss-rate label.
    pub label: &'static str,
    /// Probes the GFW launched (log entries).
    pub probes: usize,
    /// Observed reaction mix.
    pub reactions: BTreeMap<Reaction, usize>,
    /// Probes that needed more than one connection attempt.
    pub multi_attempt: usize,
    /// Simulator counters for the run.
    pub stats: SimStats,
}

impl std::fmt::Display for Impair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 10 reaction grid under symmetric border loss\n\
             (analytic wire-fate transform, {RETRIES}-retry RTO budget; \
             RSTs are never retransmitted)"
        )?;
        for (grid, (_, label)) in self.grids.iter().zip(LOSS_RATES) {
            writeln!(f, "\n--- loss {label} ---\n")?;
            write!(f, "{grid}")?;
        }
        writeln!(f, "\nEnd-to-end lossy runs (probe_retries = 1)\n")?;
        let mut t = Table::new(&[
            "loss", "probes", "TIMEOUT", "RST", "FIN/ACK", "DATA", "CONNFAIL", "retried", "lost",
            "retx",
        ]);
        for row in &self.e2e {
            let count = |r: Reaction| row.reactions.get(&r).copied().unwrap_or(0).to_string();
            t.row(&[
                row.label.to_string(),
                row.probes.to_string(),
                count(Reaction::Timeout),
                count(Reaction::Rst),
                count(Reaction::FinAck),
                count(Reaction::Data),
                count(Reaction::ConnectFailed),
                row.multi_attempt.to_string(),
                row.stats.packets_lost.to_string(),
                row.stats.retransmits.to_string(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// True if at least one of `tries` independent transmissions survives
/// Bernoulli(`loss`).
fn delivered(rng: &mut StdRng, loss: f64, tries: u32) -> bool {
    (0..tries).any(|_| !rng.gen_bool(loss))
}

/// What the prober observes when a probe whose perfect-network reaction
/// is `r` crosses a link with the given loss rate. Consistent with the
/// netsim machine: SYN, SYN-ACK, the probe payload and FIN/DATA
/// responses retransmit up to [`RETRIES`] times; RSTs are sent once.
fn observed_under_loss(r: Reaction, loss: f64, rng: &mut StdRng) -> Reaction {
    let tries = 1 + RETRIES;
    // Handshake: the SYN and the SYN-ACK each need one survivor.
    if !delivered(rng, loss, tries) || !delivered(rng, loss, tries) {
        return Reaction::ConnectFailed;
    }
    // The probe payload itself.
    if !delivered(rng, loss, tries) {
        return Reaction::Timeout;
    }
    match r {
        Reaction::Timeout => Reaction::Timeout,
        Reaction::ConnectFailed => Reaction::ConnectFailed,
        // One shot: a lost RST is observed as silence.
        Reaction::Rst => {
            if rng.gen_bool(loss) {
                Reaction::Timeout
            } else {
                Reaction::Rst
            }
        }
        Reaction::FinAck => {
            if delivered(rng, loss, tries) {
                Reaction::FinAck
            } else {
                Reaction::Timeout
            }
        }
        Reaction::Data => {
            if delivered(rng, loss, tries) {
                Reaction::Data
            } else {
                Reaction::Timeout
            }
        }
    }
}

/// Deterministic per-(loss, case) stream seed.
fn mix(seed: u64, loss_idx: u64, case_idx: u64) -> u64 {
    seed ^ (loss_idx + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (case_idx + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Re-roll every sample of every row through the wire-fate model.
/// Counts are expanded in taxonomy order (`Reaction: Ord`) so the
/// result never depends on hash-map iteration order.
fn transform_rows(rows: &[MatrixRow], loss: f64, rng: &mut StdRng) -> Vec<MatrixRow> {
    rows.iter()
        .map(|row| {
            let mut out = MatrixRow {
                len: row.len,
                ..Default::default()
            };
            let sorted: BTreeMap<Reaction, usize> =
                row.counts.iter().map(|(&r, &c)| (r, c)).collect();
            for (r, c) in sorted {
                for _ in 0..c {
                    *out.counts
                        .entry(observed_under_loss(r, loss, rng))
                        .or_insert(0) += 1;
                }
            }
            out
        })
        .collect()
}

fn transform_panel(
    panel: &[MatrixReport],
    loss: f64,
    seed: u64,
    loss_idx: u64,
    case_base: u64,
) -> Vec<MatrixReport> {
    panel
        .iter()
        .enumerate()
        .map(|(i, rep)| {
            let mut rng = StdRng::seed_from_u64(mix(seed, loss_idx, case_base + i as u64));
            MatrixReport {
                implementation: rep.implementation,
                method: rep.method,
                nonce_len: rep.nonce_len,
                rows: transform_rows(&rep.rows, loss, &mut rng),
            }
        })
        .collect()
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Impair {
    let fig = fig10::run(scale, seed);
    let mut grids = Vec::with_capacity(LOSS_RATES.len());
    for (li, &(loss, _)) in LOSS_RATES.iter().enumerate() {
        if loss == 0.0 {
            // Byte-identical by construction: the loss-0 grid IS the
            // exp-fig10 rendering.
            grids.push(fig.to_string());
            continue;
        }
        let stream = transform_panel(&fig.stream, loss, seed, li as u64, 0);
        let aead = transform_panel(&fig.aead, loss, seed, li as u64, fig.stream.len() as u64);
        grids.push(Fig10 { stream, aead }.to_string());
    }

    // End-to-end: the §3.1 world at each loss rate, one runner job per
    // rate.
    let conns = scale.pick(200, 1_000);
    let specs: Vec<_> = LOSS_RATES
        .iter()
        .map(|&(loss, label)| {
            move || {
                let cfg = SsRunConfig {
                    connections: conns,
                    conn_interval: Duration::from_secs(20),
                    fleet_pool: 500,
                    seed,
                    impairment: ImpairmentSpec::lossy(loss),
                    probe_retries: 1,
                    ..Default::default()
                };
                let res = shadowsocks_run(&cfg);
                let mut reactions: BTreeMap<Reaction, usize> = BTreeMap::new();
                for p in &res.probes {
                    if let Some(r) = p.reaction {
                        *reactions.entry(r).or_insert(0) += 1;
                    }
                }
                let multi_attempt = res.probes.iter().filter(|p| p.attempts > 1).count();
                (label, res.probes.len(), reactions, multi_attempt)
            }
        })
        .collect();
    let e2e = runner::run_jobs_detailed(specs)
        .into_iter()
        .map(|run| {
            let (label, probes, reactions, multi_attempt) = run.output;
            E2eRow {
                label,
                probes,
                reactions,
                multi_attempt,
                stats: run.stats,
            }
        })
        .collect();

    Impair { grids, e2e }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_zero_grid_is_fig10_verbatim() {
        let result = run(Scale::Quick, 13);
        let fig = fig10::run(Scale::Quick, 13);
        assert_eq!(result.grids[0], fig.to_string());
    }

    #[test]
    fn loss_turns_rsts_into_timeouts_monotonically() {
        // Pure-RST input: the observed RST share should fall as loss
        // rises, replaced by TIMEOUT (lost RST) and CONNFAIL (lost
        // handshake beyond the budget).
        let base = MatrixRow {
            len: 51,
            counts: [(Reaction::Rst, 400usize)].into_iter().collect(),
        };
        let mut prev = 401usize;
        for (li, &(loss, _)) in LOSS_RATES.iter().enumerate().skip(1) {
            let mut rng = StdRng::seed_from_u64(mix(7, li as u64, 0));
            let out = &transform_rows(std::slice::from_ref(&base), loss, &mut rng)[0];
            let rst = out.counts.get(&Reaction::Rst).copied().unwrap_or(0);
            assert!(rst < prev, "loss {loss}: RST count {rst} not below {prev}");
            assert_eq!(out.total(), 400);
            prev = rst;
        }
    }

    #[test]
    fn timeout_reactions_are_stable_under_loss() {
        // A silent server stays silent: TIMEOUT can only drift to
        // CONNFAIL (handshake exhausted), never to RST/FIN/DATA.
        let base = MatrixRow {
            len: 10,
            counts: [(Reaction::Timeout, 300usize)].into_iter().collect(),
        };
        let mut rng = StdRng::seed_from_u64(mix(7, 3, 1));
        let out = &transform_rows(std::slice::from_ref(&base), 0.05, &mut rng)[0];
        for r in [Reaction::Rst, Reaction::FinAck, Reaction::Data] {
            assert_eq!(out.counts.get(&r), None, "{r:?} appeared from silence");
        }
    }

    #[test]
    fn transform_is_deterministic() {
        let base = MatrixRow {
            len: 51,
            counts: [(Reaction::Rst, 100usize), (Reaction::Timeout, 50)]
                .into_iter()
                .collect(),
        };
        let roll = || {
            let mut rng = StdRng::seed_from_u64(mix(11, 2, 5));
            transform_rows(std::slice::from_ref(&base), 0.01, &mut rng)[0].cell()
        };
        assert_eq!(roll(), roll());
    }
}
