//! Fig 3: cumulative number of probes per prober IP address.
//!
//! Paper shape: 51,837 probes from 12,300 unique addresses; unlike
//! Ensafi et al. 2015 (95% of addresses seen once), more than 75% of
//! addresses sent more than one probe; the busiest address sent 44.

use crate::report::Comparison;
use crate::runs::{shadowsocks_run, SsRunConfig};
use crate::Scale;
use gfw_core::probe::ProbeRecord;
use netsim::packet::Ipv4;
use std::collections::HashMap;

/// Result of the Fig 3 analysis.
pub struct Fig3 {
    /// Probes per address.
    pub per_ip: HashMap<Ipv4, u64>,
    /// Total probes.
    pub total: u64,
}

impl Fig3 {
    /// Unique prober addresses.
    pub fn unique(&self) -> usize {
        self.per_ip.len()
    }

    /// Fraction of addresses with more than one probe.
    pub fn multi_frac(&self) -> f64 {
        if self.per_ip.is_empty() {
            return 0.0;
        }
        self.per_ip.values().filter(|&&c| c > 1).count() as f64 / self.per_ip.len() as f64
    }

    /// Busiest address's probe count.
    pub fn max_count(&self) -> u64 {
        self.per_ip.values().copied().max().unwrap_or(0)
    }

    /// Paper-vs-measured comparison.
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        let ratio = self.unique() as f64 / self.total.max(1) as f64;
        c.add(
            "unique IPs / probes",
            format!("{:.3}", 12_300.0 / 51_837.0),
            format!("{ratio:.3}"),
            (ratio - 0.237).abs() < 0.12,
        );
        c.add(
            "addresses probing more than once",
            ">75%",
            format!("{:.0}%", self.multi_frac() * 100.0),
            self.multi_frac() > 0.5,
        );
        c
    }
}

impl std::fmt::Display for Fig3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 3 — probes per prober IP: {} probes from {} unique addresses (max {} from one)\n",
            self.total,
            self.unique(),
            self.max_count()
        )?;
        // Distribution histogram (count-of-counts).
        let mut dist: HashMap<u64, usize> = HashMap::new();
        for &c in self.per_ip.values() {
            *dist.entry(c).or_insert(0) += 1;
        }
        let mut keys: Vec<u64> = dist.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            writeln!(f, "  {k:>3} probes: {:>6} addresses", dist[&k])?;
        }
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Analyze probe records.
pub fn analyze(probes: &[ProbeRecord]) -> Fig3 {
    let mut per_ip = HashMap::new();
    for p in probes {
        *per_ip.entry(p.src).or_insert(0u64) += 1;
    }
    Fig3 {
        total: probes.len() as u64,
        per_ip,
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig3 {
    let cfg = SsRunConfig {
        connections: scale.pick(2_500, 30_000),
        fleet_pool: scale.pick(1_000, 16_000),
        nr_min_gap: netsim::time::Duration::from_mins(scale.pick(4, 18)),
        seed,
        ..Default::default()
    };
    analyze(&shadowsocks_run(&cfg).probes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_shape_holds() {
        let fig = run(Scale::Quick, 3);
        assert!(fig.total > 30);
        assert!(fig.unique() > 5);
        assert!(
            fig.multi_frac() > 0.3,
            "multi fraction {}",
            fig.multi_frac()
        );
    }
}
