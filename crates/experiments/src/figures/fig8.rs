//! Fig 8: CDF of the payload lengths of replay-based probes (Exp 1.a).
//!
//! Paper shape: trigger lengths are uniform in [1, 1000], but replayed
//! payloads fall between 161 and 999 bytes with a stair-step CDF: in
//! 168–263, 72% of replays have length ≡ 9 (mod 16); in 384–687, 96%
//! have length ≡ 2 (mod 16); 264–383 mixes both.

use crate::report::Comparison;
use crate::runs::{sink_run, SinkExp, SinkRunConfig};
use crate::Scale;
use analysis::stats::Cdf;
use gfw_core::probe::{ProbeKind, ProbeRecord};

/// Result of the Fig 8 analysis.
pub struct Fig8 {
    /// Identical-replay payload lengths.
    pub replay_lens: Vec<usize>,
    /// Trigger connection count.
    pub triggers: usize,
}

impl Fig8 {
    fn rem_share(&self, range: (usize, usize), rem: usize) -> f64 {
        let in_band: Vec<usize> = self
            .replay_lens
            .iter()
            .copied()
            .filter(|&l| (range.0..=range.1).contains(&l))
            .collect();
        if in_band.is_empty() {
            return 0.0;
        }
        in_band.iter().filter(|&&l| l % 16 == rem).count() as f64 / in_band.len() as f64
    }

    /// Comparison with the paper.
    pub fn comparison(&self) -> Comparison {
        let min = self.replay_lens.iter().min().copied().unwrap_or(0);
        let max = self.replay_lens.iter().max().copied().unwrap_or(0);
        let low9 = self.rem_share((168, 263), 9);
        let high2 = self.rem_share((384, 687), 2);
        let mut c = Comparison::new();
        c.add(
            "replay window",
            "161–999 bytes",
            format!("{min}–{max}"),
            min >= 161 && max <= 999,
        );
        // Only 6 of 103 lengths in the low band have remainder 9, so
        // dominance (≥50%) is a ~9× enrichment; the exact 72% needs
        // paper-scale samples to estimate tightly.
        c.add(
            "rem-9 dominates 168–263",
            "72% of replays",
            format!("{:.0}%", low9 * 100.0),
            low9 >= 0.5,
        );
        c.add(
            "rem-2 dominates 384–687",
            "96% of replays",
            format!("{:.0}%", high2 * 100.0),
            high2 >= 0.85,
        );
        let rate = self.replay_lens.len() as f64 / self.triggers.max(1) as f64;
        c.add(
            "identical-replay rate per connection",
            "0.30% (2835/942457)",
            format!("{:.2}%", rate * 100.0),
            (0.0005..0.02).contains(&rate),
        );
        c
    }
}

impl std::fmt::Display for Fig8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 8 — replayed payload lengths ({} replays over {} trigger connections)\n",
            self.replay_lens.len(),
            self.triggers
        )?;
        let cdf = Cdf::new(self.replay_lens.iter().map(|&l| l as f64).collect());
        if !cdf.is_empty() {
            for (x, y) in cdf.curve(11) {
                writeln!(f, "  length ≤ {:>4}: {:>5.1}%", x as u32, y * 100.0)?;
            }
        }
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Analyze probe records (identical replays only, like the paper's
/// orange line). Lengths are deduplicated per stored payload
/// (trigger id): one payload can be replayed up to 47 times, and
/// occurrence-weighted shares are dominated by that variance at small
/// scale.
pub fn analyze(probes: &[ProbeRecord], triggers: usize) -> Fig8 {
    let mut seen = std::collections::HashSet::new();
    let replay_lens = probes
        .iter()
        .filter(|p| p.kind == ProbeKind::R1)
        .filter(|p| p.trigger_id.is_none_or(|t| seen.insert(t)))
        .map(|p| p.payload_len)
        .collect();
    Fig8 {
        replay_lens,
        triggers,
    }
}

/// Run Exp 1.a and analyze.
pub fn run(scale: Scale, seed: u64) -> Fig8 {
    let cfg = SinkRunConfig {
        exp: SinkExp::Exp1a,
        connections: scale.pick(40_000, 400_000),
        conn_interval: netsim::time::Duration::from_secs(1),
        seed,
    };
    let res = sink_run(&cfg);
    analyze(&res.probes, res.triggers.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stair_step_shape_holds() {
        let fig = run(Scale::Quick, 11);
        assert!(
            fig.replay_lens.len() > 40,
            "{} replays",
            fig.replay_lens.len()
        );
        assert!(fig.comparison().all_hold(), "\n{fig}");
    }
}
