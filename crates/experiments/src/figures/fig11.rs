//! Fig 11: the intensity of active probing diminishes while brdgrd is
//! active (§7.1).
//!
//! Paper shape: over 403 hours with 16 connections every 5 minutes,
//! probing drops to (near) zero within a few hours of enabling brdgrd
//! and resumes when it is disabled.

use crate::report::Comparison;
use crate::runs::{brdgrd_run, BrdgrdRunConfig, BrdgrdRunResult};
use crate::Scale;

/// Result of the Fig 11 analysis.
pub struct Fig11 {
    /// The run output.
    pub run: BrdgrdRunResult,
    /// Hours of settling time excluded at each window edge (probes
    /// triggered just before a toggle may straggle in after it).
    pub settle_hours: u64,
}

impl Fig11 {
    /// Mean probes/hour while brdgrd was active (after settling).
    pub fn active_rate(&self) -> f64 {
        self.mean_rate(true)
    }

    /// Mean probes/hour while brdgrd was inactive (after settling).
    pub fn inactive_rate(&self) -> f64 {
        self.mean_rate(false)
    }

    fn mean_rate(&self, want_active: bool) -> f64 {
        let mut total = 0u64;
        let mut hours = 0u64;
        'hour: for (h, &count) in self.run.probes_per_hour.iter().enumerate() {
            let h = h as u64;
            let active = self
                .run
                .active_windows
                .iter()
                .any(|&(s, e)| h >= s && h < e);
            if active != want_active {
                continue;
            }
            // Skip hours too close after a toggle.
            for &(s, e) in &self.run.active_windows {
                if (h >= s && h < s + self.settle_hours) || (h >= e && h < e + self.settle_hours) {
                    continue 'hour;
                }
            }
            total += count as u64;
            hours += 1;
        }
        if hours == 0 {
            return 0.0;
        }
        total as f64 / hours as f64
    }

    /// Comparison with the paper.
    pub fn comparison(&self) -> Comparison {
        let active = self.active_rate();
        let inactive = self.inactive_rate();
        let mut c = Comparison::new();
        c.add(
            "probing while brdgrd active",
            "≈0 probes/hour",
            format!("{active:.2}"),
            active < 0.35 * inactive.max(0.1),
        );
        c.add(
            "probing while brdgrd inactive",
            "5–25 probes/hour",
            format!("{inactive:.2}"),
            inactive > 0.5,
        );
        c
    }
}

impl std::fmt::Display for Fig11 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 11 — probes per hour with brdgrd toggled\n")?;
        for (h, &count) in self.run.probes_per_hour.iter().enumerate() {
            let h64 = h as u64;
            let active = self
                .run
                .active_windows
                .iter()
                .any(|&(s, e)| h64 >= s && h64 < e);
            let bar = "#".repeat(count.min(60) as usize);
            writeln!(
                f,
                "  h{h:>3} {} {:>3} {}",
                if active { "[brdgrd]" } else { "        " },
                count,
                bar
            )?;
        }
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Run the experiment: brdgrd active in the middle third.
pub fn run(scale: Scale, seed: u64) -> Fig11 {
    let hours = scale.pick(60, 403);
    let third = hours / 3;
    let cfg = BrdgrdRunConfig {
        hours,
        active_windows: vec![(third, 2 * third)],
        conns_per_5min: 16,
        seed,
    };
    Fig11 {
        run: brdgrd_run(&cfg),
        settle_hours: 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brdgrd_suppresses_probing() {
        let fig = run(Scale::Quick, 15);
        assert!(
            fig.inactive_rate() > 0.5,
            "inactive rate {}",
            fig.inactive_rate()
        );
        assert!(
            fig.active_rate() < 0.35 * fig.inactive_rate(),
            "active {} vs inactive {}",
            fig.active_rate(),
            fig.inactive_rate()
        );
    }
}
