//! Fig 2: occurrences of random probes (NR1, NR2) by length.
//!
//! Paper shape: NR1 lengths fall in trios (n−1, n, n+1) for n ∈
//! {8, 12, 16, 22, 33, 41, 49}, roughly evenly; NR2 probes are exactly
//! 221 bytes and about three times as common as all NR1 probes
//! together.

use crate::report::{Comparison, Table};
use crate::runs::{shadowsocks_run, SsRunConfig};
use crate::Scale;
use analysis::stats::Histogram;
use gfw_core::probe::{is_nr1_len, ProbeKind, ProbeRecord, NR2_LEN};

/// Result of the Fig 2 analysis.
pub struct Fig2 {
    /// Histogram of NR1 lengths.
    pub nr1_hist: Histogram,
    /// NR2 count.
    pub nr2_count: u64,
    /// Total NR1 count.
    pub nr1_count: u64,
}

impl Fig2 {
    /// NR2-to-NR1 ratio.
    pub fn ratio(&self) -> f64 {
        if self.nr1_count == 0 {
            return f64::INFINITY;
        }
        self.nr2_count as f64 / self.nr1_count as f64
    }

    /// Paper-vs-measured comparison.
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        let all_trios = self
            .nr1_hist
            .sorted()
            .iter()
            .all(|&(len, _)| is_nr1_len(len as usize));
        c.add("NR1 lengths confined to trios", "yes", all_trios, all_trios);
        c.add(
            "NR2 ≈ 3× all NR1 together",
            "≈3",
            format!("{:.2}", self.ratio()),
            self.ratio() > 1.5 && self.ratio() < 6.0,
        );
        c
    }
}

impl std::fmt::Display for Fig2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 2 — random probe occurrences by length\n")?;
        let mut t = Table::new(&["length (bytes)", "type", "count"]);
        for (len, count) in self.nr1_hist.sorted() {
            t.row(&[len.to_string(), "NR1".into(), count.to_string()]);
        }
        t.row(&[
            NR2_LEN.to_string(),
            "NR2".into(),
            self.nr2_count.to_string(),
        ]);
        write!(f, "{}", t.render())?;
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Analyze probe records.
pub fn analyze(probes: &[ProbeRecord]) -> Fig2 {
    let mut nr1_hist = Histogram::new();
    let mut nr2 = 0u64;
    let mut nr1 = 0u64;
    for p in probes {
        match p.kind {
            ProbeKind::Nr1 => {
                nr1 += 1;
                nr1_hist.add(p.payload_len as i64);
            }
            ProbeKind::Nr2 => nr2 += 1,
            _ => {}
        }
    }
    Fig2 {
        nr1_hist,
        nr2_count: nr2,
        nr1_count: nr1,
    }
}

/// Run the experiment at the given scale.
pub fn run(scale: Scale, seed: u64) -> Fig2 {
    let cfg = SsRunConfig {
        connections: scale.pick(2_500, 30_000),
        conn_interval: netsim::time::Duration::from_secs(scale.pick(20, 30)),
        fleet_pool: scale.pick(1_000, 8_000),
        nr_min_gap: netsim::time::Duration::from_mins(scale.pick(4, 18)),
        seed,
        ..Default::default()
    };
    analyze(&shadowsocks_run(&cfg).probes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_quick_scale() {
        let fig = run(Scale::Quick, 2);
        assert!(fig.nr2_count > 0, "no NR2 probes");
        assert!(fig.nr1_count > 0, "no NR1 probes");
        assert!(fig.comparison().all_hold(), "\n{fig}");
    }
}
