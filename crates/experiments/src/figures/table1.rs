//! Table 1: the timeline of the paper's three experiment campaigns.
//!
//! Purely descriptive in the paper; here it doubles as the registry of
//! the simulated campaigns and their virtual time spans, and the other
//! modules pull their defaults from it.

use crate::report::Table;
use netsim::time::Duration;

/// One campaign row.
#[derive(Clone, Copy, Debug)]
pub struct Campaign {
    /// Campaign name as in Table 1.
    pub name: &'static str,
    /// The paper's wall-clock span.
    pub paper_span: &'static str,
    /// Virtual duration we simulate at `Scale::Paper`.
    pub sim_span: Duration,
    /// Section of the paper it supports.
    pub section: &'static str,
}

/// The three campaigns of Table 1.
pub const CAMPAIGNS: [Campaign; 3] = [
    Campaign {
        name: "Shadowsocks",
        paper_span: "Sept 29, 2019 - Jan 21, 2020 (4 months)",
        sim_span: Duration::from_hours(4 * 30 * 24),
        section: "§3.1",
    },
    Campaign {
        name: "Sink",
        paper_span: "May 16 - 31, 2020 (2 weeks)",
        sim_span: Duration::from_hours(14 * 24),
        section: "§4.1",
    },
    Campaign {
        name: "Brdgrd",
        paper_span: "Nov 2 - 19, 2019 (403 hours)",
        sim_span: Duration::from_hours(403),
        section: "§7.1",
    },
];

/// Render Table 1.
pub fn render() -> String {
    let mut t = Table::new(&["Experiment", "Paper time span", "Simulated span", "Section"]);
    for c in CAMPAIGNS {
        t.row(&[
            c.name.into(),
            c.paper_span.into(),
            format!("{}", c.sim_span),
            c.section.into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_match_paper() {
        assert_eq!(CAMPAIGNS[0].sim_span, Duration::from_hours(2880));
        assert_eq!(CAMPAIGNS[1].sim_span, Duration::from_hours(336));
        assert_eq!(CAMPAIGNS[2].sim_span, Duration::from_hours(403));
    }

    #[test]
    fn renders_all_rows() {
        let r = render();
        assert!(r.contains("Shadowsocks"));
        assert!(r.contains("Sink"));
        assert!(r.contains("Brdgrd"));
        assert!(r.contains("403"));
    }
}
