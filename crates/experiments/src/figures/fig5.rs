//! Fig 5: CDF of TCP source ports of prober SYNs.
//!
//! Paper shape: ~90% of probes come from the default Linux ephemeral
//! range 32768–60999; no port below 1024 (lowest observed 1212,
//! highest 65237).

use crate::report::Comparison;
use crate::runs::{shadowsocks_run, SsRunConfig, SynObs};
use crate::Scale;
use analysis::stats::Cdf;

/// Result of the Fig 5 analysis.
pub struct Fig5 {
    /// Port CDF.
    pub cdf: Cdf,
    /// Fraction inside 32768–60999.
    pub linux_frac: f64,
    /// Lowest port.
    pub min: u16,
    /// Highest port.
    pub max: u16,
}

impl Fig5 {
    /// Comparison with the paper.
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        c.add(
            "fraction in Linux ephemeral range",
            "≈90%",
            format!("{:.0}%", self.linux_frac * 100.0),
            (self.linux_frac - 0.90).abs() < 0.07,
        );
        c.add("no ports below 1024", "≥1024", self.min, self.min >= 1024);
        c.add(
            "ports span beyond the range too",
            "min 1212 / max 65237",
            format!("min {} / max {}", self.min, self.max),
            self.min < 32768 && self.max > 60999,
        );
        c
    }
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 5 — prober source-port CDF ({} SYNs)\n",
            self.cdf.len()
        )?;
        for (x, y) in self.cdf.curve(11) {
            writeln!(f, "  port ≤ {:>5}: {:>5.1}%", x as u32, y * 100.0)?;
        }
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Analyze captured probe SYNs.
pub fn analyze(syns: &[SynObs]) -> Fig5 {
    assert!(!syns.is_empty(), "no probe SYNs captured");
    let ports: Vec<u16> = syns.iter().map(|s| s.sport).collect();
    let linux = ports
        .iter()
        .filter(|&&p| (32768..=60999).contains(&p))
        .count() as f64
        / ports.len() as f64;
    Fig5 {
        cdf: Cdf::new(ports.iter().map(|&p| p as f64).collect()),
        linux_frac: linux,
        min: *ports.iter().min().unwrap(),
        max: *ports.iter().max().unwrap(),
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig5 {
    let cfg = SsRunConfig {
        connections: scale.pick(2_500, 30_000),
        fleet_pool: scale.pick(1_000, 8_000),
        nr_min_gap: netsim::time::Duration::from_mins(scale.pick(4, 18)),
        seed,
        ..Default::default()
    };
    analyze(&shadowsocks_run(&cfg).probe_syns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_shape_holds() {
        let fig = run(Scale::Quick, 7);
        assert!(fig.min >= 1024);
        assert!(
            (fig.linux_frac - 0.9).abs() < 0.1,
            "linux frac {}",
            fig.linux_frac
        );
    }
}
