//! Table 4: the random-data experiment matrix (§4.1) and its §4.2
//! findings.
//!
//! Paper shape: a plain TCP sink that never responds still attracts
//! R1/R2/NR2 probes (Exp 1.a); low-entropy payloads attract
//! significantly fewer (Exp 2); switching the server to responding mode
//! (Exp 1.b) unlocks R3/R4 probes; NR1 never appears in any random-data
//! experiment.

use crate::report::{Comparison, Table};
use crate::runs::{sink_run, SinkExp, SinkRunConfig, SinkRunResult};
use crate::Scale;
use gfw_core::probe::ProbeKind;
use netsim::time::Duration;

/// Result: one row per experiment.
pub struct Table4 {
    /// (experiment, result) pairs.
    pub rows: Vec<(SinkExp, SinkRunResult)>,
}

impl Table4 {
    fn probes_of(&self, exp: SinkExp) -> &SinkRunResult {
        &self.rows.iter().find(|(e, _)| *e == exp).unwrap().1
    }

    /// Comparison with the paper's findings.
    pub fn comparison(&self) -> Comparison {
        let exp1a = self.probes_of(SinkExp::Exp1a);
        let exp1b = self.probes_of(SinkExp::Exp1b);
        let exp2 = self.probes_of(SinkExp::Exp2);
        let mut c = Comparison::new();
        c.add(
            "sink still probed (Exp 1.a)",
            "thousands of probes",
            exp1a.probes.len(),
            exp1a.probes.len() > 10,
        );
        c.add(
            "low entropy probed far less (Exp 2)",
            "significantly fewer",
            format!("{} vs {}", exp2.probes.len(), exp1a.probes.len()),
            (exp2.probes.len() as f64) < 0.55 * exp1a.probes.len() as f64,
        );
        let r34_1a = exp1a
            .probes
            .iter()
            .filter(|p| matches!(p.kind, ProbeKind::R3 | ProbeKind::R4))
            .count();
        let r34_1b = exp1b
            .probes
            .iter()
            .filter(|p| matches!(p.kind, ProbeKind::R3 | ProbeKind::R4))
            .count();
        c.add(
            "R3/R4 only in responding mode (Exp 1.b)",
            "sink: 0, responding: many",
            format!("sink {r34_1a}, responding {r34_1b}"),
            r34_1a == 0 && r34_1b > 0,
        );
        let any_nr1 = self
            .rows
            .iter()
            .any(|(_, r)| r.probes.iter().any(|p| p.kind == ProbeKind::Nr1));
        c.add(
            "NR1 absent from all random-data experiments",
            "absent",
            if any_nr1 { "present" } else { "absent" },
            !any_nr1,
        );
        c
    }
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 4 — random-data experiments\n")?;
        let mut t = Table::new(&[
            "Exp", "Length", "Entropy", "Mode", "conns", "probes", "replay", "R3/R4",
        ]);
        for (exp, r) in &self.rows {
            let (len, ent, mode) = match exp {
                SinkExp::Exp1a => ("[1,1000]", "> 7", "sink"),
                SinkExp::Exp1b => ("[1,1000]", "> 7", "responding"),
                SinkExp::Exp2 => ("[1,1000]", "< 2", "sink"),
                SinkExp::Exp3 => ("[1,2000]", "[0,8]", "sink"),
            };
            let replays = r.probes.iter().filter(|p| p.kind.is_replay()).count();
            let r34 = r
                .probes
                .iter()
                .filter(|p| matches!(p.kind, ProbeKind::R3 | ProbeKind::R4))
                .count();
            t.row(&[
                format!("{exp:?}"),
                len.into(),
                ent.into(),
                mode.into(),
                r.triggers.len().to_string(),
                r.probes.len().to_string(),
                replays.to_string(),
                r34.to_string(),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

/// Run all four experiments, one runner job each.
pub fn run(scale: Scale, seed: u64) -> Table4 {
    let connections = scale.pick(6_000, 120_000);
    let conn_interval = Duration::from_secs(2);
    let specs: Vec<_> = [SinkExp::Exp1a, SinkExp::Exp1b, SinkExp::Exp2, SinkExp::Exp3]
        .into_iter()
        .map(|exp| {
            move || {
                (
                    exp,
                    sink_run(&SinkRunConfig {
                        exp,
                        connections,
                        conn_interval,
                        seed: seed ^ (exp as u64) << 8,
                    }),
                )
            }
        })
        .collect();
    Table4 {
        rows: crate::runner::run_jobs(specs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_data_findings_hold() {
        let t = run(Scale::Quick, 10);
        assert!(t.comparison().all_hold(), "\n{t}");
    }
}
