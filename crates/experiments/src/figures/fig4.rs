//! Fig 4: overlap in prober source addresses across datasets collected
//! years apart (Ensafi et al. 2015: ~22,000; Dunna et al. 2018: 934;
//! this paper: 12,300).
//!
//! Paper shape: the three sets overlap only slightly (tens to a few
//! hundred addresses), evidence of high churn in the prober pool. We
//! reproduce it by sampling the fleet in three epochs with heavy churn
//! between them.

use crate::report::Comparison;
use crate::Scale;
use analysis::overlap::{venn3, Venn3};
use gfw_core::fleet::{Fleet, FleetConfig};
use netsim::packet::Ipv4;
use netsim::sim::{SimConfig, Simulator};
use netsim::time::SimTime;
use std::collections::HashSet;

/// Result of the epoch-overlap experiment.
pub struct Fig4 {
    /// Venn regions (A = 2015-like epoch, B = 2018-like, C = ours).
    pub venn: Venn3,
}

impl Fig4 {
    /// Comparison with the paper's qualitative finding.
    pub fn comparison(&self) -> Comparison {
        let mut c = Comparison::new();
        let ab = self.venn.ab + self.venn.abc;
        let ac = self.venn.ac + self.venn.abc;
        let bc = self.venn.bc + self.venn.abc;
        let a = self.venn.a_total().max(1);
        let small = |x: usize, base: usize| (x as f64 / base as f64) < 0.10;
        c.add(
            "A∩B small relative to sets",
            "slight overlap",
            format!("{ab}"),
            small(ab, a),
        );
        c.add(
            "A∩C small relative to sets",
            "slight overlap",
            format!("{ac}"),
            small(ac, self.venn.c_total().max(1)),
        );
        c.add(
            "B∩C small relative to sets",
            "slight overlap",
            format!("{bc}"),
            small(bc, self.venn.c_total().max(1)),
        );
        c
    }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = &self.venn;
        writeln!(f, "Fig 4 — prober address overlap across epochs\n")?;
        writeln!(f, "  |A| (2015-like) = {}", v.a_total())?;
        writeln!(f, "  |B| (2018-like) = {}", v.b_total())?;
        writeln!(f, "  |C| (ours)      = {}", v.c_total())?;
        writeln!(
            f,
            "  A∩B only = {}, A∩C only = {}, B∩C only = {}, A∩B∩C = {}",
            v.ab, v.ac, v.bc, v.abc
        )?;
        writeln!(f)?;
        write!(f, "{}", self.comparison().render())
    }
}

fn collect_epoch(fleet: &mut Fleet, probes: usize) -> HashSet<Ipv4> {
    (0..probes)
        .map(|_| fleet.assign(SimTime::ZERO).ip)
        .collect()
}

/// Run the experiment: three epochs, heavy churn between them.
///
/// Each epoch is an independent runner job that re-derives its exact
/// fleet state from the seed by replaying the earlier epochs' draws and
/// churn steps — redundant compute, identical bytes, and the epochs run
/// concurrently.
pub fn run(scale: Scale, seed: u64) -> Fig4 {
    let pool = scale.pick(6_000, 60_000);
    // Epoch sizes scaled from the paper's dataset sizes.
    let scale_div = scale.pick(20, 1);
    let sizes = [90_000 / scale_div, 4_000 / scale_div, 52_000 / scale_div];
    let churn = [0.01, 0.02];
    let specs: Vec<_> = (0..sizes.len())
        .map(|k| {
            move || {
                let mut sim = Simulator::new(SimConfig::default(), seed);
                let mut fleet = Fleet::install(
                    &mut sim,
                    FleetConfig {
                        pool_size: pool,
                        ..Default::default()
                    },
                    seed,
                );
                for (&size, &retain) in sizes.iter().zip(churn.iter()).take(k) {
                    let _ = collect_epoch(&mut fleet, size);
                    fleet.churn_epoch(retain);
                }
                collect_epoch(&mut fleet, sizes[k])
            }
        })
        .collect();
    let epochs = crate::runner::run_jobs(specs);
    Fig4 {
        venn: venn3(&epochs[0], &epochs[1], &epochs[2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlaps_are_small() {
        let fig = run(Scale::Quick, 5);
        assert!(fig.venn.a_total() > 100);
        assert!(fig.venn.c_total() > 100);
        assert!(fig.comparison().all_hold(), "\n{fig}");
        // But not zero everywhere — churn retains a sliver.
        let any_overlap = fig.venn.ab + fig.venn.ac + fig.venn.bc + fig.venn.abc;
        assert!(any_overlap > 0, "expected a small non-zero overlap");
    }
}
