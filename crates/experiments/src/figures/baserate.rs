//! Extension: the base-rate experiment.
//!
//! The paper's §4.3 warns that "the detection strategies are prone to
//! false positives" but never measures what that costs at realistic
//! base rates — live traffic where Shadowsocks is one flow in
//! thousands. This experiment runs that sweep: a fixed background
//! population drawn from the protocol-profile library (HTTP/1.1,
//! TLS 1.2/1.3, SSH, DNS-over-TCP, QUIC-shaped — see
//! `trafficgen::profiles`) with Shadowsocks flows interleaved at base
//! rates from 1:10 down to 1:100,000, against the full passive detector
//! and prober fleet.
//!
//! Reported per rate: the detector's store-decision confusion counters
//! ([`gfw_core::VerdictCounters`]), the derived precision/recall, the
//! false-positive composition by background protocol, and how much of
//! the probe budget real Shadowsocks flows actually receive.
//!
//! The GFW runs observe-only (`blocking.sensitivity = 0`): blocking
//! would RST background relays mid-sweep and change what later flows
//! experience, conflating the detector's precision with the blocking
//! policy's. The deviation is recorded in EXPERIMENTS.md.
//!
//! Everything rendered here is engine-invariant: the mix apps draw all
//! payload bytes from per-connection seeded RNGs, so the packet and
//! hybrid engines (and any `--jobs` count) produce byte-identical
//! tables — enforced by `tests/baserate_determinism.rs`.

use crate::report::Table;
use crate::Scale;
use gfw_core::{Gfw, GfwConfig, VerdictCounters};
use netsim::{EngineMode, SimConfig, Simulator};
use trafficgen::{MixSpec, TrafficMix};

/// The swept base rates, with fixed labels so golden tables never
/// depend on locale-style formatting.
pub const BASE_RATES: [(u64, &str); 5] = [
    (10, "1:10"),
    (100, "1:100"),
    (1_000, "1:1,000"),
    (10_000, "1:10,000"),
    (100_000, "1:100,000"),
];

/// Outcome of one mix run at one base rate.
pub struct RatePoint {
    /// Fixed rate label from [`BASE_RATES`].
    pub label: &'static str,
    /// Base-rate denominator.
    pub base_rate: u64,
    /// Background flows scheduled.
    pub background: usize,
    /// Shadowsocks flows scheduled.
    pub ss_flows: usize,
    /// Store-decision confusion counters.
    pub verdicts: VerdictCounters,
    /// Stored payloads per background protocol, in profile order.
    pub stored_by_proto: Vec<(&'static str, u64)>,
    /// Stored payloads whose destination was the Shadowsocks server.
    pub stored_ss: u64,
    /// Probes launched in total.
    pub probes_total: usize,
    /// Probes aimed at the Shadowsocks server.
    pub probes_to_ss: usize,
}

/// Run the mix once at one base rate and harvest the detector's
/// evaluation counters.
pub fn measure(engine: EngineMode, background: usize, base_rate: u64, seed: u64) -> RatePoint {
    let sim_config = SimConfig {
        engine,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(sim_config, seed);
    let mut gfw_config = GfwConfig::default();
    // The default 16k-prober pool is sized for blocking studies; the
    // sweep only needs enough probers to never starve the scheduler.
    gfw_config.fleet.pool_size = 3_000;
    // Observe-only: measure the detector, not the blocking policy.
    gfw_config.blocking.sensitivity = 0.0;
    let gfw = Gfw::install(&mut sim, gfw_config, seed ^ 0x6F3);

    let spec = MixSpec {
        background_flows: background,
        base_rate,
        seed: seed ^ 0x5EED,
        ..MixSpec::default()
    };
    let handles = TrafficMix::install(&mut sim, &spec);
    gfw.state
        .borrow_mut()
        .label_shadowsocks_server(handles.ss_server.0);

    sim.run();
    crate::runner::record_sim_stats(&sim.stats);

    let st = gfw.state.borrow();
    let stored_by_proto = handles
        .servers
        .iter()
        .map(|(name, addr)| (*name, st.stored_towards(*addr)))
        .collect();
    let probes = st.probes();
    let probes_to_ss = probes
        .iter()
        .filter(|r| r.server == handles.ss_server)
        .count();
    RatePoint {
        label: "",
        base_rate,
        background,
        ss_flows: handles.ss_flows,
        verdicts: st.verdict_counters(),
        stored_by_proto,
        stored_ss: st.stored_towards(handles.ss_server),
        probes_total: probes.len(),
        probes_to_ss,
    }
}

/// The full sweep.
pub struct BaserateResult {
    /// Background flows per point.
    pub background: usize,
    /// One point per entry of [`BASE_RATES`], in order.
    pub points: Vec<RatePoint>,
}

/// Format an optional ratio with a fixed em-dash for "undefined".
fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "—".to_string(),
    }
}

impl std::fmt::Display for BaserateResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Base-rate sweep: {} background flows per point \
             (http/tls1.2/tls1.3/ssh/dns-tcp/quic-like mix), observe-only GFW",
            self.background,
        )?;
        writeln!(f)?;
        let mut t = Table::new(&[
            "rate",
            "ss flows",
            "inspected",
            "exempt",
            "TP",
            "FP",
            "FN",
            "precision",
            "recall",
            "probes",
            "ss probes",
        ]);
        for p in &self.points {
            t.row(&[
                p.label.to_string(),
                p.ss_flows.to_string(),
                p.verdicts.inspected.to_string(),
                p.verdicts.exempt.to_string(),
                p.verdicts.stored_true.to_string(),
                p.verdicts.stored_false.to_string(),
                p.verdicts.missed_true.to_string(),
                fmt_opt(p.verdicts.precision()),
                fmt_opt(p.verdicts.recall()),
                p.probes_total.to_string(),
                p.probes_to_ss.to_string(),
            ]);
        }
        write!(f, "{}", t.render())?;

        writeln!(
            f,
            "\nfalse-positive composition (stored payloads by destination):\n"
        )?;
        let proto_names: Vec<&str> = self.points[0]
            .stored_by_proto
            .iter()
            .map(|(name, _)| *name)
            .collect();
        let mut headers = vec!["rate"];
        headers.extend(proto_names.iter().copied());
        headers.push("shadowsocks");
        let mut fp = Table::new(&headers);
        for p in &self.points {
            let mut row = vec![p.label.to_string()];
            row.extend(p.stored_by_proto.iter().map(|(_, n)| n.to_string()));
            row.push(p.stored_ss.to_string());
            fp.row(&row);
        }
        write!(f, "{}", fp.render())?;

        writeln!(
            f,
            "\nAt low base rates the probe budget is spent almost entirely on\n\
             QUIC-shaped false positives: every stored payload costs replay\n\
             probes whether or not the destination runs Shadowsocks.\n\
             (wall-clock and peak-RSS measurements live in BENCH_baserate.json,\n\
             written by exp-baserate --bench; this output holds only seed-pure\n\
             counters)"
        )
    }
}

/// Run the sweep: one mix population per base rate, each point an
/// independent runner job.
pub fn run(scale: Scale, seed: u64) -> BaserateResult {
    let background = scale.pick(2_000, 1_000_000);
    let engine = crate::engine_mode();
    let specs: Vec<_> = BASE_RATES
        .iter()
        .map(|&(rate, label)| {
            move || {
                let point_seed = seed ^ rate.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut p = measure(engine, background, rate, point_seed);
                p.label = label;
                p
            }
        })
        .collect();
    let points = crate::runner::run_jobs(specs);
    BaserateResult { background, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_flow_is_inspected_exactly_once() {
        let r = run(Scale::Quick, 11);
        for p in &r.points {
            assert_eq!(
                p.verdicts.inspected,
                (p.background + p.ss_flows) as u64,
                "{}",
                p.label
            );
            // The confusion counters partition the inspected flows.
            let sum = p.verdicts.stored_true
                + p.verdicts.stored_false
                + p.verdicts.missed_true
                + p.verdicts.passed_false;
            assert_eq!(sum, p.verdicts.inspected, "{}", p.label);
        }
    }

    #[test]
    fn detector_finds_shadowsocks_at_high_base_rates() {
        let r = run(Scale::Quick, 11);
        let densest = &r.points[0];
        assert_eq!(densest.base_rate, 10);
        assert!(densest.verdicts.stored_true > 0, "no TP at 1:10");
        assert!(densest.stored_ss > 0);
        assert!(densest.probes_to_ss > 0);
        // Recall is a per-flow store probability (~8%) independent of
        // the base rate; precision must not be degenerate at 1:10.
        let prec = densest.verdicts.precision().expect("positives at 1:10");
        assert!(prec > 0.5, "precision {prec} at 1:10");
    }

    #[test]
    fn false_positives_come_from_the_quic_shaped_profile() {
        let r = run(Scale::Quick, 11);
        for p in &r.points {
            for (name, stored) in &p.stored_by_proto {
                if *name != "quic-like" {
                    assert_eq!(*stored, 0, "{}: {name} stored {stored}", p.label);
                }
            }
            assert_eq!(
                p.verdicts.stored_false,
                p.stored_by_proto.iter().map(|(_, n)| n).sum::<u64>(),
                "{}",
                p.label
            );
        }
    }

    #[test]
    fn rendering_is_deterministic_across_job_counts() {
        let a = {
            crate::runner::set_jobs(1);
            run(Scale::Quick, 13).to_string()
        };
        let b = {
            crate::runner::set_jobs(2);
            run(Scale::Quick, 13).to_string()
        };
        crate::runner::set_jobs(0);
        assert_eq!(a, b);
    }
}
