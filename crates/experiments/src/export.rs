//! CSV export of probe logs and distributions, so downstream users can
//! plot the regenerated figures with their own tooling (the paper's
//! authors released raw data for the same reason).

use gfw_core::probe::ProbeRecord;

/// Render the probe log as CSV (header + one row per probe).
pub fn probes_csv(probes: &[ProbeRecord]) -> String {
    let mut out = String::from(
        "kind,sent_at_secs,trigger_delay_secs,trigger_id,payload_len,src,src_port,process,reaction\n",
    );
    for p in probes {
        let reaction = p
            .reaction
            .map(|r| format!("{r:?}"))
            .unwrap_or_else(|| "pending".into());
        out.push_str(&format!(
            "{:?},{:.3},{},{},{},{},{},{},{}\n",
            p.kind,
            p.sent_at.as_secs_f64(),
            p.trigger_delay
                .map(|d| format!("{:.3}", d.as_secs_f64()))
                .unwrap_or_default(),
            p.trigger_id.map(|t| t.to_string()).unwrap_or_default(),
            p.payload_len,
            p.src,
            p.src_port,
            p.process,
            reaction
        ));
    }
    out
}

/// Render an empirical CDF as `value,fraction` CSV.
pub fn cdf_csv(cdf: &analysis::stats::Cdf, points: usize) -> String {
    let mut out = String::from("value,cum_fraction\n");
    for (x, y) in cdf.curve(points) {
        out.push_str(&format!("{x:.6},{y:.6}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::{shadowsocks_run, SsRunConfig};
    use netsim::time::Duration;

    #[test]
    fn probe_csv_roundtrips_row_count() {
        let res = shadowsocks_run(&SsRunConfig {
            connections: 300,
            conn_interval: Duration::from_secs(20),
            fleet_pool: 300,
            nr_min_gap: Duration::from_mins(4),
            seed: 91,
            ..Default::default()
        });
        let csv = probes_csv(&res.probes);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), res.probes.len() + 1);
        assert!(lines[0].starts_with("kind,"));
        // Every row has the full column count.
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 9, "{l}");
        }
    }

    #[test]
    fn cdf_csv_shape() {
        let cdf = analysis::stats::Cdf::new(vec![1.0, 2.0, 3.0]);
        let csv = cdf_csv(&cdf, 4);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.ends_with("3.000000,1.000000\n"));
    }
}
