//! Binary regenerating Fig 8 (replayed payload lengths) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig8;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 8 (replayed payload lengths) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig8::run(scale, seed);
    println!("{result}");
}
