//! Base-rate sweep driver: detector precision/recall against the
//! protocol-profile background mix, plus the machine-facing bench.
//!
//! Modes:
//!
//! * `exp-baserate` — render the sweep table (Quick scale; pass
//!   `--paper` for the 1M-background-flows-per-point version). Output
//!   is seed-pure and engine-invariant; the golden snapshot lives in
//!   `tests/golden/exp-baserate.txt`.
//! * `exp-baserate --quick` — in-process smoke run: one mix point
//!   under the hybrid engine, printing a one-line summary. Used by
//!   `ci.sh`.
//! * `exp-baserate --bench [--out <path>]` — wall-clock bench:
//!   re-runs the mix in child processes (one per configuration, so
//!   each peak-RSS reading is isolated) and writes
//!   `BENCH_baserate.json` with flows/sec and peak RSS for
//!   100k-flow mixes under both engines plus the 1M-flow mix under
//!   the hybrid engine.
//! * `exp-baserate --measure <engine> <flows>` — child mode: runs one
//!   configuration and prints `key=value` lines for the parent.

use experiments::figures::baserate;
use experiments::runner;
use experiments::Scale;
use netsim::EngineMode;

const SEED: u64 = 2020;

/// Base rate used by the bench configurations: 1:1,000 sits in the
/// middle of the sweep and keeps the Shadowsocks side non-trivial.
const BENCH_BASE_RATE: u64 = 1_000;

struct Config {
    engine: EngineMode,
    flows: usize,
    /// JSON key stem, e.g. `mix_100k_hybrid`.
    stem: &'static str,
}

const CONFIGS: &[Config] = &[
    Config {
        engine: EngineMode::Packet,
        flows: 100_000,
        stem: "mix_100k_packet",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 100_000,
        stem: "mix_100k_hybrid",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 1_000_000,
        stem: "mix_1m_hybrid",
    },
];

/// One measured configuration, as reported by a `--measure` child.
struct Row {
    stem: &'static str,
    flows: usize,
    inspected: u64,
    wall_ms: f64,
    flows_per_sec: f64,
    rss_kb: u64,
}

fn engine_name(e: EngineMode) -> &'static str {
    match e {
        EngineMode::Packet => "packet",
        EngineMode::Hybrid => "hybrid",
    }
}

fn run_measure(engine: EngineMode, flows: usize) {
    let started = std::time::Instant::now();
    let p = baserate::measure(engine, flows, BENCH_BASE_RATE, SEED);
    let wall = started.elapsed();
    let total = flows + p.ss_flows;
    let fps = total as f64 / wall.as_secs_f64().max(1e-9);
    println!("flows={total}");
    println!("inspected={}", p.verdicts.inspected);
    println!("wall_ms={:.1}", wall.as_secs_f64() * 1e3);
    println!("flows_per_sec={fps:.1}");
    println!("rss_kb={}", runner::peak_rss_kb());
}

fn parse_kv(output: &str, key: &str) -> Option<f64> {
    output
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.trim().parse().ok())
}

fn spawn_child(cfg: &Config) -> Row {
    let exe = std::env::current_exe().expect("exp-baserate: current_exe");
    let out = std::process::Command::new(exe)
        .arg("--measure")
        .arg(engine_name(cfg.engine))
        .arg(cfg.flows.to_string())
        .output()
        .expect("exp-baserate: spawn child");
    assert!(
        out.status.success(),
        "exp-baserate: child {} failed:\n{}",
        cfg.stem,
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    let get = |k: &str| {
        parse_kv(&text, k)
            .unwrap_or_else(|| panic!("exp-baserate: child {} missing key {k}", cfg.stem))
    };
    Row {
        stem: cfg.stem,
        flows: get("flows") as usize,
        inspected: get("inspected") as u64,
        wall_ms: get("wall_ms"),
        flows_per_sec: get("flows_per_sec"),
        rss_kb: get("rss_kb") as u64,
    }
}

fn write_json(path: &str, rows: &[Row], speedup_100k: f64) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"bench\": \"baserate\",\n");
    s.push_str("  \"mode\": \"full\",\n");
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    for r in rows {
        s.push_str(&format!(
            "  \"{}_flows_per_sec\": {:.1},\n",
            r.stem, r.flows_per_sec
        ));
        s.push_str(&format!("  \"{}_rss_kb\": {},\n", r.stem, r.rss_kb));
        s.push_str(&format!("  \"{}_wall_ms\": {:.1},\n", r.stem, r.wall_ms));
    }
    s.push_str(&format!("  \"speedup_mix_100k\": {speedup_100k:.2}\n"));
    s.push_str("}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("exp-baserate: write {path}: {e}"));
}

fn run_bench(out_path: &str) {
    println!("== exp-baserate bench ==  (seed {SEED}, one child process per configuration)\n");
    let mut rows = Vec::with_capacity(CONFIGS.len());
    for cfg in CONFIGS {
        let row = spawn_child(cfg);
        assert_eq!(
            row.inspected, row.flows as u64,
            "exp-baserate: {} inspected {} of {} flows",
            row.stem, row.inspected, row.flows
        );
        println!(
            "{:<16} {:>9} flows  {:>10.1} ms  {:>10.1} flows/s  {:>9} kB",
            row.stem, row.flows, row.wall_ms, row.flows_per_sec, row.rss_kb
        );
        rows.push(row);
    }

    let packet_100k = rows
        .iter()
        .find(|r| r.stem == "mix_100k_packet")
        .expect("exp-baserate: mix_100k_packet row");
    let hybrid_100k = rows
        .iter()
        .find(|r| r.stem == "mix_100k_hybrid")
        .expect("exp-baserate: mix_100k_hybrid row");
    let speedup = hybrid_100k.flows_per_sec / packet_100k.flows_per_sec.max(1e-9);
    println!("\nspeedup at 100k mixed flows: {speedup:.2}x (hybrid over packet)");

    write_json(out_path, &rows, speedup);
    println!("wrote {out_path}");
}

fn main() {
    runner::configure_from_env();
    let args: Vec<String> = std::env::args().collect();

    if let Some(i) = args.iter().position(|a| a == "--measure") {
        let engine = match args.get(i + 1).map(String::as_str) {
            Some("packet") => EngineMode::Packet,
            Some("hybrid") => EngineMode::Hybrid,
            other => panic!("exp-baserate --measure: bad engine {other:?}"),
        };
        let flows: usize = args
            .get(i + 2)
            .and_then(|v| v.parse().ok())
            .expect("exp-baserate --measure: bad flow count");
        run_measure(engine, flows);
        return;
    }

    if args.iter().any(|a| a == "--bench") {
        let out_path = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_baserate.json".to_string());
        run_bench(&out_path);
        return;
    }

    if args.iter().any(|a| a == "--quick") {
        let started = std::time::Instant::now();
        let p = baserate::measure(EngineMode::Hybrid, 5_000, BENCH_BASE_RATE, SEED);
        let wall = started.elapsed();
        assert_eq!(
            p.verdicts.inspected,
            (5_000 + p.ss_flows) as u64,
            "exp-baserate --quick: not every flow inspected"
        );
        println!(
            "exp-baserate quick: 5000 background + {} ss flows (hybrid) in \
             {:.1} ms, {} stored ({} true), {} probes, peak rss {} kB",
            p.ss_flows,
            wall.as_secs_f64() * 1e3,
            p.verdicts.positives(),
            p.verdicts.stored_true,
            p.probes_total,
            runner::peak_rss_kb(),
        );
        return;
    }

    let scale = Scale::from_args();
    println!("== Base-rate sweep (extension) ==  (scale {scale:?}, seed {SEED})\n");
    let result = baserate::run(scale, SEED);
    println!("{result}");
}
