//! Binary regenerating Fig 6 (TSval processes) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig6;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 6 (TSval processes) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig6::run(scale, seed);
    println!("{result}");
}
