//! Binary for Ablation (probe battery size) (reproduction extension).

use experiments::figures::battery;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    println!("== Ablation (probe battery size) ==  (scale {scale:?})\n");
    println!("{}", battery::run(scale, 2020));
}
