//! Binary for S9 (fully-encrypted protocols) (reproduction extension).

use experiments::figures::fep;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    println!("== S9 (fully-encrypted protocols) ==  (scale {scale:?})\n");
    println!("{}", fep::run(scale, 2020));
}
