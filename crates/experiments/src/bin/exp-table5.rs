//! Binary regenerating Table 5 (replay reactions) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::table5;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Table 5 (replay reactions) ==  (scale {scale:?}, seed {seed})\n");
    let result = table5::run(scale, seed);
    println!("{result}");
}
