//! Binary regenerating Fig 9 (entropy vs replay rate) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig9;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 9 (entropy vs replay rate) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig9::run(scale, seed);
    println!("{result}");
}
