//! Binary regenerating S5.2.2 (implementation inference) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::inference;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== S5.2.2 (implementation inference) ==  (scale {scale:?}, seed {seed})\n");
    let result = inference::run(scale, seed);
    println!("{result}");
}
