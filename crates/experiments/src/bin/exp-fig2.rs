//! Binary regenerating Fig 2 (random probe lengths) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig2;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 2 (random probe lengths) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig2::run(scale, seed);
    println!("{result}");
}
