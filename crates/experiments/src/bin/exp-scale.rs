//! Scale bench for the hybrid flow/packet engine.
//!
//! Modes:
//!
//! * `exp-scale` — full bench: re-runs the bulk workload in child
//!   processes (one per engine × flow-count configuration, so each
//!   peak-RSS reading is isolated) and writes `BENCH_scale.json` with
//!   flows/sec and peak RSS at 10k/100k flows for both engines plus
//!   1M flows for the hybrid engine.
//! * `exp-scale --quick` — in-process smoke run: 10k flows under the
//!   hybrid engine, printing a one-line summary. Used by `ci.sh`.
//! * `exp-scale --measure <engine> <flows>` — child mode: runs one
//!   configuration and prints `key=value` lines for the parent.
//!
//! Wall-clock and RSS are machine-facts; everything seed-pure about
//! this workload is rendered by `exp-all --only scale` instead.

use experiments::figures::scale;
use experiments::runner;
use netsim::EngineMode;

const SEED: u64 = 2020;

struct Config {
    engine: EngineMode,
    flows: usize,
    /// JSON key stem, e.g. `hybrid_100k`.
    stem: &'static str,
}

const CONFIGS: &[Config] = &[
    Config {
        engine: EngineMode::Packet,
        flows: 10_000,
        stem: "packet_10k",
    },
    Config {
        engine: EngineMode::Packet,
        flows: 100_000,
        stem: "packet_100k",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 10_000,
        stem: "hybrid_10k",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 100_000,
        stem: "hybrid_100k",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 1_000_000,
        stem: "hybrid_1m",
    },
];

/// One measured configuration, as reported by a `--measure` child.
struct Row {
    stem: &'static str,
    flows: usize,
    completed: u64,
    wall_ms: f64,
    flows_per_sec: f64,
    rss_kb: u64,
    events: u64,
}

fn engine_name(e: EngineMode) -> &'static str {
    match e {
        EngineMode::Packet => "packet",
        EngineMode::Hybrid => "hybrid",
    }
}

fn run_measure(engine: EngineMode, flows: usize) {
    let started = std::time::Instant::now();
    let m = scale::measure(engine, flows, SEED);
    let wall = started.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let fps = flows as f64 / wall.as_secs_f64().max(1e-9);
    println!("flows={flows}");
    println!("completed={}", m.completed);
    println!("wall_ms={wall_ms:.1}");
    println!("flows_per_sec={fps:.1}");
    println!("rss_kb={}", runner::peak_rss_kb());
    println!("events={}", m.stats.events);
}

fn parse_kv(output: &str, key: &str) -> Option<f64> {
    output
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.trim().parse().ok())
}

fn spawn_child(cfg: &Config) -> Row {
    let exe = std::env::current_exe().expect("exp-scale: current_exe");
    let out = std::process::Command::new(exe)
        .arg("--measure")
        .arg(engine_name(cfg.engine))
        .arg(cfg.flows.to_string())
        .output()
        .expect("exp-scale: spawn child");
    assert!(
        out.status.success(),
        "exp-scale: child {} failed:\n{}",
        cfg.stem,
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    let get = |k: &str| {
        parse_kv(&text, k)
            .unwrap_or_else(|| panic!("exp-scale: child {} missing key {k}", cfg.stem))
    };
    Row {
        stem: cfg.stem,
        flows: cfg.flows,
        completed: get("completed") as u64,
        wall_ms: get("wall_ms"),
        flows_per_sec: get("flows_per_sec"),
        rss_kb: get("rss_kb") as u64,
        events: get("events") as u64,
    }
}

fn write_json(path: &str, rows: &[Row], speedup_100k: f64) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"bench\": \"scale\",\n");
    s.push_str("  \"mode\": \"full\",\n");
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    for r in rows {
        s.push_str(&format!(
            "  \"{}_flows_per_sec\": {:.1},\n",
            r.stem, r.flows_per_sec
        ));
        s.push_str(&format!("  \"{}_rss_kb\": {},\n", r.stem, r.rss_kb));
        s.push_str(&format!("  \"{}_wall_ms\": {:.1},\n", r.stem, r.wall_ms));
    }
    s.push_str(&format!("  \"speedup_flows_100k\": {speedup_100k:.2}\n"));
    s.push_str("}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("exp-scale: write {path}: {e}"));
}

fn main() {
    runner::configure_from_env();
    let args: Vec<String> = std::env::args().collect();

    if let Some(i) = args.iter().position(|a| a == "--measure") {
        let engine = match args.get(i + 1).map(String::as_str) {
            Some("packet") => EngineMode::Packet,
            Some("hybrid") => EngineMode::Hybrid,
            other => panic!("exp-scale --measure: bad engine {other:?}"),
        };
        let flows: usize = args
            .get(i + 2)
            .and_then(|v| v.parse().ok())
            .expect("exp-scale --measure: bad flow count");
        run_measure(engine, flows);
        return;
    }

    if args.iter().any(|a| a == "--quick") {
        let started = std::time::Instant::now();
        let m = scale::measure(EngineMode::Hybrid, 10_000, SEED);
        let wall = started.elapsed();
        assert_eq!(
            m.completed, 10_000,
            "exp-scale --quick: not every transfer completed"
        );
        println!(
            "exp-scale quick: 10000 flows (hybrid) in {:.1} ms, {} events, \
             {} promoted, peak rss {} kB",
            wall.as_secs_f64() * 1e3,
            m.stats.events,
            m.stats.flows_promoted,
            runner::peak_rss_kb(),
        );
        return;
    }

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    println!("== exp-scale ==  (seed {SEED}, one child process per configuration)\n");
    let mut rows = Vec::with_capacity(CONFIGS.len());
    for cfg in CONFIGS {
        let row = spawn_child(cfg);
        assert_eq!(
            row.completed, row.flows as u64,
            "exp-scale: {} completed {} of {} transfers",
            row.stem, row.completed, row.flows
        );
        println!(
            "{:<12} {:>9} flows  {:>10.1} ms  {:>10.1} flows/s  {:>9} kB  {:>11} events",
            row.stem, row.flows, row.wall_ms, row.flows_per_sec, row.rss_kb, row.events
        );
        rows.push(row);
    }

    let packet_100k = rows
        .iter()
        .find(|r| r.stem == "packet_100k")
        .expect("exp-scale: packet_100k row");
    let hybrid_100k = rows
        .iter()
        .find(|r| r.stem == "hybrid_100k")
        .expect("exp-scale: hybrid_100k row");
    let speedup = hybrid_100k.flows_per_sec / packet_100k.flows_per_sec.max(1e-9);
    println!("\nspeedup at 100k flows: {speedup:.2}x (hybrid over packet)");

    write_json(&out_path, &rows, speedup);
    println!("wrote {out_path}");
}
