//! Scale bench for the hybrid flow/packet engine.
//!
//! Modes:
//!
//! * `exp-scale` — full bench: re-runs the bulk workload in child
//!   processes (one per engine × flow-count configuration, so each
//!   peak-RSS reading is isolated) and writes `BENCH_scale.json` with
//!   flows/sec and peak RSS at 10k/100k flows for both engines plus
//!   1M flows for the hybrid engine, unsharded and sharded (8 cells at
//!   1, 4 and 8 executor workers).
//! * `exp-scale --quick [--flows N]` — in-process smoke run: N flows
//!   (default 10k) through the sharded executor (4 cells), honouring
//!   `GFWSIM_ENGINE` and `GFWSIM_SHARDS`. Seed-pure counters go to
//!   stdout — byte-identical at any worker count, which is what the
//!   `ci.sh` shard smoke step diffs — while wall-clock and RSS go to
//!   stderr. Used by `ci.sh`.
//! * `exp-scale --measure <engine> <flows> [<cells> <workers>]` —
//!   child mode: runs one configuration and prints `key=value` lines
//!   for the parent.
//!
//! Wall-clock and RSS are machine-facts; everything seed-pure about
//! this workload is rendered by `exp-all --only scale` instead.

use experiments::figures::scale;
use experiments::runner;
use netsim::EngineMode;

const SEED: u64 = 2020;

/// Cell count for the sharded 1M-flow configurations and the quick run.
const SHARD_CELLS: usize = 8;
const QUICK_CELLS: usize = 4;

struct Config {
    engine: EngineMode,
    flows: usize,
    /// Shard cells (0 = unsharded [`scale::measure`] path).
    cells: usize,
    /// Executor worker threads (ignored when `cells` is 0).
    workers: usize,
    /// JSON key stem, e.g. `hybrid_100k`.
    stem: &'static str,
}

const CONFIGS: &[Config] = &[
    Config {
        engine: EngineMode::Packet,
        flows: 10_000,
        cells: 0,
        workers: 0,
        stem: "packet_10k",
    },
    Config {
        engine: EngineMode::Packet,
        flows: 100_000,
        cells: 0,
        workers: 0,
        stem: "packet_100k",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 10_000,
        cells: 0,
        workers: 0,
        stem: "hybrid_10k",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 100_000,
        cells: 0,
        workers: 0,
        stem: "hybrid_100k",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 1_000_000,
        cells: 0,
        workers: 0,
        stem: "hybrid_1m",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 1_000_000,
        cells: SHARD_CELLS,
        workers: 1,
        stem: "hybrid_1m_shards1",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 1_000_000,
        cells: SHARD_CELLS,
        workers: 4,
        stem: "hybrid_1m_shards4",
    },
    Config {
        engine: EngineMode::Hybrid,
        flows: 1_000_000,
        cells: SHARD_CELLS,
        workers: 8,
        stem: "hybrid_1m_shards8",
    },
];

/// One measured configuration, as reported by a `--measure` child.
struct Row {
    stem: &'static str,
    flows: usize,
    completed: u64,
    wall_ms: f64,
    flows_per_sec: f64,
    rss_kb: u64,
    events: u64,
}

fn engine_name(e: EngineMode) -> &'static str {
    match e {
        EngineMode::Packet => "packet",
        EngineMode::Hybrid => "hybrid",
    }
}

fn run_measure(engine: EngineMode, flows: usize, cells: usize, workers: usize) {
    let started = std::time::Instant::now();
    let m = if cells == 0 {
        scale::measure(engine, flows, SEED)
    } else {
        scale::measure_sharded(engine, flows, cells, workers, SEED)
    };
    let wall = started.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let fps = flows as f64 / wall.as_secs_f64().max(1e-9);
    println!("flows={flows}");
    println!("completed={}", m.completed);
    println!("wall_ms={wall_ms:.1}");
    println!("flows_per_sec={fps:.1}");
    println!("rss_kb={}", runner::peak_rss_kb());
    println!("events={}", m.stats.events);
}

fn parse_kv(output: &str, key: &str) -> Option<f64> {
    output
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.trim().parse().ok())
}

fn spawn_child(cfg: &Config) -> Row {
    let exe = std::env::current_exe().expect("exp-scale: current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--measure")
        .arg(engine_name(cfg.engine))
        .arg(cfg.flows.to_string());
    if cfg.cells > 0 {
        cmd.arg(cfg.cells.to_string()).arg(cfg.workers.to_string());
    }
    let out = cmd.output().expect("exp-scale: spawn child");
    assert!(
        out.status.success(),
        "exp-scale: child {} failed:\n{}",
        cfg.stem,
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    let get = |k: &str| {
        parse_kv(&text, k)
            .unwrap_or_else(|| panic!("exp-scale: child {} missing key {k}", cfg.stem))
    };
    Row {
        stem: cfg.stem,
        flows: cfg.flows,
        completed: get("completed") as u64,
        wall_ms: get("wall_ms"),
        flows_per_sec: get("flows_per_sec"),
        rss_kb: get("rss_kb") as u64,
        events: get("events") as u64,
    }
}

fn write_json(path: &str, rows: &[Row], speedup_100k: f64, speedup_shards8: f64) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"bench\": \"scale\",\n");
    s.push_str("  \"mode\": \"full\",\n");
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!(
        "  \"parallelism\": {},\n",
        runner::default_parallelism()
    ));
    for r in rows {
        s.push_str(&format!(
            "  \"{}_flows_per_sec\": {:.1},\n",
            r.stem, r.flows_per_sec
        ));
        s.push_str(&format!("  \"{}_rss_kb\": {},\n", r.stem, r.rss_kb));
        s.push_str(&format!("  \"{}_wall_ms\": {:.1},\n", r.stem, r.wall_ms));
    }
    s.push_str(&format!(
        "  \"speedup_shards8_1m\": {speedup_shards8:.2},\n"
    ));
    s.push_str(&format!("  \"speedup_flows_100k\": {speedup_100k:.2}\n"));
    s.push_str("}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("exp-scale: write {path}: {e}"));
}

fn main() {
    runner::configure_from_env();
    let args: Vec<String> = std::env::args().collect();

    if let Some(i) = args.iter().position(|a| a == "--measure") {
        let engine = match args.get(i + 1).map(String::as_str) {
            Some("packet") => EngineMode::Packet,
            Some("hybrid") => EngineMode::Hybrid,
            other => panic!("exp-scale --measure: bad engine {other:?}"),
        };
        let flows: usize = args
            .get(i + 2)
            .and_then(|v| v.parse().ok())
            .expect("exp-scale --measure: bad flow count");
        let cells: usize = args.get(i + 3).and_then(|v| v.parse().ok()).unwrap_or(0);
        let workers: usize = args.get(i + 4).and_then(|v| v.parse().ok()).unwrap_or(1);
        run_measure(engine, flows, cells, workers);
        return;
    }

    if args.iter().any(|a| a == "--quick") {
        let flows: usize = args
            .iter()
            .position(|a| a == "--flows")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(10_000);
        let engine = experiments::engine_mode();
        let workers = experiments::shards();
        let started = std::time::Instant::now();
        let m = scale::measure_sharded(engine, flows, QUICK_CELLS, workers, SEED);
        let wall = started.elapsed();
        assert_eq!(
            m.completed, flows as u64,
            "exp-scale --quick: not every transfer completed"
        );
        // Stdout carries only seed-pure counters: the ci.sh shard smoke
        // step diffs this line across GFWSIM_SHARDS values, and the
        // shard_determinism suite diffs it across the full worker/
        // engine/jobs grid. Machine-facts go to stderr.
        println!(
            "exp-scale quick: engine={} flows={} cells={} completed={} \
             events={} promoted={}",
            engine_name(engine),
            flows,
            QUICK_CELLS,
            m.completed,
            m.stats.events,
            m.stats.flows_promoted,
        );
        eprintln!(
            "exp-scale quick: {} workers, {:.1} ms, peak rss {} kB",
            workers,
            wall.as_secs_f64() * 1e3,
            runner::peak_rss_kb(),
        );
        return;
    }

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    println!("== exp-scale ==  (seed {SEED}, one child process per configuration)\n");
    let mut rows = Vec::with_capacity(CONFIGS.len());
    for cfg in CONFIGS {
        let row = spawn_child(cfg);
        assert_eq!(
            row.completed, row.flows as u64,
            "exp-scale: {} completed {} of {} transfers",
            row.stem, row.completed, row.flows
        );
        println!(
            "{:<18} {:>9} flows  {:>10.1} ms  {:>10.1} flows/s  {:>9} kB  {:>11} events",
            row.stem, row.flows, row.wall_ms, row.flows_per_sec, row.rss_kb, row.events
        );
        rows.push(row);
    }

    let fps_of = |stem: &str| {
        rows.iter()
            .find(|r| r.stem == stem)
            .unwrap_or_else(|| panic!("exp-scale: missing {stem} row"))
            .flows_per_sec
    };
    let speedup = fps_of("hybrid_100k") / fps_of("packet_100k").max(1e-9);
    println!("\nspeedup at 100k flows: {speedup:.2}x (hybrid over packet)");
    let speedup_shards8 = fps_of("hybrid_1m_shards8") / fps_of("hybrid_1m_shards1").max(1e-9);
    println!(
        "speedup at 1M flows, 8 workers over 1: {speedup_shards8:.2}x \
         ({} hardware threads available)",
        runner::default_parallelism()
    );

    write_json(&out_path, &rows, speedup, speedup_shards8);
    println!("wrote {out_path}");
}
