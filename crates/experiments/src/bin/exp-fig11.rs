//! Binary regenerating Fig 11 (brdgrd mitigation) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig11;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 11 (brdgrd mitigation) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig11::run(scale, seed);
    println!("{result}");
}
