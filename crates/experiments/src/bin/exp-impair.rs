//! Binary regenerating the link-impairment extension: the Fig 10
//! reaction grid swept over border loss rates, plus end-to-end §3.1
//! runs on a lossy link. Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::impair;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Extension: link impairment ==  (scale {scale:?}, seed {seed})\n");
    let result = impair::run(scale, seed);
    println!("{result}");
}
