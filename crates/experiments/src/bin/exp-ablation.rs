//! Binary for Ablations (detector features, staged probing) (reproduction extension).

use experiments::figures::ablation;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    println!("== Ablations (detector features, staged probing) ==  (scale {scale:?})\n");
    println!("{}", ablation::run(scale, 2020));
}
