//! Binary regenerating Table 4 (random-data experiments) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::table4;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Table 4 (random-data experiments) ==  (scale {scale:?}, seed {seed})\n");
    let result = table4::run(scale, seed);
    println!("{result}");
}
