//! Run every experiment at quick scale and print the full report —
//! the one-command regeneration of the paper's evaluation.

use experiments::figures::*;
use experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let seed = 2020;
    println!("==== gfwsim: regenerating all tables & figures (scale {scale:?}) ====\n");
    println!("== Table 1 ==\n{}", table1::render());
    println!("== Fig 2 ==\n{}", fig2::run(scale, seed));
    println!("== Fig 3 ==\n{}", fig3::run(scale, seed));
    println!("== Table 2 ==\n{}", table2::run(scale, seed));
    println!("== Fig 4 ==\n{}", fig4::run(scale, seed));
    println!("== Table 3 ==\n{}", table3::run(scale, seed));
    println!("== Fig 5 ==\n{}", fig5::run(scale, seed));
    println!("== Fig 6 ==\n{}", fig6::run(scale, seed));
    println!("== Fig 7 ==\n{}", fig7::run(scale, seed));
    println!("== Table 4 ==\n{}", table4::run(scale, seed));
    println!("== Fig 8 ==\n{}", fig8::run(scale, seed));
    println!("== Fig 9 ==\n{}", fig9::run(scale, seed));
    println!("== Fig 10 ==\n{}", fig10::run(scale, seed));
    println!("== Table 5 ==\n{}", table5::run(scale, seed));
    println!("== Fig 11 ==\n{}", fig11::run(scale, seed));
    println!("== S6 blocking ==\n{}", blocking::run(scale, seed));
    println!("== S5.2.2 inference ==\n{}", inference::run(scale, seed));
    println!("== Extension: ablations ==\n{}", ablation::run(scale, seed));
    println!(
        "== Extension: fully-encrypted protocols (S9) ==\n{}",
        fep::run(scale, seed)
    );
    println!(
        "== Extension: probe battery size ==\n{}",
        battery::run(scale, seed)
    );
}
