//! Run every experiment and print the full report — the one-command
//! regeneration of the paper's evaluation, executed through the
//! deterministic parallel run engine.
//!
//! Flags:
//!
//! * `--paper` / `--full` — paper-comparable sample sizes (slower);
//! * `--jobs N` — worker count (default: `GFWSIM_JOBS`, then available
//!   parallelism); output is byte-identical for every `N`;
//! * `--only <id,...>` — run a subset, e.g. `--only fig10,table5`;
//! * `--stats` — append per-experiment simulator counters.

use experiments::figures::{Entry, REGISTRY};
use experiments::report::Table;
use experiments::{runner, Scale};

fn main() {
    runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_stats = args.iter().any(|a| a == "--stats");
    let entries: Vec<&Entry> = match only_filter(&args) {
        Ok(entries) => entries,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    println!("==== gfwsim: regenerating all tables & figures (scale {scale:?}) ====\n");
    let specs: Vec<_> = entries
        .iter()
        .map(|e| {
            let render = e.render;
            move || render(scale, seed)
        })
        .collect();
    let runs = runner::run_jobs_detailed(specs);
    for (e, r) in entries.iter().zip(&runs) {
        println!("== {} ==\n{}", e.title, r.output);
    }

    if show_stats {
        let mut t = Table::new(&[
            "experiment",
            "events",
            "conns",
            "pkts sent",
            "tapped",
            "dropped",
            "probes",
            "peak queue",
        ]);
        let mut total = netsim::sim::SimStats::default();
        for (e, r) in entries.iter().zip(&runs) {
            let s = &r.stats;
            total.merge(s);
            t.row(&[
                e.id.to_string(),
                s.events.to_string(),
                s.connections.to_string(),
                s.packets_sent.to_string(),
                s.packets_tapped.to_string(),
                s.packets_dropped.to_string(),
                s.probes_launched.to_string(),
                s.peak_queue_depth.to_string(),
            ]);
        }
        t.row(&[
            "total".to_string(),
            total.events.to_string(),
            total.connections.to_string(),
            total.packets_sent.to_string(),
            total.packets_tapped.to_string(),
            total.packets_dropped.to_string(),
            total.probes_launched.to_string(),
            total.peak_queue_depth.to_string(),
        ]);
        println!("== runner stats ==\n{}", t.render());
    }
}

/// Resolve `--only a,b,c` against the registry, keeping registry order.
fn only_filter(args: &[String]) -> Result<Vec<&'static Entry>, String> {
    let mut wanted: Option<Vec<String>> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let list = if a == "--only" {
            it.next().cloned().unwrap_or_default()
        } else if let Some(v) = a.strip_prefix("--only=") {
            v.to_string()
        } else {
            continue;
        };
        wanted = Some(
            list.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        );
    }
    let Some(ids) = wanted else {
        return Ok(REGISTRY.iter().collect());
    };
    for id in &ids {
        if !REGISTRY.iter().any(|e| e.id == *id) {
            let known: Vec<&str> = REGISTRY.iter().map(|e| e.id).collect();
            return Err(format!(
                "unknown experiment id `{id}`; known ids: {}",
                known.join(", ")
            ));
        }
    }
    Ok(REGISTRY
        .iter()
        .filter(|e| ids.iter().any(|id| id == e.id))
        .collect())
}
