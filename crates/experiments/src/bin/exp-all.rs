//! Run every experiment and print the full report — the one-command
//! regeneration of the paper's evaluation, executed through the
//! deterministic parallel run engine.
//!
//! Flags:
//!
//! * `--paper` / `--full` — paper-comparable sample sizes (slower);
//! * `--jobs N` — worker count (default: `GFWSIM_JOBS`, then available
//!   parallelism); output is byte-identical for every `N`;
//! * `--only <id,...>` — run a subset, e.g. `--only fig10,table5`;
//! * `--stats` — append per-experiment simulator counters.

use experiments::figures::{Entry, REGISTRY};
use experiments::report::Table;
use experiments::{runner, Scale};

fn main() {
    runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_stats = args.iter().any(|a| a == "--stats");
    let entries: Vec<&Entry> = match only_filter(&args) {
        Ok(entries) => entries,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    println!("==== gfwsim: regenerating all tables & figures (scale {scale:?}) ====\n");
    let specs: Vec<_> = entries
        .iter()
        .map(|e| {
            let render = e.render;
            move || render(scale, seed)
        })
        .collect();
    let runs = runner::run_jobs_detailed(specs);
    for (e, r) in entries.iter().zip(&runs) {
        println!("== {} ==\n{}", e.title, r.output);
    }

    if show_stats {
        let mut t = Table::new(&[
            "experiment",
            "events",
            "conns",
            "pkts sent",
            "tapped",
            "dropped",
            "probes",
            "promoted",
            "demoted",
            "fluid bytes",
            "shards",
            "xshard pkts",
            "windows",
            "peak queue",
            "wall ms",
            "events/s",
            "rss kb",
        ]);
        let mut total = netsim::sim::SimStats::default();
        let mut total_wall = std::time::Duration::ZERO;
        let mut peak_rss = 0u64;
        for (e, r) in entries.iter().zip(&runs) {
            let s = &r.stats;
            total.merge(s);
            total_wall += r.wall;
            peak_rss = peak_rss.max(r.peak_rss_kb);
            t.row(&[
                e.id.to_string(),
                s.events.to_string(),
                s.connections.to_string(),
                s.packets_sent.to_string(),
                s.packets_tapped.to_string(),
                s.packets_dropped.to_string(),
                s.probes_launched.to_string(),
                s.flows_promoted.to_string(),
                s.flows_demoted.to_string(),
                s.fluid_bytes_modeled.to_string(),
                s.shards.to_string(),
                s.cross_shard_packets.to_string(),
                s.sync_windows.to_string(),
                s.peak_queue_depth.to_string(),
                format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                format!("{:.0}", events_per_sec(s.events, r.wall)),
                r.peak_rss_kb.to_string(),
            ]);
        }
        t.row(&[
            "total".to_string(),
            total.events.to_string(),
            total.connections.to_string(),
            total.packets_sent.to_string(),
            total.packets_tapped.to_string(),
            total.packets_dropped.to_string(),
            total.probes_launched.to_string(),
            total.flows_promoted.to_string(),
            total.flows_demoted.to_string(),
            total.fluid_bytes_modeled.to_string(),
            total.shards.to_string(),
            total.cross_shard_packets.to_string(),
            total.sync_windows.to_string(),
            total.peak_queue_depth.to_string(),
            format!("{:.1}", total_wall.as_secs_f64() * 1e3),
            format!("{:.0}", events_per_sec(total.events, total_wall)),
            peak_rss.to_string(),
        ]);
        println!("== runner stats ==\n{}", t.render());
        println!(
            "(wall times are per-job CPU-side measurements; with parallel \
workers the total exceeds elapsed time. rss kb is the process-wide \
VmHWM sampled when each job finished — a monotone high-water mark, so \
per-experiment values reflect everything run up to that point, 0 on \
platforms without procfs; the total row reports the maximum)"
        );
    }
}

/// Simulator events per wall-clock second; 0 for degenerate timings.
fn events_per_sec(events: u64, wall: std::time::Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        events as f64 / secs
    } else {
        0.0
    }
}

/// Resolve `--only a,b,c` against the registry, keeping registry order.
fn only_filter(args: &[String]) -> Result<Vec<&'static Entry>, String> {
    let mut wanted: Option<Vec<String>> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let list = if a == "--only" {
            it.next().cloned().unwrap_or_default()
        } else if let Some(v) = a.strip_prefix("--only=") {
            v.to_string()
        } else {
            continue;
        };
        wanted = Some(
            list.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        );
    }
    let Some(ids) = wanted else {
        return Ok(REGISTRY.iter().collect());
    };
    // Collect every unknown id before failing, so a mixed list reports
    // all its mistakes in one pass instead of one per invocation.
    let unknown: Vec<&String> = ids
        .iter()
        .filter(|id| !REGISTRY.iter().any(|e| e.id == **id))
        .collect();
    if !unknown.is_empty() {
        let known: Vec<&str> = REGISTRY.iter().map(|e| e.id).collect();
        let listed = unknown
            .iter()
            .map(|id| format!("unknown experiment id `{id}`"))
            .collect::<Vec<_>>()
            .join("\n");
        return Err(format!("{listed}\nknown ids: {}", known.join(", ")));
    }
    Ok(REGISTRY
        .iter()
        .filter(|e| ids.iter().any(|id| id == e.id))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_only_selects_everything() {
        let entries = only_filter(&args(&["--jobs", "2"])).unwrap();
        assert_eq!(entries.len(), REGISTRY.len());
    }

    #[test]
    fn known_ids_keep_registry_order() {
        let entries = only_filter(&args(&["--only", "fig10,fig2"])).unwrap();
        let ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
        assert_eq!(ids, ["fig2", "fig10"], "registry order, not list order");
    }

    fn expect_err(r: Result<Vec<&'static Entry>, String>) -> String {
        match r {
            Ok(entries) => panic!("expected an error, got {} entries", entries.len()),
            Err(msg) => msg,
        }
    }

    #[test]
    fn mixed_unknown_ids_are_all_reported() {
        let err = expect_err(only_filter(&args(&["--only", "fig99,fig2,bogus"])));
        assert!(err.contains("unknown experiment id `fig99`"), "{err}");
        assert!(err.contains("unknown experiment id `bogus`"), "{err}");
        assert!(!err.contains("`fig2`"), "known id flagged: {err}");
        assert!(err.contains("known ids: "), "{err}");
    }

    #[test]
    fn single_unknown_id_message_is_stable() {
        let err = expect_err(only_filter(&args(&["--only=fig99"])));
        assert!(err.starts_with("unknown experiment id `fig99`"), "{err}");
    }
}
