//! Binary regenerating S6 (blocking behaviour) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::blocking;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== S6 (blocking behaviour) ==  (scale {scale:?}, seed {seed})\n");
    let result = blocking::run(scale, seed);
    println!("{result}");
}
