//! Binary regenerating Fig 3 (probes per prober IP) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig3;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 3 (probes per prober IP) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig3::run(scale, seed);
    println!("{result}");
}
