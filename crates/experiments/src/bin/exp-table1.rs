//! Binary regenerating Table 1 (experiment timeline) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020).

use experiments::figures::table1;

fn main() {
    println!("== Table 1 (experiment timeline) ==\n");
    println!("{}", table1::render());
}
