//! Binary regenerating Fig 4 (prober set overlap) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig4;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 4 (prober set overlap) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig4::run(scale, seed);
    println!("{result}");
}
