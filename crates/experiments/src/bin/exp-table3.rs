//! Binary regenerating Table 3 (prober ASes) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::table3;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Table 3 (prober ASes) ==  (scale {scale:?}, seed {seed})\n");
    let result = table3::run(scale, seed);
    println!("{result}");
}
