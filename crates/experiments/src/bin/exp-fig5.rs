//! Binary regenerating Fig 5 (source-port CDF) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig5;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 5 (source-port CDF) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig5::run(scale, seed);
    println!("{result}");
}
