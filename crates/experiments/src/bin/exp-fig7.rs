//! Binary regenerating Fig 7 (replay delays) of *How China Detects and Blocks
//! Shadowsocks* (IMC 2020). Pass `--paper` for paper-comparable sample
//! sizes (slower).

use experiments::figures::fig7;
use experiments::Scale;

fn main() {
    experiments::runner::configure_from_env();
    let scale = Scale::from_args();
    let seed = 2020;
    println!("== Fig 7 (replay delays) ==  (scale {scale:?}, seed {seed})\n");
    let result = fig7::run(scale, seed);
    println!("{result}");
}
