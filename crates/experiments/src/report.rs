//! Plain-text report rendering: aligned tables and paper-vs-measured
//! rows, shared by every experiment binary.

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// One paper-vs-measured comparison line.
pub struct Comparison {
    rows: Vec<(String, String, String, bool)>,
}

impl Default for Comparison {
    fn default() -> Self {
        Comparison::new()
    }
}

impl Comparison {
    /// Empty comparison.
    pub fn new() -> Comparison {
        Comparison { rows: Vec::new() }
    }

    /// Add a metric with its paper value, measured value, and whether
    /// the shape holds.
    pub fn add(
        &mut self,
        metric: &str,
        paper: impl std::fmt::Display,
        measured: impl std::fmt::Display,
        holds: bool,
    ) -> &mut Self {
        self.rows.push((
            metric.to_string(),
            paper.to_string(),
            measured.to_string(),
            holds,
        ));
        self
    }

    /// True if every row holds.
    pub fn all_hold(&self) -> bool {
        self.rows.iter().all(|r| r.3)
    }

    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["metric", "paper", "measured", "shape holds"]);
        for (m, p, v, ok) in &self.rows {
            t.row(&[
                m.clone(),
                p.clone(),
                v.clone(),
                if *ok { "yes".into() } else { "NO".into() },
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_enforced() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn comparison_holds_logic() {
        let mut c = Comparison::new();
        c.add("x", 1, 2, true);
        assert!(c.all_hold());
        c.add("y", 3, 9, false);
        assert!(!c.all_hold());
        assert!(c.render().contains("NO"));
    }
}
