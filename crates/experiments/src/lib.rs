//! # experiments — regenerating every table and figure of the paper
//!
//! One module per table/figure in the evaluation of *How China Detects
//! and Blocks Shadowsocks* (IMC 2020), built on three canonical
//! simulation runs ([`runs`]):
//!
//! | Paper item | Module | Binary |
//! |---|---|---|
//! | Table 1 (experiment timeline) | [`figures::table1`] | `exp-table1` |
//! | Fig 2 (NR probe lengths) | [`figures::fig2`] | `exp-fig2` |
//! | Fig 3 (probes per IP) | [`figures::fig3`] | `exp-fig3` |
//! | Table 2 (top prober IPs) | [`figures::table2`] | `exp-table2` |
//! | Fig 4 (dataset overlap) | [`figures::fig4`] | `exp-fig4` |
//! | Table 3 (prober ASes) | [`figures::table3`] | `exp-table3` |
//! | Fig 5 (source ports) | [`figures::fig5`] | `exp-fig5` |
//! | Fig 6 (TSval processes) | [`figures::fig6`] | `exp-fig6` |
//! | Fig 7 (replay delays) | [`figures::fig7`] | `exp-fig7` |
//! | Table 4 (random-data experiments) | [`figures::table4`] | `exp-table4` |
//! | Fig 8 (replayed lengths) | [`figures::fig8`] | `exp-fig8` |
//! | Fig 9 (entropy vs replays) | [`figures::fig9`] | `exp-fig9` |
//! | Fig 10a/b (reaction matrices) | [`figures::fig10`] | `exp-fig10` |
//! | Table 5 (replay reactions) | [`figures::table5`] | `exp-table5` |
//! | Fig 11 (brdgrd) | [`figures::fig11`] | `exp-fig11` |
//! | §6 (blocking behaviour) | [`figures::blocking`] | `exp-blocking` |
//! | §5.2.2 (implementation inference) | [`figures::inference`] | `exp-infer` |
//!
//! Every module exposes `run(scale, seed) -> …Result` where the result
//! implements `Display` (printing the paper-vs-measured comparison) and
//! carries assertable fields used by both the crate tests and the
//! Criterion benches in `crates/bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod figures;
pub mod report;
pub mod runner;
pub mod runs;

/// Experiment scale: `Quick` for tests/benches, `Paper` for runs that
/// approximate the paper's sample sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs, seconds of wall-clock.
    Quick,
    /// Sample sizes comparable to the paper's.
    Paper,
}

impl Scale {
    /// Parse from a CLI argument.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper" || a == "--full") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Pick between two values by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Engine selection for the canonical runs, from the `GFWSIM_ENGINE`
/// environment variable: `packet` forces the pure packet engine,
/// anything else (including unset) selects the default hybrid engine.
///
/// Read here rather than inside `netsim` so the simulator itself stays
/// environment-free; the equivalence suite uses this to check that the
/// hybrid engine leaves every experiment's output byte-identical.
pub fn engine_mode() -> netsim::EngineMode {
    match std::env::var("GFWSIM_ENGINE") {
        Ok(v) if v.eq_ignore_ascii_case("packet") => netsim::EngineMode::Packet,
        _ => netsim::EngineMode::Hybrid,
    }
}

/// Shard executor worker count, from the `GFWSIM_SHARDS` environment
/// variable (default 1 = run every cell on the calling thread).
///
/// This is purely a throughput knob: scenarios that use sharded
/// execution always partition their hosts into the same fixed cell
/// layout, and the window schedule is a function of cell state alone,
/// so output is byte-identical at any worker count. Experiments that
/// never call [`netsim::run_sharded`] ignore the variable entirely.
pub fn shards() -> usize {
    match std::env::var("GFWSIM_SHARDS") {
        Ok(v) => v.trim().parse().ok().filter(|&n| n >= 1).unwrap_or(1),
        Err(_) => 1,
    }
}
