//! Canonical simulation runs, shared by the per-figure analyses.
//!
//! * [`shadowsocks_run`] — §3.1's measurement: a real Shadowsocks
//!   server, a Chinese client constantly fetching one site through it,
//!   the GFW model on path.
//! * [`sink_run`] — §4.1's random-data experiments (Table 4): a
//!   sink/responding TCP server and clients sending single payloads of
//!   controlled length/entropy.
//! * [`brdgrd_run`] — §7.1's mitigation test (Fig 11): the Shadowsocks
//!   run with window shaping toggled on a schedule.

use defense::brdgrd::Brdgrd;
use gfw_core::blocking::BlockRule;
use gfw_core::probe::ProbeRecord;
use gfw_core::{Gfw, GfwConfig};
use netsim::app::{App, AppEvent, Ctx};
use netsim::capture::Capture;
use netsim::conn::{ConnId, TcpTuning};
use netsim::host::HostConfig;
use netsim::packet::{Ipv4, SocketAddr};
use netsim::time::{Duration, SimTime};
use netsim::{SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowsocks::apps::{RespondingServerApp, SinkServerApp, SsServerApp};
use shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use sscrypto::method::Method;
use std::collections::HashMap;

/// Configuration of the §3.1-style run.
#[derive(Clone, Debug)]
pub struct SsRunConfig {
    /// Server implementation profile.
    pub profile: Profile,
    /// Cipher method.
    pub method: Method,
    /// Number of trigger connections to drive.
    pub connections: usize,
    /// Spacing between connections.
    pub conn_interval: Duration,
    /// Application payload bytes sent on each connection (the site's
    /// first request); constant per run, like the paper's repeated curl
    /// fetches of one URL. `None` picks a length that makes the wire
    /// first packet land on an attractive length for the configured
    /// method (mod-16 remainder 2, inside the 384-687 band).
    pub payload_len: Option<usize>,
    /// Blocking sensitivity (0 = observe only).
    pub sensitivity: f64,
    /// Prober fleet pool size.
    pub fleet_pool: usize,
    /// Gap between random probes per server.
    pub nr_min_gap: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Link impairment model. The default no-op keeps the run
    /// byte-identical to the pre-impairment simulator.
    pub impairment: netsim::ImpairmentSpec,
    /// Per-probe connect-failure retry budget for the GFW's prober
    /// fleet (only meaningful under loss).
    pub probe_retries: u32,
}

impl Default for SsRunConfig {
    fn default() -> Self {
        SsRunConfig {
            profile: Profile::LIBEV_OLD,
            method: Method::Aes256Cfb,
            connections: 2_000,
            conn_interval: Duration::from_secs(30),
            payload_len: None,
            sensitivity: 0.0,
            fleet_pool: 4_000,
            nr_min_gap: Duration::from_mins(18),
            seed: 2020,
            impairment: netsim::ImpairmentSpec::default(),
            probe_retries: 0,
        }
    }
}

/// First-packet framing overhead for a method: the wire bytes added to
/// the application payload (IV/salt, target spec, AEAD chunk framing
/// with a 7-byte IPv4 spec in its own chunk).
pub fn first_packet_overhead(method: Method) -> usize {
    match method.kind() {
        sscrypto::method::Kind::Stream => method.iv_len() + 7,
        sscrypto::method::Kind::Aead => method.iv_len() + (2 + 16) + 7 + 16 + (2 + 16) + 16,
    }
}

/// An application payload length that makes the first wire packet land
/// in the GFW's preferred band with remainder 2 mod 16.
pub fn attractive_payload_len(method: Method) -> usize {
    let overhead = first_packet_overhead(method);
    let mut wire = 480;
    while wire % 16 != 2 {
        wire += 1;
    }
    wire - overhead
}

/// A probe SYN as captured on the wire (for Figs 5 and 6).
#[derive(Clone, Copy, Debug)]
pub struct SynObs {
    /// Capture time in seconds.
    pub secs: f64,
    /// TCP timestamp value.
    pub tsval: u32,
    /// Source port.
    pub sport: u16,
    /// Source address.
    pub src: Ipv4,
}

/// Output of the Shadowsocks run.
pub struct SsRunResult {
    /// Every probe the GFW sent, with reactions.
    pub probes: Vec<ProbeRecord>,
    /// Probe SYNs on the wire.
    pub probe_syns: Vec<SynObs>,
    /// TTLs of prober data packets (min, max).
    pub prober_ttl_range: Option<(u8, u8)>,
    /// The server's address.
    pub server: SocketAddr,
    /// Trigger connections driven.
    pub trigger_conns: usize,
    /// Blocking rules installed.
    pub block_rules: Vec<BlockRule>,
    /// First-data packets the GFW inspected.
    pub inspected: u64,
}

/// Client driver: one fresh Shadowsocks session per connection,
/// constant-size first request — the paper's curl loop.
struct SsDriver {
    config: ServerConfig,
    target: TargetAddr,
    payload_len: usize,
    rng: StdRng,
    sessions: HashMap<ConnId, ClientSession>,
}

impl App for SsDriver {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Connected { conn } => {
                let mut session =
                    ClientSession::new(&self.config, self.target.clone(), &mut self.rng);
                let mut body = vec![0u8; self.payload_len];
                self.rng.fill(&mut body[..]);
                let wire = session.send(&body);
                self.sessions.insert(conn, session);
                ctx.send(conn, wire);
                ctx.set_timer(Duration::from_secs(20), conn.0);
            }
            AppEvent::Timer { token } => {
                ctx.fin(ConnId(token));
                self.sessions.remove(&ConnId(token));
            }
            AppEvent::Data { .. } => {}
            AppEvent::PeerFin { conn } | AppEvent::PeerRst { conn } => {
                self.sessions.remove(&conn);
            }
            _ => {}
        }
    }
}

struct EchoWeb;
impl App for EchoWeb {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        if let AppEvent::Data { conn, data } = ev {
            ctx.send(conn, data);
        }
    }
}

/// Internal: assemble the §3.1 world and return the pieces.
pub struct SsWorld {
    /// The simulator.
    pub sim: Simulator,
    /// GFW handle.
    pub handle: gfw_core::GfwHandle,
    /// Server address.
    pub server_ip: Ipv4,
    /// Client address.
    pub client_ip: Ipv4,
    /// Driver app.
    pub driver: netsim::app::AppId,
    /// Server-inbound capture.
    pub cap: netsim::sim::CaptureId,
}

/// Build the §3.1 world without driving any traffic yet.
pub fn build_ss_world(cfg: &SsRunConfig) -> SsWorld {
    let sim_config = SimConfig {
        impairment: cfg.impairment,
        engine: crate::engine_mode(),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(sim_config, cfg.seed);
    let mut gfw_config = GfwConfig::default();
    gfw_config.fleet.pool_size = cfg.fleet_pool;
    gfw_config.fleet.probe_retries = cfg.probe_retries;
    gfw_config.blocking.sensitivity = cfg.sensitivity;
    gfw_config.scheduler.nr_min_gap = cfg.nr_min_gap;
    let handle = Gfw::install(&mut sim, gfw_config, cfg.seed ^ 0x6F3);

    let server_ip = sim.add_host(HostConfig::outside("ss-server"));
    let client_ip = sim.add_host(HostConfig::china("client"));
    let web_ip = sim.add_host(HostConfig::outside("website"));

    // Capture only server-inbound handshakes and data (memory bound).
    let cap = sim.add_capture(Capture::with_filter(move |p| {
        p.dst.0 == server_ip && (p.flags.syn || p.has_payload())
    }));

    let web = sim.add_app(Box::new(EchoWeb));
    sim.listen((web_ip, 443), web);

    let ss_config = ServerConfig::new(cfg.method, "run-password", cfg.profile);
    let server_app = sim.add_app(Box::new(SsServerApp::new(
        ss_config.clone(),
        server_ip,
        cfg.seed ^ 0x51,
    )));
    sim.listen((server_ip, 8388), server_app);

    let payload_len = cfg
        .payload_len
        .unwrap_or_else(|| attractive_payload_len(cfg.method));
    let driver = sim.add_app(Box::new(SsDriver {
        config: ss_config,
        target: TargetAddr::Ipv4(web_ip.0, 443),
        payload_len,
        rng: StdRng::seed_from_u64(cfg.seed ^ 0xD2),
        sessions: HashMap::new(),
    }));

    SsWorld {
        sim,
        handle,
        server_ip,
        client_ip,
        driver,
        cap,
    }
}

/// Harvest the run results from a finished world.
pub fn harvest(world: &SsWorld, trigger_conns: usize) -> SsRunResult {
    let st = world.handle.state.borrow();
    let cap = world.sim.capture(world.cap);
    let probe_syns: Vec<SynObs> = cap
        .syns()
        .filter(|p| analysis::asn::lookup(p.src.0).is_some())
        .filter_map(|p| {
            p.tsval.map(|v| SynObs {
                secs: p.sent_at.as_secs_f64(),
                tsval: v,
                sport: p.src.1,
                src: p.src.0,
            })
        })
        .collect();
    let ttls: Vec<u8> = cap
        .data_packets()
        .filter(|p| analysis::asn::lookup(p.src.0).is_some())
        .map(|p| p.ttl)
        .collect();
    let prober_ttl_range = if ttls.is_empty() {
        None
    } else {
        Some((*ttls.iter().min().unwrap(), *ttls.iter().max().unwrap()))
    };
    SsRunResult {
        probes: st.probes().to_vec(),
        probe_syns,
        prober_ttl_range,
        server: (world.server_ip, 8388),
        trigger_conns,
        block_rules: st.blocking.all_rules().to_vec(),
        inspected: st.inspected_connections(),
    }
}

/// Run the full §3.1 experiment.
pub fn shadowsocks_run(cfg: &SsRunConfig) -> SsRunResult {
    let mut world = build_ss_world(cfg);
    for i in 0..cfg.connections {
        world.sim.connect_at(
            SimTime::ZERO + Duration::from_nanos(cfg.conn_interval.as_nanos() * i as u64),
            world.driver,
            world.client_ip,
            (world.server_ip, 8388),
            TcpTuning::default(),
        );
    }
    world.sim.run();
    crate::runner::record_sim_stats(&world.sim.stats);
    harvest(&world, cfg.connections)
}

// ---------------------------------------------------------------------
// Random-data (sink) runs — §4.1 / Table 4
// ---------------------------------------------------------------------

/// Which Table 4 experiment to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkExp {
    /// Exp 1.a: len \[1,1000\], entropy > 7, sink.
    Exp1a,
    /// Exp 1.b: len \[1,1000\], entropy > 7, responding.
    Exp1b,
    /// Exp 2: len \[1,1000\], entropy < 2, sink.
    Exp2,
    /// Exp 3: len \[1,2000\], entropy \[0,8\], sink.
    Exp3,
}

/// Configuration of a random-data run.
#[derive(Clone, Copy, Debug)]
pub struct SinkRunConfig {
    /// Which Table 4 experiment.
    pub exp: SinkExp,
    /// Trigger connections to drive.
    pub connections: usize,
    /// Spacing between connections.
    pub conn_interval: Duration,
    /// RNG seed.
    pub seed: u64,
}

/// One trigger connection's payload facts.
#[derive(Clone, Copy, Debug)]
pub struct TriggerObs {
    /// Payload length.
    pub len: usize,
    /// Measured Shannon entropy.
    pub entropy: f64,
}

/// Output of a random-data run.
pub struct SinkRunResult {
    /// Probes received.
    pub probes: Vec<ProbeRecord>,
    /// Per-trigger payload facts.
    pub triggers: Vec<TriggerObs>,
    /// Entropy of each stored payload that an identical (R1) replay
    /// copied, matched by payload digest.
    pub replayed_entropy: Vec<f64>,
}

/// Run one Table 4 experiment.
pub fn sink_run(cfg: &SinkRunConfig) -> SinkRunResult {
    let sim_config = SimConfig {
        engine: crate::engine_mode(),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(sim_config, cfg.seed);
    let mut gfw_config = GfwConfig::default();
    gfw_config.fleet.pool_size = 3_000;
    gfw_config.blocking.sensitivity = 0.0;
    let handle = Gfw::install(&mut sim, gfw_config, cfg.seed ^ 0xA1);

    let server_ip = sim.add_host(HostConfig::outside("sink"));
    let client_ip = sim.add_host(HostConfig::china("client"));
    let cap = sim.add_capture(Capture::with_filter(move |p| {
        p.dst.0 == server_ip && p.has_payload()
    }));

    let server: Box<dyn App> = match cfg.exp {
        SinkExp::Exp1b => Box::new(RespondingServerApp::default()),
        _ => Box::new(SinkServerApp::default()),
    };
    let server_app = sim.add_app(server);
    sim.listen((server_ip, 12000), server_app);

    let client = match cfg.exp {
        SinkExp::Exp1a | SinkExp::Exp1b => trafficgen::RandomDataClient::exp1(),
        SinkExp::Exp2 => trafficgen::RandomDataClient::exp2(),
        SinkExp::Exp3 => trafficgen::RandomDataClient::exp3(),
    };
    let client_app = sim.add_app(Box::new(client));
    for i in 0..cfg.connections {
        sim.connect_at(
            SimTime::ZERO + Duration::from_nanos(cfg.conn_interval.as_nanos() * i as u64),
            client_app,
            client_ip,
            (server_ip, 12000),
            TcpTuning::default(),
        );
    }
    sim.run();
    crate::runner::record_sim_stats(&sim.stats);

    // Trigger facts from the capture: the first data packet of each
    // client connection (probes excluded via AS lookup).
    let capref = sim.capture(cap);
    let mut triggers = Vec::new();
    let mut digest_entropy: HashMap<[u8; 32], f64> = HashMap::new();
    for p in capref.first_data_per_conn() {
        if analysis::asn::lookup(p.src.0).is_some() {
            continue;
        }
        let e = analysis::shannon_entropy(&p.payload);
        triggers.push(TriggerObs {
            len: p.payload.len(),
            entropy: e,
        });
        digest_entropy.insert(sscrypto::sha256::sha256(&p.payload), e);
    }
    // Match identical replays back to their trigger's entropy; each
    // stored payload counts once (occurrence counts are dominated by
    // the up-to-47× replay multiplicity).
    let mut replayed_entropy = Vec::new();
    let mut counted: std::collections::HashSet<[u8; 32]> = std::collections::HashSet::new();
    for p in capref.data_packets() {
        if analysis::asn::lookup(p.src.0).is_some() {
            let digest = sscrypto::sha256::sha256(&p.payload);
            if let Some(&e) = digest_entropy.get(&digest) {
                if counted.insert(digest) {
                    replayed_entropy.push(e);
                }
            }
        }
    }

    let st = handle.state.borrow();
    SinkRunResult {
        probes: st.probes().to_vec(),
        triggers,
        replayed_entropy,
    }
}

// ---------------------------------------------------------------------
// brdgrd run — §7.1 / Fig 11
// ---------------------------------------------------------------------

/// Configuration of the brdgrd toggle run.
#[derive(Clone, Debug)]
pub struct BrdgrdRunConfig {
    /// Total simulated hours.
    pub hours: u64,
    /// Hours during which brdgrd is active: list of (start, end).
    pub active_windows: Vec<(u64, u64)>,
    /// Connections per 5 minutes (the paper used 16).
    pub conns_per_5min: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Output: prober SYNs per hour plus the schedule.
pub struct BrdgrdRunResult {
    /// Probe SYN count for each hour.
    pub probes_per_hour: Vec<u32>,
    /// Echo of the active windows.
    pub active_windows: Vec<(u64, u64)>,
}

/// One toggle-to-toggle stretch of the Fig 11 schedule, simulated in
/// its own fresh world with the shaper constantly on or off, counting
/// prober SYNs hour by hour.
fn brdgrd_segment(cfg: &BrdgrdRunConfig, start: u64, end: u64, active: bool) -> Vec<u32> {
    let ss_cfg = SsRunConfig {
        connections: 0,
        // Distinct per-segment seed, derived from the run seed and the
        // segment's position in the schedule.
        seed: cfg.seed ^ start.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ..Default::default()
    };
    let mut world = build_ss_world(&ss_cfg);
    if active {
        Brdgrd::default().enable(&mut world.sim, world.server_ip);
    }
    // The segment's share of the trigger schedule.
    let interval_secs = (300 / cfg.conns_per_5min.max(1)).max(1);
    let interval = Duration::from_secs(interval_secs);
    let seg_conns = (end - start) * 3600 / interval_secs;
    for i in 0..seg_conns {
        world.sim.connect_at(
            SimTime::ZERO + Duration::from_nanos(interval.as_nanos() * i),
            world.driver,
            world.client_ip,
            (world.server_ip, 8388),
            TcpTuning::default(),
        );
    }
    let mut probes_per_hour = Vec::with_capacity((end - start) as usize);
    let mut last_count = 0usize;
    for hour in 1..=(end - start) {
        world
            .sim
            .run_until(SimTime::ZERO + Duration::from_hours(hour));
        let syns_so_far = world
            .sim
            .capture(world.cap)
            .syns()
            .filter(|p| analysis::asn::lookup(p.src.0).is_some())
            .count();
        probes_per_hour.push((syns_so_far - last_count) as u32);
        last_count = syns_so_far;
    }
    crate::runner::record_sim_stats(&world.sim.stats);
    probes_per_hour
}

/// Run the Fig 11 experiment.
///
/// Every stretch of hours between shaper toggles is an independent
/// runner job (a fresh world with brdgrd constantly on or off); the
/// per-hour counts are concatenated in schedule order. Segment
/// isolation — no probe stragglers crossing a toggle — is the one
/// deliberate deviation from a single continuous world; the figure's
/// observable (probe rate while shaped vs unshaped) is unaffected, and
/// the segments run concurrently.
pub fn brdgrd_run(cfg: &BrdgrdRunConfig) -> BrdgrdRunResult {
    let mut bounds: Vec<u64> = vec![0, cfg.hours];
    for &(s, e) in &cfg.active_windows {
        bounds.push(s.min(cfg.hours));
        bounds.push(e.min(cfg.hours));
    }
    bounds.sort_unstable();
    bounds.dedup();
    let specs: Vec<_> = bounds
        .windows(2)
        .filter(|w| w[1] > w[0])
        .map(|w| {
            let (start, end) = (w[0], w[1]);
            let active = cfg
                .active_windows
                .iter()
                .any(|&(s, e)| start >= s && start < e);
            let cfg = cfg.clone();
            move || brdgrd_segment(&cfg, start, end, active)
        })
        .collect();
    let probes_per_hour = crate::runner::run_jobs(specs)
        .into_iter()
        .flatten()
        .collect();
    BrdgrdRunResult {
        probes_per_hour,
        active_windows: cfg.active_windows.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadowsocks_run_produces_probes() {
        let cfg = SsRunConfig {
            connections: 400,
            conn_interval: Duration::from_secs(20),
            fleet_pool: 500,
            seed: 5,
            ..Default::default()
        };
        let res = shadowsocks_run(&cfg);
        assert!(res.probes.len() > 10, "{} probes", res.probes.len());
        assert!(!res.probe_syns.is_empty());
        assert_eq!(res.trigger_conns, 400);
        let (lo, hi) = res.prober_ttl_range.unwrap();
        assert!((46..=50).contains(&lo) && (46..=50).contains(&hi));
    }

    #[test]
    fn sink_run_exp1a_gets_replays() {
        let cfg = SinkRunConfig {
            exp: SinkExp::Exp1a,
            connections: 4_000,
            conn_interval: Duration::from_secs(2),
            seed: 6,
        };
        let res = sink_run(&cfg);
        assert_eq!(res.triggers.len(), 4_000);
        assert!(
            res.probes.iter().any(|p| p.kind.is_replay()),
            "no replays among {} probes",
            res.probes.len()
        );
        // NR1 must not appear for uniform random lengths.
        assert!(res
            .probes
            .iter()
            .all(|p| p.kind != gfw_core::probe::ProbeKind::Nr1));
    }
}
