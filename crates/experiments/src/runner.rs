//! The deterministic parallel run engine.
//!
//! Every experiment in this crate is a pure function of its seed
//! (gfw-lint rule D1), which makes the evaluation grid embarrassingly
//! parallel with **zero determinism risk**:
//!
//! * a [`Job`] is plain `Send` data (a spec) plus the computation that
//!   consumes it — usually a move-closure over its parameters;
//! * each worker **builds and consumes its own `Simulator`** inside the
//!   job, so the sim's `Rc<RefCell>` internals never cross a thread
//!   boundary and no `Send` bound on sim internals is needed;
//! * results are merged **in spec order**, so output is byte-identical
//!   no matter how many workers ran or how the OS scheduled them.
//!
//! Worker count resolves `--jobs N` → `GFWSIM_JOBS` → available
//! parallelism (see [`effective_jobs`]). Jobs already running inside a
//! worker execute nested [`run_jobs`] calls inline, so fanning out
//! across figures in `exp-all` never oversubscribes the machine.
//!
//! Thread primitives are permitted only in this module (gfw-lint rule
//! T1); the simulation crates stay single-threaded.

use netsim::sim::SimStats;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-count override set by `--jobs` (0 = unset).
static JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set on worker threads so nested `run_jobs` calls execute inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread accumulator of simulator counters (see
    /// [`record_sim_stats`]).
    static SIM_STATS: Cell<SimStats> = Cell::new(SimStats::default());
}

/// Override the worker count (0 clears the override).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// Hardware parallelism, or 1 when it cannot be determined.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The effective worker count: the `--jobs` override if set, else the
/// `GFWSIM_JOBS` environment variable, else available parallelism.
pub fn effective_jobs() -> usize {
    let n = JOBS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Ok(v) = std::env::var("GFWSIM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    default_parallelism()
}

/// Extract the value of a `--jobs N` / `--jobs=N` argument, if present.
pub fn parse_jobs_arg(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return it.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

/// Scan the process arguments for `--jobs` and install the override.
/// Every `exp-*` bin calls this once at startup.
pub fn configure_from_env() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(n) = parse_jobs_arg(&args) {
        set_jobs(n);
    }
}

/// A unit of work: a `Send` spec and the computation that consumes it.
///
/// Blanket-implemented for any `FnOnce() -> R + Send` closure, so a job
/// is usually written as `move || run_case(params)`.
pub trait Job: Send {
    /// The job's result, merged in spec order.
    type Output: Send;
    /// Consume the spec and produce the result.
    fn run(self) -> Self::Output;
}

impl<R: Send, F: FnOnce() -> R + Send> Job for F {
    type Output = R;
    fn run(self) -> R {
        self()
    }
}

/// One finished job: its output plus the simulator counters recorded
/// while it ran (including nested jobs).
#[derive(Debug)]
pub struct JobRun<R> {
    /// The job's return value.
    pub output: R,
    /// Sum of every [`SimStats`] recorded via [`record_sim_stats`]
    /// during the job.
    pub stats: SimStats,
    /// Wall-clock time the job spent running (measurement only — never
    /// feeds back into any simulation, which stays seed-pure).
    pub wall: std::time::Duration,
    /// Process peak RSS (kB) sampled when the job finished; 0 where the
    /// platform offers no cheap readout. VmHWM is a process-global
    /// high-water mark, so with parallel workers the value reflects the
    /// whole process at that moment, not this job alone.
    pub peak_rss_kb: u64,
}

/// Process peak resident set size in kB, from `VmHWM` in
/// `/proc/self/status`. Returns 0 on platforms without procfs.
/// Measurement only — never feeds back into any simulation.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(s) = std::fs::read_to_string("/proc/self/status") {
            for line in s.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
                    return digits.parse().unwrap_or(0);
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Credit a finished simulator's counters to the current job. The run
/// helpers in `runs.rs` call this after each `sim.run()`; the runner
/// attributes the counters to whichever job is executing on this
/// thread.
pub fn record_sim_stats(stats: &SimStats) {
    SIM_STATS.with(|s| {
        let mut cur = s.get();
        cur.merge(stats);
        s.set(cur);
    });
}

/// Run `f` against a fresh per-job accumulator, returning its output
/// and the counters it recorded. The job's counters are re-credited to
/// the enclosing scope so nested jobs roll up.
fn with_fresh_stats<R>(f: impl FnOnce() -> R) -> (R, SimStats) {
    let saved = SIM_STATS.with(|s| s.replace(SimStats::default()));
    let out = f();
    let job = SIM_STATS.with(|s| s.replace(saved));
    record_sim_stats(&job);
    (out, job)
}

/// Run jobs with [`effective_jobs`] workers; outputs in spec order.
pub fn run_jobs<J: Job>(specs: Vec<J>) -> Vec<J::Output> {
    run_jobs_with(specs, effective_jobs())
}

/// Run jobs with an explicit worker count; outputs in spec order.
pub fn run_jobs_with<J: Job>(specs: Vec<J>, workers: usize) -> Vec<J::Output> {
    run_jobs_detailed_with(specs, workers)
        .into_iter()
        .map(|r| r.output)
        .collect()
}

/// Like [`run_jobs`], but surfacing per-job [`SimStats`].
pub fn run_jobs_detailed<J: Job>(specs: Vec<J>) -> Vec<JobRun<J::Output>> {
    run_jobs_detailed_with(specs, effective_jobs())
}

/// The engine. Jobs are pulled from a shared queue by `workers` scoped
/// threads; each result lands in the slot of its spec index, so the
/// returned order (and therefore any rendered output) is independent of
/// scheduling. `workers <= 1`, a single spec, or a call from inside a
/// worker all run inline on the current thread with no thread spawned.
pub fn run_jobs_detailed_with<J: Job>(specs: Vec<J>, workers: usize) -> Vec<JobRun<J::Output>> {
    let inline = workers <= 1 || specs.len() <= 1 || IN_WORKER.with(|f| f.get());
    if inline {
        return specs
            .into_iter()
            .map(|job| {
                let started = std::time::Instant::now();
                let (output, stats) = with_fresh_stats(|| job.run());
                JobRun {
                    output,
                    stats,
                    wall: started.elapsed(),
                    peak_rss_kb: peak_rss_kb(),
                }
            })
            .collect();
    }

    let total = specs.len();
    let workers = workers.min(total);
    let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(specs.into_iter().enumerate().collect());
    let mut slots: Vec<Option<JobRun<J::Output>>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    let results = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|f| f.set(true));
                loop {
                    let next = queue.lock().expect("runner: queue poisoned").pop_front();
                    let Some((idx, job)) = next else { break };
                    let started = std::time::Instant::now();
                    let (output, stats) = with_fresh_stats(|| job.run());
                    results.lock().expect("runner: results poisoned")[idx] = Some(JobRun {
                        output,
                        stats,
                        wall: started.elapsed(),
                        peak_rss_kb: peak_rss_kb(),
                    });
                }
            });
        }
    });

    let runs: Vec<JobRun<J::Output>> = results
        .into_inner()
        .expect("runner: results poisoned")
        .into_iter()
        .map(|r| r.expect("runner: job left no result"))
        .collect();
    // Workers accumulated into their own thread-locals; credit the
    // caller's scope so enclosing jobs still roll up.
    for r in &runs {
        record_sim_stats(&r.stats);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_arrive_in_spec_order_regardless_of_workers() {
        let mk = |n: usize| (0..n).map(|i| move || i * i).collect::<Vec<_>>();
        let seq = run_jobs_with(mk(17), 1);
        for workers in [2, 3, 8, 32] {
            assert_eq!(run_jobs_with(mk(17), workers), seq);
        }
    }

    #[test]
    fn stats_roll_up_across_nested_jobs() {
        let one = SimStats {
            events: 1,
            ..SimStats::default()
        };
        let runs = run_jobs_detailed_with(
            (0..4)
                .map(|_| {
                    move || {
                        // Nested call: runs inline inside a worker.
                        let inner = run_jobs_detailed_with(
                            (0..3)
                                .map(|_| move || record_sim_stats(&one))
                                .collect::<Vec<_>>(),
                            4,
                        );
                        assert_eq!(inner.iter().map(|r| r.stats.events).sum::<u64>(), 3);
                    }
                })
                .collect::<Vec<_>>(),
            2,
        );
        // Each outer job is credited its 3 nested events.
        assert_eq!(runs.iter().map(|r| r.stats.events).sum::<u64>(), 12);
    }

    #[test]
    fn parse_jobs_arg_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs_arg(&args(&["exp", "--jobs", "4"])), Some(4));
        assert_eq!(parse_jobs_arg(&args(&["exp", "--jobs=2"])), Some(2));
        assert_eq!(parse_jobs_arg(&args(&["exp", "--paper"])), None);
    }
}
