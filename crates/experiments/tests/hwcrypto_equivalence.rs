//! Golden equivalence for the hardware crypto paths: the detection
//! experiments must be **byte-identical** with hardware dispatch active
//! (AES-NI, CLMUL GHASH, SIMD ChaCha20, AVX2 entropy histogram) and
//! with `GFWSIM_NO_HWCRYPTO=1` forcing the scalar oracles, at any
//! worker count.
//!
//! This is the contract that lets the fast paths exist at all: they
//! change *how fast* bytes are produced, never *which* bytes. The
//! expectations are the *committed* goldens from `tests/golden/` —
//! intentionally not re-blessed alongside the hardware paths, so a
//! divergence fails this suite rather than being silently snapshotted.

use std::process::Command;

/// Run `bin` with the given hardware-crypto override and worker count,
/// and compare its stdout byte-for-byte against the committed golden.
fn check(bin: &str, name: &str, no_hw: bool, jobs: &str) {
    let mut cmd = Command::new(bin);
    cmd.args(["--jobs", jobs])
        .env_remove("GFWSIM_JOBS")
        .env_remove("GFWSIM_ENGINE");
    if no_hw {
        cmd.env("GFWSIM_NO_HWCRYPTO", "1");
    } else {
        cmd.env_remove("GFWSIM_NO_HWCRYPTO");
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{name} (no_hw {no_hw}, jobs {jobs}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("utf-8 stdout");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));

    if got != want {
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
        panic!(
            "{name} with GFWSIM_NO_HWCRYPTO={} (jobs {jobs}) diverged from \
             the committed golden at line {line}\n\
             --- got ---\n{}\n--- want ---\n{}",
            if no_hw { "1" } else { "<unset>" },
            got.lines().nth(line - 1).unwrap_or("<eof>"),
            want.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

/// Every (hardware override, jobs) combination for one experiment
/// binary. On machines without the CPU features both legs run scalar
/// and the test degrades to golden-stability; CI has all four features.
fn check_all(bin: &str, name: &str) {
    for no_hw in [false, true] {
        for jobs in ["1", "4"] {
            check(bin, name, no_hw, jobs);
        }
    }
}

#[test]
fn exp_fig10_is_hwcrypto_invariant() {
    check_all(env!("CARGO_BIN_EXE_exp-fig10"), "exp-fig10");
}

#[test]
fn exp_table4_is_hwcrypto_invariant() {
    check_all(env!("CARGO_BIN_EXE_exp-table4"), "exp-table4");
}
