//! Golden equivalence for the hybrid engine: the detection experiments
//! must be **byte-identical** under the pure packet engine and the
//! hybrid engine (the session default), at any worker count.
//!
//! This is the contract that lets the hybrid engine exist at all:
//! promotion only ever applies to bulk-transfer tails issued through
//! `Ctx::transfer`, which the paper-reproduction experiments never use,
//! so every verdict, probe, and rendered table must come out the same.
//! The expectations here are the *committed* goldens from
//! `tests/golden/` — intentionally not re-blessed alongside this
//! change, so a hybrid-engine leak into detection behaviour fails this
//! suite rather than being silently snapshotted.

use std::process::Command;

/// Run `bin` with the given engine selection and worker count, and
/// compare its stdout byte-for-byte against the committed golden.
fn check(bin: &str, name: &str, engine: Option<&str>, jobs: &str) {
    let mut cmd = Command::new(bin);
    cmd.args(["--jobs", jobs]).env_remove("GFWSIM_JOBS");
    match engine {
        Some(e) => {
            cmd.env("GFWSIM_ENGINE", e);
        }
        None => {
            cmd.env_remove("GFWSIM_ENGINE");
        }
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{name} (engine {engine:?}, jobs {jobs}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("utf-8 stdout");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));

    if got != want {
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
        panic!(
            "{name} under engine {engine:?} (jobs {jobs}) diverged from the \
             committed golden at line {line}\n\
             --- got ---\n{}\n--- want ---\n{}",
            got.lines().nth(line - 1).unwrap_or("<eof>"),
            want.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

/// Every (engine, jobs) combination for one experiment binary.
fn check_all(bin: &str, name: &str) {
    for engine in [Some("packet"), None] {
        for jobs in ["1", "4"] {
            check(bin, name, engine, jobs);
        }
    }
}

#[test]
fn exp_fig10_is_engine_invariant() {
    check_all(env!("CARGO_BIN_EXE_exp-fig10"), "exp-fig10");
}

#[test]
fn exp_table4_is_engine_invariant() {
    check_all(env!("CARGO_BIN_EXE_exp-table4"), "exp-table4");
}
