//! The run engine's core guarantee: worker count never changes output.
//!
//! Spawns the real `exp-all` binary (process isolation keeps the global
//! jobs override of each run independent) on a representative subset —
//! a pure-engine grid (fig10), a multi-sim sweep (table4), and a
//! single-sim figure (fig2) — and asserts byte-identical stdout for
//! `--jobs 1` versus `--jobs 4`.

use std::process::Command;

fn exp_all_stdout(jobs: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_exp-all"))
        .args(["--only", "fig2,fig10,table4", "--jobs", jobs])
        .env_remove("GFWSIM_JOBS")
        .output()
        .expect("spawn exp-all");
    assert!(
        out.status.success(),
        "exp-all --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn output_is_byte_identical_across_worker_counts() {
    let sequential = exp_all_stdout("1");
    let parallel = exp_all_stdout("4");
    assert!(
        !sequential.is_empty(),
        "exp-all produced no output at --jobs 1"
    );
    assert_eq!(
        sequential,
        parallel,
        "exp-all output differs between --jobs 1 and --jobs 4:\n--- jobs=1 ---\n{}\n--- jobs=4 ---\n{}",
        String::from_utf8_lossy(&sequential),
        String::from_utf8_lossy(&parallel)
    );
}

#[test]
fn unknown_only_id_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_exp-all"))
        .args(["--only", "fig99"])
        .output()
        .expect("spawn exp-all");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown experiment id `fig99`"),
        "stderr: {err}"
    );
}
