//! Property tests for sharded execution: however the hosts are
//! partitioned into cells, the merged counters conserve what the
//! workload delivered — echoed bytes are exact, per-connection verdict
//! sums are partition-invariant, and the worker count never shows.

use gfw_core::blocking::BlockingConfig;
use gfw_core::gfw::VerdictCounters;
use gfw_core::{Gfw, GfwConfig};
use netsim::app::{App, AppEvent, Ctx};
use netsim::conn::TcpTuning;
use netsim::host::{HostConfig, Region};
use netsim::packet::Ipv4;
use netsim::shard::FinishFn;
use netsim::time::{Duration, SimTime};
use netsim::{run_sharded, Coupling, ShardCell, SimConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

const PAYLOAD_LEN: usize = 500;
const PORT: u16 = 8388;

/// Echoes every data segment back, and completes the close handshake.
struct EchoServer;
impl App for EchoServer {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Data { conn, data } => ctx.send(conn, data),
            AppEvent::PeerFin { conn } => ctx.fin(conn),
            _ => {}
        }
    }
}

/// Sends one high-entropy payload per connection, counts echoed bytes,
/// closes after the echo. Counting on the client side keeps probe
/// traffic (whose volume is partition-dependent) out of the tally.
struct CountingClient {
    rng: StdRng,
    echoed: Rc<RefCell<u64>>,
}
impl App for CountingClient {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Connected { conn } => {
                let mut payload = vec![0u8; PAYLOAD_LEN];
                self.rng.fill(&mut payload[..]);
                ctx.send(conn, payload);
            }
            AppEvent::Data { conn, data } => {
                *self.echoed.borrow_mut() += data.len() as u64;
                ctx.fin(conn);
            }
            AppEvent::PeerFin { conn } => ctx.fin(conn),
            _ => {}
        }
    }
}

/// Outcome of one cell: echoed bytes, verdict counters, leak check.
struct CellOut {
    echoed: u64,
    verdicts: VerdictCounters,
    tracked: usize,
}

/// Run `n` colocated client/server pairs, assigned to cells by
/// `assignment` (pair i lives wholly in cell `assignment[i]`), with a
/// full GFW (blocking disabled) installed in every cell. Labels
/// even-indexed pairs as genuine Shadowsocks servers.
fn run_partitioned(assignment: &[usize], workers: usize) -> (u64, VerdictCounters) {
    let cells_n = assignment.iter().copied().max().unwrap_or(0) + 1;
    let cells: Vec<ShardCell<CellOut>> = (0..cells_n)
        .map(|cell| {
            let pairs: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == cell)
                .map(|(i, _)| i)
                .collect();
            ShardCell::new(move |idx| {
                let mut sim = Simulator::new(SimConfig::default(), 900 + idx as u64);
                sim.set_conn_id_base((idx as u64) << 48);
                let mut config = GfwConfig::default();
                config.fleet.pool_size = 4;
                config.blocking = BlockingConfig {
                    sensitivity: 0.0,
                    ..Default::default()
                };
                let handle = Gfw::install(&mut sim, config, 77 + idx as u64);
                let echoed = Rc::new(RefCell::new(0u64));
                let client_app = sim.add_app(Box::new(CountingClient {
                    rng: StdRng::seed_from_u64(42 + idx as u64),
                    echoed: echoed.clone(),
                }));
                let server_app = sim.add_app(Box::new(EchoServer));
                for (k, &pair) in pairs.iter().enumerate() {
                    let server = sim.add_host(HostConfig::outside("srv"));
                    let client = sim.add_host(HostConfig::china("cli"));
                    sim.listen((server, PORT), server_app);
                    if pair % 2 == 0 {
                        handle.state.borrow_mut().label_shadowsocks_server(server);
                    }
                    sim.connect_at(
                        SimTime::ZERO + Duration::from_millis(100 * k as u64),
                        client_app,
                        client,
                        (server, PORT),
                        TcpTuning::default(),
                    );
                }
                let finish: FinishFn<CellOut> = Box::new(move |_sim: Simulator| {
                    let st = handle.state.borrow();
                    CellOut {
                        echoed: *echoed.borrow(),
                        verdicts: st.verdict_counters(),
                        tracked: st.tracked_conns(),
                    }
                });
                (sim, finish)
            })
        })
        .collect();
    let out = run_sharded(cells, workers, Coupling::Isolated);
    let mut echoed = 0u64;
    let mut verdicts = VerdictCounters::default();
    for cell in &out {
        echoed += cell.echoed;
        verdicts.merge(&cell.verdicts);
        assert_eq!(cell.tracked, 0, "a cell's tap leaked per-conn state");
    }
    (echoed, verdicts)
}

/// Cross-cell variant, no GFW: clients all live in cell 0, each server
/// either beside them (colocated) or in cell 1 (reached through the
/// window mailboxes). Returns (echoed bytes, live conns per cell).
fn run_split(server_remote: &[bool], workers: usize) -> (u64, Vec<u64>) {
    let n = server_remote.len();
    let addr = |octet: u8, i: usize| Ipv4::new(octet, 1, (i / 200) as u8, (i % 200) as u8);
    let remote: Vec<bool> = server_remote.to_vec();
    let cells: Vec<ShardCell<(u64, u64)>> = (0..2usize)
        .map(|idx_outer| {
            let _ = idx_outer;
            let remote = remote.clone();
            ShardCell::new(move |idx| {
                let mut sim = Simulator::new(SimConfig::default(), 300 + idx as u64);
                sim.set_conn_id_base((idx as u64) << 48);
                let echoed = Rc::new(RefCell::new(0u64));
                let client_app = sim.add_app(Box::new(CountingClient {
                    rng: StdRng::seed_from_u64(9 + idx as u64),
                    echoed: echoed.clone(),
                }));
                let server_app = sim.add_app(Box::new(EchoServer));
                for (i, &is_remote) in remote.iter().enumerate() {
                    let client = addr(110, i);
                    let server = addr(172, i);
                    if idx == 0 {
                        sim.add_host_with_addr(client, HostConfig::china("cli"));
                        if is_remote {
                            sim.add_remote_host(server, Region::Outside, 1);
                        } else {
                            sim.add_host_with_addr(server, HostConfig::outside("srv"));
                            sim.listen((server, PORT), server_app);
                        }
                        sim.connect_at(
                            SimTime::ZERO + Duration::from_millis(50 * i as u64),
                            client_app,
                            client,
                            (server, PORT),
                            TcpTuning::default(),
                        );
                    } else if is_remote {
                        sim.add_host_with_addr(server, HostConfig::outside("srv"));
                        sim.listen((server, PORT), server_app);
                        sim.add_remote_host(client, Region::China, 0);
                    }
                }
                let finish: FinishFn<(u64, u64)> = Box::new(move |sim: Simulator| {
                    (*echoed.borrow(), sim.live_connections() as u64)
                });
                (sim, finish)
            })
        })
        .collect();
    let out = run_sharded(
        cells,
        workers,
        Coupling::Windowed {
            lookahead: Duration::from_millis(2),
        },
    );
    let _ = n;
    (
        out.iter().map(|(e, _)| e).sum(),
        out.iter().map(|(_, l)| *l).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any assignment of pairs to up to 3 cells conserves echoed bytes
    /// exactly and keeps the per-connection verdict sums — which are
    /// RNG-free even though the store/miss split is not — equal to the
    /// ground-truth pair counts. The worker count changes nothing.
    #[test]
    fn partitions_conserve_bytes_and_verdicts(
        assignment in proptest::collection::vec(0usize..3, 3..=10),
        workers in 1usize..=3,
    ) {
        let n = assignment.len() as u64;
        let labelled = assignment.iter().enumerate().filter(|(i, _)| i % 2 == 0).count() as u64;
        let (echoed, verdicts) = run_partitioned(&assignment, workers);
        prop_assert_eq!(echoed, n * PAYLOAD_LEN as u64);
        prop_assert_eq!(verdicts.inspected, n);
        prop_assert_eq!(verdicts.stored_true + verdicts.missed_true, labelled);
        prop_assert_eq!(verdicts.stored_false + verdicts.passed_false, n - labelled);

        let (echoed_1, verdicts_1) = run_partitioned(&assignment, 1);
        prop_assert_eq!(echoed, echoed_1);
        prop_assert_eq!(verdicts, verdicts_1);
    }

    /// Random client/server splits across two windowed cells deliver
    /// every echoed byte through the mailboxes and leak no connections,
    /// identically at any worker count.
    #[test]
    fn cross_cell_splits_conserve_bytes(
        server_remote in proptest::collection::vec(any::<bool>(), 1..=6),
        workers in 1usize..=3,
    ) {
        let n = server_remote.len() as u64;
        let (echoed, live) = run_split(&server_remote, workers);
        prop_assert_eq!(echoed, n * PAYLOAD_LEN as u64);
        prop_assert_eq!(live.iter().sum::<u64>(), 0, "leaked connections: {:?}", live);

        let (echoed_1, live_1) = run_split(&server_remote, 1);
        prop_assert_eq!(echoed, echoed_1);
        prop_assert_eq!(live, live_1);
    }
}
