//! Acceptance checks for the link-impairment experiment.
//!
//! Spawns the real `exp-impair` binary (process isolation keeps each
//! run's global jobs override independent) and asserts:
//!
//! 1. the lossy sweep is byte-identical at `--jobs 1` and `--jobs 4` —
//!    impairment draws come from the single simulator RNG, so worker
//!    count must never leak into the output;
//! 2. the loss-0 section of the grid sweep reproduces the `exp-fig10`
//!    grid byte-for-byte — a zero-rate [`netsim::ImpairmentSpec`] is a
//!    strict no-op.

use std::process::Command;

fn stdout_of(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .env_remove("GFWSIM_JOBS")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn impair_output_is_byte_identical_across_worker_counts() {
    let sequential = stdout_of(env!("CARGO_BIN_EXE_exp-impair"), &["--jobs", "1"]);
    let parallel = stdout_of(env!("CARGO_BIN_EXE_exp-impair"), &["--jobs", "4"]);
    assert!(
        !sequential.is_empty(),
        "exp-impair produced no output at --jobs 1"
    );
    assert_eq!(
        sequential, parallel,
        "exp-impair output differs between --jobs 1 and --jobs 4"
    );
}

#[test]
fn loss_zero_section_matches_exp_fig10() {
    let impair = stdout_of(env!("CARGO_BIN_EXE_exp-impair"), &["--jobs", "2"]);
    let fig10 = stdout_of(env!("CARGO_BIN_EXE_exp-fig10"), &[]);

    // exp-fig10 prints a banner line, a blank line, then the grid.
    let fig10_body = fig10
        .splitn(3, '\n')
        .nth(2)
        .expect("exp-fig10 banner + body")
        .trim_end_matches('\n');

    // The loss-0 grid sits between its header and the 0.1% header.
    let start_marker = "--- loss 0% ---\n\n";
    let start = impair.find(start_marker).expect("loss 0% section") + start_marker.len();
    let end = impair
        .find("\n--- loss 0.1% ---")
        .expect("loss 0.1% section");
    let section = impair[start..end].trim_end_matches('\n');

    assert!(!fig10_body.is_empty(), "empty exp-fig10 body:\n{fig10}");
    assert_eq!(section, fig10_body, "loss-0 grid diverged from exp-fig10");
}
