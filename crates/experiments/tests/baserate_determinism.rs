//! Engine/worker invariance for the base-rate sweep: `exp-baserate`
//! must be **byte-identical** under the pure packet engine and the
//! hybrid engine (the session default), at any worker count.
//!
//! The mix population is exactly the workload the hybrid engine
//! rewrites most aggressively — every background bulk tail is a
//! promoted fluid transfer — so this is the sharpest equivalence test
//! in the suite: a single shared-RNG draw inside the mix apps, or a
//! store decision influenced by segmentation, would diverge here.
//! Expectations are the *committed* golden from `tests/golden/`,
//! intentionally not re-blessed by this test.

use std::process::Command;

/// Run `exp-baserate` with the given engine selection and worker
/// count, and compare stdout byte-for-byte against the golden.
fn check(engine: Option<&str>, jobs: &str) {
    let bin = env!("CARGO_BIN_EXE_exp-baserate");
    let mut cmd = Command::new(bin);
    cmd.args(["--jobs", jobs]).env_remove("GFWSIM_JOBS");
    match engine {
        Some(e) => {
            cmd.env("GFWSIM_ENGINE", e);
        }
        None => {
            cmd.env_remove("GFWSIM_ENGINE");
        }
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("spawn exp-baserate: {e}"));
    assert!(
        out.status.success(),
        "exp-baserate (engine {engine:?}, jobs {jobs}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("utf-8 stdout");

    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exp-baserate.txt");
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));

    if got != want {
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
        panic!(
            "exp-baserate under engine {engine:?} (jobs {jobs}) diverged from \
             the committed golden at line {line}\n\
             --- got ---\n{}\n--- want ---\n{}",
            got.lines().nth(line - 1).unwrap_or("<eof>"),
            want.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn exp_baserate_is_engine_and_jobs_invariant() {
    for engine in [Some("packet"), None] {
        for jobs in ["1", "4"] {
            check(engine, jobs);
        }
    }
}
