//! The shard executor's core guarantee: `GFWSIM_SHARDS` is a pure
//! throughput knob. Spawns the real `exp-scale --quick` binary (process
//! isolation keeps each env combination independent) across the full
//! {shards} × {engine} × {jobs} grid and asserts byte-identical stdout
//! within each engine — worker count and runner job count must leave
//! the seed-pure counters untouched.

use std::process::Command;

fn quick_stdout(shards: &str, engine: &str, jobs: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_exp-scale"))
        .args(["--quick", "--flows", "2000"])
        .env("GFWSIM_SHARDS", shards)
        .env("GFWSIM_ENGINE", engine)
        .env("GFWSIM_JOBS", jobs)
        .output()
        .expect("spawn exp-scale");
    assert!(
        out.status.success(),
        "exp-scale --quick (shards={shards} engine={engine} jobs={jobs}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn quick_output_is_invariant_across_shards_and_jobs() {
    for engine in ["packet", "hybrid"] {
        let baseline = quick_stdout("1", engine, "1");
        assert!(
            !baseline.is_empty(),
            "exp-scale --quick produced no output ({engine})"
        );
        for shards in ["1", "2", "4"] {
            for jobs in ["1", "4"] {
                let got = quick_stdout(shards, engine, jobs);
                assert_eq!(
                    baseline,
                    got,
                    "stdout diverged at engine={engine} shards={shards} jobs={jobs}:\n\
                     --- baseline ---\n{}\n--- got ---\n{}",
                    String::from_utf8_lossy(&baseline),
                    String::from_utf8_lossy(&got)
                );
            }
        }
    }
}

#[test]
fn engines_are_distinguishable_in_quick_output() {
    // Guard against the invariance test passing vacuously (e.g. the
    // binary ignoring the env entirely): the two engines must produce
    // different event counts over the same workload.
    let packet = quick_stdout("1", "packet", "1");
    let hybrid = quick_stdout("1", "hybrid", "1");
    assert_ne!(
        packet, hybrid,
        "packet and hybrid engines printed identical counters"
    );
}
