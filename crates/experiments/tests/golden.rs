//! Golden-output tests: the rendered reports of representative
//! experiments are pinned byte-for-byte under `tests/golden/`.
//!
//! The determinism contract makes this cheap to maintain: output
//! depends only on (scale, seed), never on worker count or wall clock,
//! so a diff here means the experiment's behaviour actually changed.
//! When a change is intentional, re-bless the snapshots:
//!
//! ```text
//! GFWSIM_BLESS=1 cargo test -p experiments --test golden
//! ```
//!
//! and review the snapshot diff like any other code change.

use std::path::PathBuf;
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(bin: &str, name: &str) {
    let out = Command::new(bin)
        .args(["--jobs", "2"])
        .env_remove("GFWSIM_JOBS")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{name} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let path = golden_path(name);

    if std::env::var_os("GFWSIM_BLESS").is_some() {
        std::fs::write(&path, &got).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }

    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GFWSIM_BLESS=1 to create it",
            path.display()
        )
    });
    if got != want {
        // Point at the first diverging line so the failure is readable
        // without an external diff tool.
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map(|i| i + 1)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
        panic!(
            "{name} output diverged from {} at line {line}\n\
             (re-bless with GFWSIM_BLESS=1 if the change is intended)\n\
             --- got line {line} ---\n{}\n--- want line {line} ---\n{}",
            path.display(),
            got.lines().nth(line - 1).unwrap_or("<eof>"),
            want.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn exp_fig10_matches_golden() {
    check(env!("CARGO_BIN_EXE_exp-fig10"), "exp-fig10");
}

#[test]
fn exp_table4_matches_golden() {
    check(env!("CARGO_BIN_EXE_exp-table4"), "exp-table4");
}

#[test]
fn exp_fig7_matches_golden() {
    check(env!("CARGO_BIN_EXE_exp-fig7"), "exp-fig7");
}

#[test]
fn exp_baserate_matches_golden() {
    check(env!("CARGO_BIN_EXE_exp-baserate"), "exp-baserate");
}
