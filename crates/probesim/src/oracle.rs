//! The probing oracle: wraps a [`ServerConn`] engine and answers "what
//! does this server do when sent these bytes?" in the paper's reaction
//! taxonomy.

use gfw_core::probe::Reaction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowsocks::addr::TargetAddr;
use shadowsocks::server::{ServerAction, ServerConn};
use shadowsocks::ServerConfig;

/// Fate model for the server's *outbound* connections (what happens
/// when a probe decrypts to a plausible target): mirrors
/// `netsim::internet::InternetModel` for the engine-only path.
#[derive(Clone, Copy, Debug)]
pub struct TargetModel {
    /// Probability a random IPv4 target refuses quickly (server then
    /// closes the probe connection with FIN/ACK); otherwise the target
    /// black-holes and the prober times out first.
    pub p_refused: f64,
}

impl Default for TargetModel {
    fn default() -> Self {
        TargetModel { p_refused: 0.5 }
    }
}

impl TargetModel {
    /// Resolve a connect attempt into the prober-visible reaction.
    pub fn resolve(&self, target: &TargetAddr, rng: &mut impl Rng) -> Reaction {
        match target {
            // Garbage hostnames NXDOMAIN fast → server closes (FIN).
            TargetAddr::Hostname(..) => Reaction::FinAck,
            // No v6 route → fast failure → FIN.
            TargetAddr::Ipv6(..) => Reaction::FinAck,
            TargetAddr::Ipv4(..) => {
                if rng.gen_bool(self.p_refused) {
                    Reaction::FinAck
                } else {
                    Reaction::Timeout
                }
            }
        }
    }
}

/// A probing oracle over one server configuration.
pub struct EngineOracle {
    /// Server configuration under test.
    pub config: ServerConfig,
    /// Outbound-connection fate model.
    pub target: TargetModel,
    rng: StdRng,
    shared: ServerConn,
    fresh_seed: u64,
}

impl EngineOracle {
    /// Create an oracle for `config`.
    pub fn new(config: ServerConfig, seed: u64) -> EngineOracle {
        EngineOracle {
            shared: ServerConn::new(config.clone(), seed),
            config,
            target: TargetModel::default(),
            rng: StdRng::seed_from_u64(seed ^ 0x0AC1E),
            fresh_seed: seed,
        }
    }

    fn classify(&mut self, server: &mut ServerConn, conn: u64, payload: &[u8]) -> Reaction {
        // The first action decides the prober-visible fate; anything the
        // engine queues after it happens on an already-closed socket.
        if let Some(action) = server.on_data(conn, payload).into_iter().next() {
            match action {
                ServerAction::CloseRst => return Reaction::Rst,
                ServerAction::CloseFin => return Reaction::FinAck,
                ServerAction::SendToClient(_) | ServerAction::RelayToTarget(_) => {
                    return Reaction::Data
                }
                ServerAction::ConnectTarget(target) => {
                    let fate = self.target.resolve(&target, &mut self.rng);
                    if fate == Reaction::FinAck {
                        // The engine reacts to the failed connect.
                        for a in server.on_target_failed(conn) {
                            if a == ServerAction::CloseFin {
                                return Reaction::FinAck;
                            }
                            if a == ServerAction::CloseRst {
                                return Reaction::Rst;
                            }
                        }
                        return Reaction::FinAck;
                    }
                    // Target accepted or black-holed: for a *replayed
                    // genuine payload* the target answers, the server
                    // proxies → Data. For random junk the SYN hangs and
                    // the prober times out. Heuristic: a completed
                    // connect on random bytes still means a hang.
                    return fate;
                }
            }
        }
        Reaction::Timeout
    }

    /// Probe a **fresh** server instance (replay filter state does not
    /// carry over). This is how length-sweep batteries are run.
    pub fn probe_fresh(&mut self, payload: &[u8]) -> Reaction {
        self.fresh_seed = self.fresh_seed.wrapping_add(1);
        let mut server = ServerConn::new(self.config.clone(), self.fresh_seed);
        let conn = server.open_conn();
        self.classify(&mut server, conn, payload)
    }

    /// Probe the **shared** long-lived server instance (replay filter
    /// state accumulates) — needed for replay-detection batteries
    /// (§5.3).
    pub fn probe_shared(&mut self, payload: &[u8]) -> Reaction {
        let conn = self.shared.open_conn();
        let mut shared =
            std::mem::replace(&mut self.shared, ServerConn::new(self.config.clone(), 0));
        let r = self.classify(&mut shared, conn, payload);
        shared.close_conn(conn);
        self.shared = shared;
        r
    }

    /// Replay of a *genuine* payload against the shared server. If the
    /// payload decrypts and the target answers, the server proxies data
    /// back (Table 5's "D").
    pub fn probe_shared_replay(&mut self, payload: &[u8]) -> Reaction {
        let conn = self.shared.open_conn();
        let mut shared =
            std::mem::replace(&mut self.shared, ServerConn::new(self.config.clone(), 0));
        let mut reaction = None;
        for action in shared.on_data(conn, payload) {
            match action {
                ServerAction::CloseRst => reaction = Some(Reaction::Rst),
                ServerAction::CloseFin => reaction = Some(Reaction::FinAck),
                ServerAction::SendToClient(_) | ServerAction::RelayToTarget(_) => {
                    reaction = Some(Reaction::Data)
                }
                ServerAction::ConnectTarget(_) => {
                    // A replayed genuine payload names a real, reachable
                    // target: the connect succeeds and the pending data
                    // flushes to it — observable as proxied data.
                    let acts = shared.on_target_connected(conn);
                    if acts
                        .iter()
                        .any(|a| matches!(a, ServerAction::RelayToTarget(_)))
                    {
                        reaction = Some(Reaction::Data);
                    } else {
                        reaction = Some(Reaction::Timeout);
                    }
                }
            }
            if reaction.is_some() {
                break;
            }
        }
        shared.close_conn(conn);
        self.shared = shared;
        reaction.unwrap_or(Reaction::Timeout)
    }

    /// Random bytes of the given length.
    pub fn random_payload(&mut self, len: usize) -> Vec<u8> {
        let mut p = vec![0u8; len];
        self.rng.fill(&mut p[..]);
        p
    }

    /// Restart the shared server (replay filter forgets — §7.2).
    pub fn restart_shared(&mut self) {
        self.shared.restart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowsocks::Profile;
    use sscrypto::method::Method;

    #[test]
    fn fresh_probe_reactions_match_profiles() {
        // Old libev AEAD: silent below threshold, RST above.
        let config = ServerConfig::new(Method::Aes128Gcm, "pw", Profile::LIBEV_OLD);
        let mut oracle = EngineOracle::new(config, 1);
        let short = oracle.random_payload(40);
        assert_eq!(oracle.probe_fresh(&short), Reaction::Timeout);
        let long = oracle.random_payload(221);
        assert_eq!(oracle.probe_fresh(&long), Reaction::Rst);
    }

    #[test]
    fn shared_probe_accumulates_filter_state() {
        let config = ServerConfig::new(Method::Aes256Gcm, "pw", Profile::LIBEV_OLD);
        let mut oracle = EngineOracle::new(config.clone(), 2);
        // A genuine payload proxies on the first replay? No — even the
        // FIRST presentation of a genuine payload to the shared server
        // inserts its salt; a second presentation trips the filter.
        let mut rng = StdRng::seed_from_u64(9);
        let mut client =
            shadowsocks::ClientSession::new(&config, TargetAddr::Ipv4([10, 0, 0, 1], 80), &mut rng);
        let wire = client.send(b"hello");
        assert_eq!(oracle.probe_shared_replay(&wire), Reaction::Data);
        assert_eq!(oracle.probe_shared_replay(&wire), Reaction::Rst);
    }

    #[test]
    fn target_model_hostname_fails_fast() {
        let tm = TargetModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            tm.resolve(&TargetAddr::Hostname(b"junk".to_vec(), 80), &mut rng),
            Reaction::FinAck
        );
    }
}
