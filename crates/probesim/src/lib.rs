//! # probesim — the prober simulator (§5.1) and implementation
//! inference (§5.2.2)
//!
//! The paper's authors built a prober simulator to send all seven GFW
//! probe types at Shadowsocks implementations and record their
//! reactions; this crate is that tool. It drives the *pure*
//! [`shadowsocks::server::ServerConn`] engine (no network needed), maps
//! engine actions to the paper's TIMEOUT/RST/FIN-ACK/DATA taxonomy, and
//! regenerates the Fig 10 reaction matrices and Table 5 directly.
//!
//! On top sits the attacker's endgame: [`infer()`], which interrogates a
//! server with probe batteries and recovers the cryptographic
//! construction, IV/salt length (and hence sometimes the exact cipher),
//! address-type masking, replay-filter presence, and an
//! implementation+version guess — everything §5.2.2 says the GFW can
//! learn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod infer;
pub mod matrix;
pub mod oracle;

pub use gfw_core::probe::Reaction;
pub use infer::{infer, Inference};
pub use matrix::{reaction_matrix, replay_table, MatrixRow};
pub use oracle::{EngineOracle, TargetModel};
