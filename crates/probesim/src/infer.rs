//! Implementation inference from probe reactions (§5.2.2).
//!
//! "An attacker can identify a Shadowsocks server with high confidence
//! using statistical analysis of its reactions to random probes" — and
//! more: the IV/salt length, sometimes the exact cipher, whether the
//! address type is masked, whether a replay filter is present, and an
//! implementation+version guess. This module runs those batteries
//! against an [`EngineOracle`].

use crate::matrix::reaction_matrix;
use crate::oracle::EngineOracle;
use gfw_core::probe::Reaction;
use sscrypto::method::Kind;

/// What the attacker managed to learn.
#[derive(Clone, Debug, PartialEq)]
pub struct Inference {
    /// Did the reaction profile match any Shadowsocks signature?
    pub shadowsocks_like: bool,
    /// Stream vs AEAD construction, when determinable.
    pub construction: Option<Kind>,
    /// Inferred IV (stream) or salt (AEAD) length in bytes.
    pub nonce_len: Option<usize>,
    /// Whether the server masks the address-type byte (3/16 vs 3/256
    /// acceptance).
    pub masks_addr_type: Option<bool>,
    /// Cipher identification when the nonce length pins it down (a
    /// 12-byte stream IV is uniquely `chacha20-ietf`).
    pub cipher_hint: Option<&'static str>,
    /// Replay filter detected? `None` when the test does not apply.
    pub replay_filter: Option<bool>,
    /// Human-readable implementation guess.
    pub implementation_guess: &'static str,
}

impl Default for Inference {
    fn default() -> Self {
        Inference {
            shadowsocks_like: false,
            construction: None,
            nonce_len: None,
            masks_addr_type: None,
            cipher_hint: None,
            replay_filter: None,
            implementation_guess: "unknown / probe-resistant",
        }
    }
}

fn stream_cipher_hint(iv_len: usize) -> Option<&'static str> {
    match iv_len {
        // §5.2.2: chacha20-ietf is the only stream cipher with a
        // 12-byte IV.
        12 => Some("chacha20-ietf"),
        8 => Some("chacha20 (legacy) / 8-byte-IV class"),
        16 => Some("aes-*-ctr / aes-*-cfb / rc4-md5 class"),
        _ => None,
    }
}

fn aead_cipher_hint(salt_len: usize) -> Option<&'static str> {
    match salt_len {
        16 => Some("aes-128-gcm"),
        24 => Some("aes-192-gcm"),
        32 => Some("aes-256-gcm / chacha20-ietf-poly1305"),
        _ => None,
    }
}

/// Run the full inference battery. `samples` probes per length (the
/// paper notes the GFW spreads such batteries over hours to stay
/// unobtrusive; we have no such constraint).
pub fn infer(oracle: &mut EngineOracle, samples: usize) -> Inference {
    // Battery 1: length sweep 1..=70 plus the NR2 length.
    let lengths: Vec<usize> = (1..=70).chain([221usize]).collect();
    let rows = reaction_matrix(&oracle.config, lengths, samples, 0x1F2E3D);
    let mut out = Inference::default();

    // First length with any non-timeout reaction.
    let first_reactive = rows
        .iter()
        .find(|r| r.frac(Reaction::Timeout) < 1.0)
        .map(|r| r.len);
    let Some(l0) = first_reactive else {
        // Everything times out: post-fix implementations are built to
        // land here (indistinguishable from a closed-mouth service).
        return out;
    };

    let long = rows.iter().find(|r| r.len == 221).unwrap();
    let long_rst = long.frac(Reaction::Rst);

    // OutlineVPN v1.0.6: FIN at exactly 50, RST above.
    let fin50 = rows
        .iter()
        .find(|r| r.len == 50)
        .map(|r| r.frac(Reaction::FinAck))
        .unwrap_or(0.0);
    if fin50 > 0.9 && long_rst > 0.9 && l0 == 50 {
        out.shadowsocks_like = true;
        out.construction = Some(Kind::Aead);
        out.nonce_len = Some(32);
        out.cipher_hint = Some("chacha20-ietf-poly1305");
        out.replay_filter = Some(false);
        out.implementation_guess = "OutlineVPN v1.0.6";
        return out;
    }

    if l0 >= 51 && long_rst > 0.97 {
        // AEAD threshold behaviour: silent until salt+35, then
        // deterministic RST (old libev).
        out.shadowsocks_like = true;
        out.construction = Some(Kind::Aead);
        let salt = l0 - 35;
        out.nonce_len = Some(salt);
        out.cipher_hint = aead_cipher_hint(salt);
        out.implementation_guess = "ss-libev v3.0.8-v3.2.5 (AEAD)";
        return out;
    }

    if l0 <= 17 {
        // Stream construction: RSTs begin right after the IV.
        let iv = l0 - 1;
        out.construction = Some(Kind::Stream);
        out.nonce_len = Some(iv);
        out.cipher_hint = stream_cipher_hint(iv);
        // Every post-IV length exercises the same address-type check,
        // so the RST-rate statistic can pool the whole sweep instead of
        // relying on the single 221-byte row. Pooling multiplies the
        // observation count by ~50 and makes the 13/16-vs-253/256
        // discrimination below robust at small per-length batteries.
        let (rst_pooled, total_pooled) =
            rows.iter()
                .filter(|r| r.len > l0)
                .fold((0usize, 0usize), |(rst, total), r| {
                    (
                        rst + r.counts.get(&Reaction::Rst).copied().unwrap_or(0),
                        total + r.total(),
                    )
                });
        let long_rst = if total_pooled == 0 {
            long_rst
        } else {
            rst_pooled as f64 / total_pooled as f64
        };
        if long_rst > 0.97 {
            out.shadowsocks_like = true;
            out.masks_addr_type = Some(false);
            out.implementation_guess = "unmasked stream (shadowsocks-python / ShadowsocksR class)";
            // The repeat-probe filter test is uninformative at a 253/256
            // baseline RST rate.
            out.replay_filter = None;
            return out;
        }
        if (long_rst - 13.0 / 16.0).abs() < 0.10 {
            out.shadowsocks_like = true;
            out.masks_addr_type = Some(true);
            out.implementation_guess = "ss-libev v3.0.8-v3.2.5 (stream)";
            out.replay_filter = Some(detect_replay_filter(oracle));
            return out;
        }
    }

    out
}

/// §5.3's repeated-probe test: send the same random probe to the same
/// server twice. A replay filter makes the second always RST; without
/// one, the second behaves statistically like the first. Only
/// meaningful when the baseline RST rate is well below 1 (the masked
/// stream case, 13/16).
pub fn detect_replay_filter(oracle: &mut EngineOracle) -> bool {
    let mut always_rst = true;
    let mut informative = 0;
    while informative < 20 {
        let probe = oracle.random_payload(221);
        let first = oracle.probe_shared(&probe);
        if first == Reaction::Rst {
            continue; // invalid-type outcome; repeating teaches nothing
        }
        informative += 1;
        let second = oracle.probe_shared(&probe);
        if second != Reaction::Rst {
            always_rst = false;
            break;
        }
    }
    always_rst
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowsocks::{Profile, ServerConfig};
    use sscrypto::method::Method;

    fn run(method: Method, profile: Profile) -> Inference {
        let config = ServerConfig::new(method, "pw", profile);
        let mut oracle = EngineOracle::new(config, 7);
        infer(&mut oracle, 60)
    }

    #[test]
    fn identifies_old_libev_stream_and_iv() {
        for (method, iv) in [
            (Method::ChaCha20, 8),
            (Method::ChaCha20Ietf, 12),
            (Method::Aes256Cfb, 16),
        ] {
            let inf = run(method, Profile::LIBEV_OLD);
            assert!(inf.shadowsocks_like, "{}", method.name());
            assert_eq!(inf.construction, Some(Kind::Stream));
            assert_eq!(inf.nonce_len, Some(iv), "{}", method.name());
            assert_eq!(inf.masks_addr_type, Some(true));
            assert_eq!(inf.replay_filter, Some(true));
            if iv == 12 {
                assert_eq!(inf.cipher_hint, Some("chacha20-ietf"));
            }
        }
    }

    #[test]
    fn identifies_old_libev_aead_and_salt() {
        for (method, salt) in [
            (Method::Aes128Gcm, 16),
            (Method::Aes192Gcm, 24),
            (Method::Aes256Gcm, 32),
        ] {
            let inf = run(method, Profile::LIBEV_OLD);
            assert!(inf.shadowsocks_like, "{}", method.name());
            assert_eq!(inf.construction, Some(Kind::Aead));
            assert_eq!(inf.nonce_len, Some(salt), "{}", method.name());
            if salt == 24 {
                assert_eq!(inf.cipher_hint, Some("aes-192-gcm"));
            }
        }
    }

    #[test]
    fn identifies_outline_106() {
        let inf = run(Method::ChaCha20IetfPoly1305, Profile::OUTLINE_1_0_6);
        assert!(inf.shadowsocks_like);
        assert_eq!(inf.implementation_guess, "OutlineVPN v1.0.6");
        assert_eq!(inf.nonce_len, Some(32));
    }

    #[test]
    fn identifies_unmasked_stream_class() {
        let inf = run(Method::Aes256Cfb, Profile::SS_PYTHON);
        assert!(inf.shadowsocks_like);
        assert_eq!(inf.masks_addr_type, Some(false));
        assert!(inf.implementation_guess.contains("unmasked"));
    }

    #[test]
    fn post_fix_implementations_are_opaque() {
        for (method, profile) in [
            (Method::Aes256Cfb, Profile::LIBEV_NEW),
            (Method::Aes256Gcm, Profile::LIBEV_NEW),
            (Method::ChaCha20IetfPoly1305, Profile::OUTLINE_1_0_7),
            (Method::ChaCha20IetfPoly1305, Profile::OUTLINE_1_1_0),
        ] {
            let inf = run(method, profile);
            assert!(
                !inf.shadowsocks_like,
                "{} {} must be opaque",
                profile.name,
                method.name()
            );
            assert_eq!(inf.construction, None);
        }
    }

    #[test]
    fn filter_detection_distinguishes_filtered_servers() {
        // Old libev (filter) vs a hypothetical filterless masked stream.
        let with = ServerConfig::new(Method::Aes256Ctr, "pw", Profile::LIBEV_OLD);
        let mut oracle = EngineOracle::new(with, 9);
        assert!(detect_replay_filter(&mut oracle));

        let mut no_filter_profile = Profile::LIBEV_OLD;
        no_filter_profile.replay_filter = false;
        let without = ServerConfig::new(Method::Aes256Ctr, "pw", no_filter_profile);
        let mut oracle = EngineOracle::new(without, 10);
        assert!(!detect_replay_filter(&mut oracle));
    }
}
