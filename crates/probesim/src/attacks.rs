//! Historical active-probing attacks on Shadowsocks stream ciphers
//! (§2.1 of the paper).
//!
//! * **BreakWa11's address-type oracle (2015)**: stream ciphers are
//!   malleable, so an attacker XORs the ciphertext byte carrying the
//!   address type through all 256 values. Exactly 3 (or 48, with
//!   nibble masking) of them decrypt to a valid type and make the
//!   server behave differently — a clean statistical confirmation that
//!   the server speaks Shadowsocks, and of whether it masks.
//! * **Zhiniang Peng's redirect/decryption oracle (2020)**: with known
//!   or guessed target-spec plaintext, the same malleability lets the
//!   attacker *rewrite* the target in a recorded connection to an
//!   address they control. A filterless server then decrypts the whole
//!   recorded stream and helpfully relays the plaintext to the
//!   attacker.
//!
//! Both attacks motivated the AEAD construction; run against an AEAD
//! server they collapse into plain authentication failures.

use shadowsocks::addr::TargetAddr;
use shadowsocks::server::{ServerAction, ServerConn};
use shadowsocks::ServerConfig;
use std::collections::HashMap;

/// Immediate server behaviours distinguishable by the attacker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Behaviour {
    /// Connection reset.
    Reset,
    /// Server kept waiting.
    Wait,
    /// Server attempted an outbound connection (observable via timing
    /// in practice; directly via the engine here).
    Outbound,
}

fn immediate(server: &mut ServerConn, conn: u64, payload: &[u8]) -> Behaviour {
    for action in server.on_data(conn, payload) {
        match action {
            ServerAction::CloseRst | ServerAction::CloseFin => return Behaviour::Reset,
            ServerAction::ConnectTarget(_) => return Behaviour::Outbound,
            _ => {}
        }
    }
    Behaviour::Wait
}

/// Result of the BreakWa11 enumeration.
#[derive(Clone, Debug)]
pub struct AddrTypeOracle {
    /// Behaviour counts over the 256 possible address-type byte values.
    pub behaviours: HashMap<Behaviour, usize>,
}

impl AddrTypeOracle {
    /// Values that did *not* reset — i.e. decrypted to a valid address
    /// type (or an incomplete-but-plausible spec).
    pub fn non_reset(&self) -> usize {
        256 - self.behaviours.get(&Behaviour::Reset).copied().unwrap_or(0)
    }

    /// Infer masking from the count: 3/256 valid without masking,
    /// 48/256 with (§5.2.1's 3/16). A count of exactly 1 means only the
    /// untampered original (delta 0) was accepted — an *authenticated*
    /// protocol, not a malleable stream cipher.
    pub fn masking_inferred(&self) -> Option<bool> {
        match self.non_reset() {
            2..=10 => Some(false),
            38..=58 => Some(true),
            _ => None,
        }
    }

    /// Confirms the server is a stream-cipher Shadowsocks server: the
    /// behaviour split matches one of the two known valid fractions.
    pub fn confirms_shadowsocks(&self) -> bool {
        self.masking_inferred().is_some()
    }
}

/// Run the BreakWa11 attack: take a recorded first packet whose
/// address-type byte sits at `iv_len` in the plaintext, and try all 256
/// values of that byte by XORing the ciphertext (CTR/CFB malleability:
/// flipping ciphertext bit i flips plaintext bit i in place).
///
/// Each trial runs against a fresh server (the historical attack made
/// many separate connections).
pub fn breakwa11(config: &ServerConfig, recorded: &[u8], iv_len: usize) -> AddrTypeOracle {
    let mut behaviours: HashMap<Behaviour, usize> = HashMap::new();
    for delta in 0u16..=255 {
        let mut probe = recorded.to_vec();
        probe[iv_len] ^= delta as u8;
        let mut server = ServerConn::new(config.clone(), 1000 + delta as u64);
        let conn = server.open_conn();
        *behaviours
            .entry(immediate(&mut server, conn, &probe))
            .or_insert(0) += 1;
    }
    AddrTypeOracle { behaviours }
}

/// Result of the Peng redirect attack.
#[derive(Clone, Debug)]
pub struct RedirectResult {
    /// The target the tampered replay decrypted to, as seen by the
    /// server.
    pub redirected_to: Option<TargetAddr>,
    /// The plaintext the server relayed to the attacker's address — the
    /// decrypted contents of the victim's recorded connection.
    pub leaked_plaintext: Vec<u8>,
}

/// Run the redirect/decryption-oracle attack against a stream-cipher
/// server without a replay filter.
///
/// `recorded` is the victim's first packet (IV ‖ ciphertext);
/// `known_spec` is the attacker's guess of the original target
/// specification (here exact — the attack degrades gracefully with
/// partial knowledge); `attacker` is where to redirect. Requires
/// `known_spec.encode().len() == attacker.encode().len()` (the paper's
/// attack pads hostnames to match).
pub fn peng_redirect(
    config: &ServerConfig,
    recorded: &[u8],
    iv_len: usize,
    known_spec: &TargetAddr,
    attacker: &TargetAddr,
) -> RedirectResult {
    let orig = known_spec.encode();
    let new = attacker.encode();
    assert_eq!(
        orig.len(),
        new.len(),
        "redirect spec must match the original's length"
    );
    let mut tampered = recorded.to_vec();
    for (i, (o, n)) in orig.iter().zip(&new).enumerate() {
        // CTR malleability: plaintext ^= o ^ n at the same offset.
        tampered[iv_len + i] ^= o ^ n;
    }
    let mut server = ServerConn::new(config.clone(), 77);
    let conn = server.open_conn();
    let mut redirected_to = None;
    for action in server.on_data(conn, &tampered) {
        if let ServerAction::ConnectTarget(t) = action {
            redirected_to = Some(t);
        }
    }
    // The attacker's host accepts; the server flushes the decrypted
    // remainder of the recorded stream to it.
    let mut leaked = Vec::new();
    for action in server.on_target_connected(conn) {
        if let ServerAction::RelayToTarget(data) = action {
            leaked.extend(data);
        }
    }
    RedirectResult {
        redirected_to,
        leaked_plaintext: leaked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shadowsocks::{ClientSession, Profile};
    use sscrypto::method::Method;

    fn no_filter(profile: Profile) -> Profile {
        let mut p = profile;
        p.replay_filter = false;
        p
    }

    fn record_first_packet(config: &ServerConfig, target: TargetAddr, body: &[u8]) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(3);
        let mut client = ClientSession::new(config, target, &mut rng);
        client.send(body)
    }

    #[test]
    fn breakwa11_detects_unmasked_stream_server() {
        let config = ServerConfig::new(Method::Aes256Ctr, "victim-pw", Profile::SS_PYTHON);
        let wire = record_first_packet(&config, TargetAddr::Ipv4([1, 2, 3, 4], 443), b"hello");
        let oracle = breakwa11(&config, &wire, 16);
        assert!(oracle.confirms_shadowsocks(), "{:?}", oracle.behaviours);
        assert_eq!(oracle.masking_inferred(), Some(false));
    }

    #[test]
    fn breakwa11_detects_masking() {
        let config = ServerConfig::new(
            Method::Aes256Ctr,
            "victim-pw",
            no_filter(Profile::LIBEV_OLD),
        );
        let wire = record_first_packet(&config, TargetAddr::Ipv4([1, 2, 3, 4], 443), b"hello");
        let oracle = breakwa11(&config, &wire, 16);
        assert!(oracle.confirms_shadowsocks(), "{:?}", oracle.behaviours);
        assert_eq!(oracle.masking_inferred(), Some(true));
    }

    #[test]
    fn breakwa11_collapses_against_aead() {
        // The AEAD fix: every tampered byte is an auth failure; the
        // 3-or-48 signature disappears.
        let config = ServerConfig::new(
            Method::Aes256Gcm,
            "victim-pw",
            no_filter(Profile::LIBEV_OLD),
        );
        let wire = record_first_packet(&config, TargetAddr::Ipv4([1, 2, 3, 4], 443), b"hello");
        let oracle = breakwa11(&config, &wire, 32);
        assert!(!oracle.confirms_shadowsocks(), "{:?}", oracle.behaviours);
    }

    #[test]
    fn peng_redirect_decrypts_recorded_traffic() {
        // CTR mode: clean XOR malleability end to end.
        let config = ServerConfig::new(
            Method::Aes256Ctr,
            "victim-pw",
            no_filter(Profile::SS_PYTHON),
        );
        let secret = b"POST /login user=alice&pass=hunter2";
        let victim_target = TargetAddr::Ipv4([93, 184, 216, 34], 443);
        let wire = record_first_packet(&config, victim_target.clone(), secret);

        let attacker_addr = TargetAddr::Ipv4([203, 0, 113, 66], 4444);
        let result = peng_redirect(&config, &wire, 16, &victim_target, &attacker_addr);
        assert_eq!(result.redirected_to, Some(attacker_addr));
        assert_eq!(
            result.leaked_plaintext, secret,
            "the server decrypted the victim's traffic for the attacker"
        );
    }

    #[test]
    fn peng_redirect_defeated_by_replay_filter_variants() {
        // Not by the *filter* (the tampered IV is fresh for CTR? no —
        // the IV is unchanged, so the filter catches it!) — this is
        // exactly why nonce filters also blunt Peng's attack.
        let config = ServerConfig::new(Method::Aes256Ctr, "victim-pw", Profile::LIBEV_OLD);
        let victim_target = TargetAddr::Ipv4([93, 184, 216, 34], 443);
        let wire = record_first_packet(&config, victim_target.clone(), b"secret");
        // Prime the filter with the genuine connection.
        let mut server = ServerConn::new(config.clone(), 5);
        let c0 = server.open_conn();
        let _ = server.on_data(c0, &wire);

        // The tampered replay reuses the same IV → filtered.
        let attacker_addr = TargetAddr::Ipv4([203, 0, 113, 66], 4444);
        let orig = victim_target.encode();
        let new = attacker_addr.encode();
        let mut tampered = wire.clone();
        for (i, (o, n)) in orig.iter().zip(&new).enumerate() {
            tampered[16 + i] ^= o ^ n;
        }
        let c1 = server.open_conn();
        let actions = server.on_data(c1, &tampered);
        assert!(
            actions
                .iter()
                .all(|a| !matches!(a, ServerAction::ConnectTarget(_))),
            "replay filter must block the redirect: {actions:?}"
        );
    }

    #[test]
    fn peng_redirect_defeated_by_aead() {
        let config = ServerConfig::new(
            Method::Aes256Gcm,
            "victim-pw",
            no_filter(Profile::LIBEV_OLD),
        );
        let victim_target = TargetAddr::Ipv4([93, 184, 216, 34], 443);
        let wire = record_first_packet(&config, victim_target.clone(), b"secret");
        let attacker_addr = TargetAddr::Ipv4([203, 0, 113, 66], 4444);
        let result = peng_redirect(&config, &wire, 32, &victim_target, &attacker_addr);
        assert_eq!(result.redirected_to, None);
        assert!(result.leaked_plaintext.is_empty());
    }
}
