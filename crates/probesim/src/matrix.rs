//! Reaction-matrix generation: the machinery behind Fig 10 and Table 5.

use crate::oracle::EngineOracle;
use gfw_core::probe::{build_payload, ProbeKind, Reaction};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shadowsocks::{ClientSession, ServerConfig, TargetAddr};
use std::collections::HashMap;

/// Reaction counts for one probe length.
#[derive(Clone, Debug, Default)]
pub struct MatrixRow {
    /// Probe length in bytes.
    pub len: usize,
    /// Reaction → count.
    pub counts: HashMap<Reaction, usize>,
}

impl MatrixRow {
    /// Total probes in this row.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Fraction of a given reaction.
    pub fn frac(&self, r: Reaction) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        *self.counts.get(&r).unwrap_or(&0) as f64 / self.total() as f64
    }

    /// The dominant reaction, if any probes were sent. Count ties break
    /// on the taxonomy order so the answer never depends on hash-map
    /// iteration order.
    pub fn dominant(&self) -> Option<Reaction> {
        self.counts
            .iter()
            .max_by_key(|&(&r, &c)| (c, std::cmp::Reverse(r)))
            .map(|(&r, _)| r)
    }

    /// Render like a Fig 10 cell: the dominant reaction, annotated with
    /// minority reactions when present.
    pub fn cell(&self) -> String {
        let mut parts: Vec<(Reaction, usize)> = self.counts.iter().map(|(&r, &c)| (r, c)).collect();
        parts.sort_by_key(|&(r, c)| (std::cmp::Reverse(c), r));
        let name = |r: Reaction| match r {
            Reaction::Timeout => "TIMEOUT",
            Reaction::Rst => "RST",
            Reaction::FinAck => "FIN/ACK",
            Reaction::Data => "DATA",
            Reaction::ConnectFailed => "CONNFAIL",
        };
        match parts.len() {
            0 => "-".to_string(),
            1 => name(parts[0].0).to_string(),
            _ => {
                let total = self.total() as f64;
                parts
                    .iter()
                    .map(|&(r, c)| format!("{} ({:.0}%)", name(r), 100.0 * c as f64 / total))
                    .collect::<Vec<_>>()
                    .join(" or ")
            }
        }
    }
}

/// Sweep random probes of each length against fresh servers: one row of
/// Fig 10 per length.
pub fn reaction_matrix(
    config: &ServerConfig,
    lengths: impl IntoIterator<Item = usize>,
    samples: usize,
    seed: u64,
) -> Vec<MatrixRow> {
    let mut oracle = EngineOracle::new(config.clone(), seed);
    lengths
        .into_iter()
        .map(|len| {
            let mut row = MatrixRow {
                len,
                ..Default::default()
            };
            for _ in 0..samples {
                let payload = oracle.random_payload(len);
                let r = oracle.probe_fresh(&payload);
                *row.counts.entry(r).or_insert(0) += 1;
            }
            row
        })
        .collect()
}

/// Table 5 generator: reactions of one configuration to identical and
/// byte-changed replays of a genuine first payload.
pub fn replay_table(config: &ServerConfig, seed: u64) -> (Reaction, Vec<Reaction>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut oracle = EngineOracle::new(config.clone(), seed ^ 0x7AB1E5);
    // A genuine connection whose payload we record.
    let mut client = ClientSession::new(
        config,
        TargetAddr::Hostname(b"www.example.com".to_vec(), 443),
        &mut rng,
    );
    let wire = client.send(b"\x16\x03\x01\x00\xc8 genuine-looking first flight data");
    // Prime the server with the genuine connection.
    let _ = oracle.probe_shared_replay(&wire);

    // Identical replay (R1): names the original, reachable target, so
    // on a filterless server it gets proxied (Table 5's "D").
    let identical = oracle.probe_shared_replay(&wire);
    // Byte-changed replays (R2–R5): the decrypted target (if any) is
    // garbage, so their fate goes through the random-target model.
    let mut changed = Vec::new();
    for kind in [ProbeKind::R2, ProbeKind::R3, ProbeKind::R4, ProbeKind::R5] {
        let payload = build_payload(kind, Some(&wire), &mut rng);
        changed.push(oracle.probe_shared(&payload));
    }
    (identical, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowsocks::Profile;
    use sscrypto::method::Method;

    #[test]
    fn matrix_rows_count_correctly() {
        let config = ServerConfig::new(Method::Aes128Gcm, "pw", Profile::LIBEV_OLD);
        let rows = reaction_matrix(&config, [10, 60], 20, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].total(), 20);
        assert_eq!(rows[0].dominant(), Some(Reaction::Timeout));
        assert_eq!(rows[1].dominant(), Some(Reaction::Rst));
        assert_eq!(rows[1].frac(Reaction::Rst), 1.0);
    }

    #[test]
    fn cell_rendering() {
        let config = ServerConfig::new(Method::Aes256Ctr, "pw", Profile::LIBEV_OLD);
        let rows = reaction_matrix(&config, [46], 300, 2);
        let cell = rows[0].cell();
        assert!(cell.contains("RST"), "{cell}");
        assert!(cell.contains('%'), "mixed cell shows percentages: {cell}");
    }

    #[test]
    fn table5_libev_old_aead() {
        let config = ServerConfig::new(Method::Aes256Gcm, "pw", Profile::LIBEV_OLD);
        let (identical, changed) = replay_table(&config, 3);
        assert_eq!(identical, Reaction::Rst);
        // Byte-changed AEAD replays all fail auth → RST.
        assert!(changed.iter().all(|&r| r == Reaction::Rst), "{changed:?}");
    }

    #[test]
    fn table5_outline_107() {
        let config = ServerConfig::new(Method::ChaCha20IetfPoly1305, "pw", Profile::OUTLINE_1_0_7);
        let (identical, changed) = replay_table(&config, 4);
        assert_eq!(identical, Reaction::Data, "no replay filter → proxied");
        assert!(
            changed.iter().all(|&r| r == Reaction::Timeout),
            "{changed:?}"
        );
    }

    #[test]
    fn table5_libev_new_stream() {
        let config = ServerConfig::new(Method::Aes256Cfb, "pw", Profile::LIBEV_NEW);
        let (identical, changed) = replay_table(&config, 5);
        assert_eq!(identical, Reaction::Timeout);
        // Stream byte-changed replays: mixture of T/FIN possible, never
        // RST on the silent profile.
        assert!(changed.iter().all(|&r| r != Reaction::Rst), "{changed:?}");
    }
}
