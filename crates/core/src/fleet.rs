//! The prober fleet (§3.3, §3.4).
//!
//! Thousands of source addresses in Chinese consumer ASes, but — per
//! the TCP-timestamp side channel of Fig 6 — steered by a small set of
//! centralized processes. The fleet model:
//!
//! * allocates source IPs from the Table 3 AS inventory, with a
//!   new-vs-reuse policy tuned so ~12,300 unique addresses emerge from
//!   ~52,000 probes and >75% of addresses send more than one probe
//!   (Fig 3);
//! * assigns each probe to one of seven processes with shared 250 Hz /
//!   1000 Hz timestamp clocks, one process dominating (Fig 6);
//! * draws source ports ~90% from the Linux ephemeral range, never
//!   below 1024 (Fig 5), and TTLs in 46–50 (§3.4);
//! * supports *epochs* with pool churn, reproducing the small overlap
//!   between prober sets collected years apart (Fig 4).

use analysis::asn::AS_TABLE;
use netsim::conn::TcpTuning;
use netsim::host::{HostConfig, IpIdPolicy, PortPolicy, TsClock};
use netsim::packet::Ipv4;
use netsim::sim::Simulator;
use netsim::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Fleet configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Maximum number of prober hosts to pre-register on the simulator.
    pub pool_size: usize,
    /// Probability that a probe allocates a fresh address instead of
    /// reusing an active one. 0.237 ≈ 12,300 unique / 51,837 probes.
    pub p_new_ip: f64,
    /// Fraction of source ports drawn from the Linux ephemeral range.
    pub linux_port_frac: f64,
    /// Process weights; index 6 is the 1000 Hz process.
    pub process_weights: [f64; 7],
    /// Connect-failure retry budget per probe: how many times the
    /// controller re-launches a probe (from a freshly assigned source)
    /// whose TCP connect failed before recording `ConnectFailed`. Zero
    /// — the calibrated default — leaves every existing experiment's
    /// schedule untouched; lossy-link experiments raise it so probing
    /// stays observable when SYNs can vanish.
    pub probe_retries: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            pool_size: 16_000,
            p_new_ip: 0.237,
            linux_port_frac: 0.893,
            // One process dominates; the 1000 Hz process is the tiny
            // cluster of ~22 probes the paper observed.
            process_weights: [0.645, 0.10, 0.09, 0.07, 0.05, 0.044, 0.001],
            probe_retries: 0,
        }
    }
}

/// One centralized prober process.
#[derive(Clone, Copy, Debug)]
pub struct ProberProcess {
    /// The shared timestamp clock.
    pub clock: TsClock,
}

/// The prober fleet.
pub struct Fleet {
    config: FleetConfig,
    /// Pre-registered candidate addresses (AS-weighted), consumed in
    /// order as "fresh" allocations.
    pool: Vec<Ipv4>,
    next_fresh: usize,
    /// Addresses already used at least once.
    active: Vec<Ipv4>,
    /// The seven processes.
    pub processes: [ProberProcess; 7],
    rng: StdRng,
}

/// Everything needed to launch one probe connection.
#[derive(Clone, Copy, Debug)]
pub struct ProbeSource {
    /// Source address.
    pub ip: Ipv4,
    /// Source port.
    pub port: u16,
    /// Controlling process index.
    pub process: usize,
    /// TCP tuning to apply to the connection.
    pub tuning: TcpTuning,
}

impl Fleet {
    /// Build the fleet and pre-register its hosts on the simulator.
    pub fn install(sim: &mut Simulator, config: FleetConfig, seed: u64) -> Fleet {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_weight: f64 = AS_TABLE.iter().map(|e| e.paper_count as f64).sum();
        let mut pool = Vec::with_capacity(config.pool_size);
        let mut used: HashSet<Ipv4> = HashSet::new();
        while pool.len() < config.pool_size {
            // Sample an AS proportionally to its Table 3 share, then a
            // random address inside one of its /16s.
            let mut x = rng.gen::<f64>() * total_weight;
            let mut entry = &AS_TABLE[0];
            for e in AS_TABLE {
                if x < e.paper_count as f64 {
                    entry = e;
                    break;
                }
                x -= e.paper_count as f64;
            }
            let prefix = entry.prefixes[rng.gen_range(0..entry.prefixes.len())];
            let addr = Ipv4::new(prefix[0], prefix[1], rng.gen(), rng.gen());
            if used.insert(addr) {
                pool.push(addr);
            }
        }
        for &addr in &pool {
            let mut cfg = HostConfig::china("prober");
            cfg.ip_id_policy = IpIdPolicy::Random;
            sim.add_host_with_addr(addr, cfg);
        }
        let processes = std::array::from_fn(|i| ProberProcess {
            clock: TsClock {
                offset: rng.gen(),
                rate_hz: if i == 6 { 1000 } else { 250 },
            },
        });
        Fleet {
            config,
            pool,
            next_fresh: 0,
            active: Vec::new(),
            processes,
            rng,
        }
    }

    /// Pick the source for one probe.
    pub fn assign(&mut self, _now: SimTime) -> ProbeSource {
        let ip = if self.active.is_empty()
            || (self.next_fresh < self.pool.len() && self.rng.gen_bool(self.config.p_new_ip))
        {
            let ip = self.pool[self.next_fresh.min(self.pool.len() - 1)];
            self.next_fresh = (self.next_fresh + 1).min(self.pool.len());
            self.active.push(ip);
            ip
        } else {
            self.active[self.rng.gen_range(0..self.active.len())]
        };
        let port = PortPolicy::Mixed {
            linux_frac: self.config.linux_port_frac,
        }
        .draw(&mut self.rng);
        let process = self.sample_process();
        let tuning = TcpTuning {
            src_port: Some(port),
            ts_clock: Some(self.processes[process].clock),
            ttl: Some(self.rng.gen_range(46..=50)),
            random_ip_id: true,
        };
        ProbeSource {
            ip,
            port,
            process,
            tuning,
        }
    }

    fn sample_process(&mut self) -> usize {
        let mut x: f64 = self.rng.gen();
        for (i, &w) in self.config.process_weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        0
    }

    /// Number of distinct addresses used so far.
    pub fn unique_ips(&self) -> usize {
        self.active.len()
    }

    /// Epoch churn: retire the current active set (keeping `retain` of
    /// it) — years pass, the pool turns over (Fig 4).
    pub fn churn_epoch(&mut self, retain: f64) {
        let keep = (self.active.len() as f64 * retain) as usize;
        // Keep a random subset.
        for i in (keep..self.active.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.active.swap(i, j);
            self.active.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::sim::SimConfig;

    fn fleet(pool: usize) -> (Simulator, Fleet) {
        let mut sim = Simulator::new(SimConfig::default(), 1);
        let f = Fleet::install(
            &mut sim,
            FleetConfig {
                pool_size: pool,
                ..Default::default()
            },
            99,
        );
        (sim, f)
    }

    #[test]
    fn pool_hosts_are_registered_and_in_china_ases() {
        let (sim, f) = fleet(500);
        for &ip in &f.pool {
            assert!(sim.has_host(ip));
            assert!(analysis::asn::lookup(ip).is_some(), "{ip} not attributable");
        }
    }

    #[test]
    fn unique_ip_ratio_matches_paper() {
        // 51,837 probes from 12,300 unique IPs ⇒ ratio ≈ 0.237.
        let (_sim, mut f) = fleet(16_000);
        let n = 51_837;
        for _ in 0..n {
            f.assign(SimTime::ZERO);
        }
        let ratio = f.unique_ips() as f64 / n as f64;
        assert!((ratio - 0.237).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn fig3_most_ips_probe_more_than_once() {
        let (_sim, mut f) = fleet(16_000);
        let mut counts: std::collections::HashMap<Ipv4, u32> = std::collections::HashMap::new();
        for _ in 0..51_837 {
            let s = f.assign(SimTime::ZERO);
            *counts.entry(s.ip).or_insert(0) += 1;
        }
        let multi = counts.values().filter(|&&c| c > 1).count() as f64;
        let frac = multi / counts.len() as f64;
        assert!(frac > 0.60, "fraction with >1 probe: {frac}");
        let max = counts.values().max().copied().unwrap();
        assert!((20..=80).contains(&max), "max probes per IP: {max}");
    }

    #[test]
    fn ports_match_fig5() {
        let (_sim, mut f) = fleet(200);
        let ports: Vec<u16> = (0..5_000).map(|_| f.assign(SimTime::ZERO).port).collect();
        assert!(ports.iter().all(|&p| p >= 1024), "no ports below 1024");
        let linux = ports
            .iter()
            .filter(|&&p| (32768..=60999).contains(&p))
            .count() as f64
            / ports.len() as f64;
        assert!((linux - 0.90).abs() < 0.05, "linux-range fraction {linux}");
    }

    #[test]
    fn ttl_range_matches_paper() {
        let (_sim, mut f) = fleet(100);
        for _ in 0..500 {
            let s = f.assign(SimTime::ZERO);
            let ttl = s.tuning.ttl.unwrap();
            assert!((46..=50).contains(&ttl), "ttl {ttl}");
        }
    }

    #[test]
    fn one_process_dominates_and_1000hz_is_rare() {
        let (_sim, mut f) = fleet(100);
        let mut counts = [0usize; 7];
        for _ in 0..20_000 {
            counts[f.assign(SimTime::ZERO).process] += 1;
        }
        assert!(counts[0] > 10_000, "dominant process: {counts:?}");
        assert!(counts[6] < 100, "1000 Hz process too common: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "all processes appear");
        assert_eq!(f.processes[6].clock.rate_hz, 1000);
        assert_eq!(f.processes[0].clock.rate_hz, 250);
    }

    #[test]
    fn churn_reduces_active_set() {
        let (_sim, mut f) = fleet(2_000);
        for _ in 0..5_000 {
            f.assign(SimTime::ZERO);
        }
        let before = f.unique_ips();
        f.churn_epoch(0.05);
        let after = f.unique_ips();
        assert!(
            after < before / 10,
            "churn kept too many: {before} → {after}"
        );
    }
}
