//! The passive traffic-analysis stage (§4).
//!
//! The GFW inspects the first data-carrying packet of each connection
//! and decides whether to store its payload for replay probing. Two
//! features are used — exactly the two the paper isolates:
//!
//! * **Length** (Fig 8): replayed payloads fall in a 161–999-byte
//!   window with a stair-step preference for lengths whose remainder
//!   mod 16 is 9 (low range) or 2 (high range).
//! * **Entropy** (Fig 9): a payload of per-byte entropy 7.2 is roughly
//!   four times more likely to be stored than one of entropy 3.
//!
//! Plaintext protocols (HTTP, TLS records) are exempted first — the
//! real GFW cannot be replaying every TLS handshake, and the paper's
//! Shadowsocks-vs-TLS discrimination implies a whitelist of
//! recognizable protocols.

use analysis::shannon_entropy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One interval of the Fig 8 length model, with per-remainder weights.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LengthBand {
    /// Inclusive payload-length range.
    pub range: (usize, usize),
    /// Weight for lengths with remainder 9 mod 16.
    pub w_rem9: f64,
    /// Weight for lengths with remainder 2 mod 16.
    pub w_rem2: f64,
    /// Weight for all other remainders.
    pub w_other: f64,
}

/// Configuration of the passive detector.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PassiveConfig {
    /// Global scale: storage probability per connection is
    /// `scale × band_weight × entropy_factor`, clamped to [0, 1].
    ///
    /// The default reproduces the paper's aggregate replay rate of
    /// ~0.3% of trigger connections (Exp 1.a: 2,835 identical replays
    /// for 942,457 connections).
    pub scale: f64,
    /// Length bands. Calibrated from Fig 8's reported mixtures: in
    /// 168–263, 72% of replays have remainder 9; in 384–687, 96% have
    /// remainder 2; 264–383 mixes both.
    pub bands: Vec<LengthBand>,
    /// Exempt recognizable plaintext protocols before scoring.
    pub exempt_plaintext: bool,
}

impl Default for PassiveConfig {
    fn default() -> Self {
        PassiveConfig {
            scale: 0.00106,
            bands: vec![
                LengthBand {
                    range: (161, 263),
                    w_rem9: 22.0,
                    w_rem2: 0.57,
                    w_other: 0.57,
                },
                LengthBand {
                    range: (264, 383),
                    w_rem9: 38.5,
                    w_rem2: 33.3,
                    w_other: 2.3,
                },
                LengthBand {
                    range: (384, 687),
                    w_rem9: 0.21,
                    w_rem2: 77.0,
                    w_other: 0.21,
                },
                LengthBand {
                    range: (688, 999),
                    w_rem9: 0.5,
                    w_rem2: 0.5,
                    w_other: 0.5,
                },
            ],
            exempt_plaintext: true,
        }
    }
}

/// Length/entropy features of a first payload, computed in one pass
/// so callers on the per-packet hot path never score the same bytes
/// twice (the entropy histogram is the expensive part).
#[derive(Clone, Copy, Debug)]
pub struct FirstPayloadFeatures {
    /// Payload length in bytes.
    pub len: usize,
    /// Recognizable plaintext protocol (never stored).
    pub exempt: bool,
    /// Inside the replay-eligible length window and not exempt.
    pub candidate: bool,
    /// Fig 8 length weight (0.0 outside the window).
    pub weight: f64,
    /// Shannon entropy in bits/byte; `None` when scoring short-circuited
    /// before the entropy pass (exempt or zero-weight payloads).
    pub entropy: Option<f64>,
    /// Probability this payload is stored for replay.
    pub store_probability: f64,
}

/// The passive detector.
///
/// Construction flattens the configured length bands into lookup
/// tables, so per-payload scoring is two indexed loads instead of a
/// band scan. The tables are derived from `config` once in
/// [`PassiveDetector::new`]; treat the config as read-only afterwards.
#[derive(Clone, Debug)]
pub struct PassiveDetector {
    /// Active configuration.
    pub config: PassiveConfig,
    /// `len_weight[len]` = Fig 8 weight; lengths past the table are 0.
    len_weight: Vec<f64>,
    /// `in_band[len]` = length is inside some configured band.
    in_band: Vec<bool>,
    /// First-byte prefilter for the plaintext exemption: only payloads
    /// whose first byte can start a recognized protocol take the full
    /// prefix comparisons. Encrypted traffic falls through on one load.
    plaintext_first: [bool; 256],
}

impl PassiveDetector {
    /// Build with the given configuration.
    pub fn new(config: PassiveConfig) -> PassiveDetector {
        let table_len = config
            .bands
            .iter()
            .map(|b| b.range.1 + 1)
            .max()
            .unwrap_or(0);
        let mut len_weight = vec![0.0f64; table_len];
        let mut in_band = vec![false; table_len];
        for band in &config.bands {
            for len in band.range.0..=band.range.1 {
                // First matching band wins, matching the band-scan
                // semantics this table replaces.
                if !in_band[len] {
                    in_band[len] = true;
                    len_weight[len] = match len % 16 {
                        9 => band.w_rem9,
                        2 => band.w_rem2,
                        _ => band.w_other,
                    };
                }
            }
        }
        let mut plaintext_first = [false; 256];
        // TLS handshake record, HTTP methods, SSH banner (see
        // `is_exempt_plaintext` for the full prefixes).
        for b in [0x16u8, b'G', b'P', b'H', b'D', b'O', b'C', b'S'] {
            plaintext_first[b as usize] = true;
        }
        PassiveDetector {
            config,
            len_weight,
            in_band,
            plaintext_first,
        }
    }

    /// The Fig 8 length weight for a payload length.
    pub fn length_weight(&self, len: usize) -> f64 {
        self.len_weight.get(len).copied().unwrap_or(0.0)
    }

    /// The Fig 9 entropy factor: rises with per-byte entropy; ~4× from
    /// entropy 3 to 7.2, never zero (even low-entropy payloads were
    /// occasionally replayed).
    pub fn entropy_factor(&self, entropy_bits: f64) -> f64 {
        let x = (entropy_bits / 8.0).clamp(0.0, 1.0);
        0.12 + 0.88 * x * x * x
    }

    /// True if the payload is a recognizable plaintext protocol the GFW
    /// can positively identify (and therefore never treats as probable
    /// Shadowsocks).
    pub fn is_exempt_plaintext(&self, payload: &[u8]) -> bool {
        if !self.config.exempt_plaintext {
            return false;
        }
        match payload.first() {
            Some(&b) if self.plaintext_first[b as usize] => {}
            _ => return false,
        }
        // TLS record: handshake (0x16), version 3.x.
        if payload.len() >= 3 && payload[0] == 0x16 && payload[1] == 0x03 && payload[2] <= 0x04 {
            return true;
        }
        // HTTP request methods.
        const METHODS: [&[u8]; 7] = [
            b"GET ",
            b"POST ",
            b"HEAD ",
            b"PUT ",
            b"DELETE ",
            b"OPTIONS ",
            b"CONNECT ",
        ];
        if METHODS.iter().any(|m| payload.starts_with(m)) {
            return true;
        }
        // SSH banner.
        payload.starts_with(b"SSH-")
    }

    /// True if this payload is a *candidate*: not a recognizable
    /// plaintext protocol and inside the replay-eligible length window.
    /// Candidates feed the per-server length-consistency statistics even
    /// when they are not stored (storage is remainder-biased; the
    /// consistency signal must not be).
    pub fn is_candidate(&self, payload: &[u8]) -> bool {
        if self.is_exempt_plaintext(payload) {
            return false;
        }
        self.in_band.get(payload.len()).copied().unwrap_or(false)
    }

    /// All first-payload features in one pass: the plaintext check and
    /// length-table loads run once, and the entropy histogram is built
    /// only when a nonzero length weight makes it matter.
    pub fn features(&self, payload: &[u8]) -> FirstPayloadFeatures {
        let len = payload.len();
        let exempt = self.is_exempt_plaintext(payload);
        if exempt {
            return FirstPayloadFeatures {
                len,
                exempt,
                candidate: false,
                weight: 0.0,
                entropy: None,
                store_probability: 0.0,
            };
        }
        let candidate = self.in_band.get(len).copied().unwrap_or(false);
        let weight = self.len_weight.get(len).copied().unwrap_or(0.0);
        if weight == 0.0 {
            return FirstPayloadFeatures {
                len,
                exempt,
                candidate,
                weight,
                entropy: None,
                store_probability: 0.0,
            };
        }
        let entropy = shannon_entropy(payload);
        let store_probability =
            (self.config.scale * weight * self.entropy_factor(entropy)).clamp(0.0, 1.0);
        FirstPayloadFeatures {
            len,
            exempt,
            candidate,
            weight,
            entropy: Some(entropy),
            store_probability,
        }
    }

    /// The probability that this first payload is stored for replay.
    pub fn store_probability(&self, payload: &[u8]) -> f64 {
        self.features(payload).store_probability
    }

    /// Bernoulli decision: should this payload be stored?
    pub fn should_store(&self, payload: &[u8], rng: &mut impl Rng) -> bool {
        let p = self.store_probability(payload);
        p > 0.0 && rng.gen_bool(p)
    }
}

impl Default for PassiveDetector {
    fn default() -> Self {
        PassiveDetector::new(PassiveConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn det() -> PassiveDetector {
        PassiveDetector::default()
    }

    fn random_payload(len: usize, rng: &mut StdRng) -> Vec<u8> {
        let mut p = vec![0u8; len];
        rng.fill(&mut p[..]);
        p
    }

    #[test]
    fn out_of_window_lengths_never_stored() {
        let d = det();
        let mut rng = StdRng::seed_from_u64(1);
        for len in [1usize, 50, 100, 160, 1000, 1500] {
            let p = random_payload(len, &mut rng);
            assert_eq!(d.store_probability(&p), 0.0, "len {len}");
        }
    }

    #[test]
    fn remainder9_preferred_in_low_band() {
        let d = det();
        // 169 % 16 == 9; 168 % 16 == 8.
        assert!(d.length_weight(169) > 10.0 * d.length_weight(168));
    }

    #[test]
    fn remainder2_preferred_in_high_band() {
        let d = det();
        // 402 % 16 == 2; 403 % 16 == 3.
        assert!(d.length_weight(402) > 100.0 * d.length_weight(403));
    }

    #[test]
    fn fig8_mixture_low_band() {
        // Within 168–263, the fraction of stored payloads with
        // remainder 9 should be ≈72% for uniform trigger lengths.
        let d = det();
        let w9 = 6.0 * d.length_weight(169); // 6 lengths with rem 9 in band
        let mut w_all = 0.0;
        for len in 168..=263 {
            w_all += d.length_weight(len);
        }
        let frac = w9 / w_all;
        assert!((frac - 0.72).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn fig8_mixture_high_band() {
        let d = det();
        let w2 = 19.0 * d.length_weight(386); // 19 lengths with rem 2 in 384..=687
        let mut w_all = 0.0;
        for len in 384..=687 {
            w_all += d.length_weight(len);
        }
        let frac = w2 / w_all;
        assert!((frac - 0.96).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn fig9_entropy_ratio() {
        let d = det();
        let ratio = d.entropy_factor(7.2) / d.entropy_factor(3.0);
        assert!(
            (3.0..6.0).contains(&ratio),
            "entropy 7.2 vs 3.0 ratio {ratio}"
        );
        // Never zero, even at entropy 0 (Fig 9 shows replays at all
        // entropies).
        assert!(d.entropy_factor(0.0) > 0.0);
    }

    #[test]
    fn plaintext_protocols_exempt() {
        let d = det();
        // A 400-byte HTTP request would otherwise be length-eligible.
        let mut http = b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n".to_vec();
        http.resize(402, b'a');
        assert_eq!(d.store_probability(&http), 0.0);
        let mut tls = vec![0x16, 0x03, 0x01, 0x02, 0x00];
        tls.resize(402, 0xAB);
        assert_eq!(d.store_probability(&tls), 0.0);
        let ssh = b"SSH-2.0-OpenSSH_8.2p1".to_vec();
        assert_eq!(d.store_probability(&ssh), 0.0);
    }

    #[test]
    fn exemption_can_be_disabled() {
        let cfg = PassiveConfig {
            exempt_plaintext: false,
            ..Default::default()
        };
        let d = PassiveDetector::new(cfg);
        let mut tls = vec![0x16, 0x03, 0x01];
        tls.resize(402, 0xAB);
        assert!(d.store_probability(&tls) > 0.0);
    }

    #[test]
    fn aggregate_rate_near_paper() {
        // Uniform lengths 1–1000, high-entropy payloads: overall storage
        // rate should be ≈0.3% (Exp 1.a's identical-replay rate).
        let d = det();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 60_000;
        let mut stored = 0;
        for _ in 0..n {
            let len = rng.gen_range(1..=1000);
            let p = random_payload(len, &mut rng);
            if d.should_store(&p, &mut rng) {
                stored += 1;
            }
        }
        let rate = stored as f64 / n as f64;
        assert!(
            (0.0015..0.0055).contains(&rate),
            "storage rate {rate} (want ≈0.003)"
        );
    }

    #[test]
    fn high_entropy_stored_more_than_low() {
        let d = det();
        let mut rng = StdRng::seed_from_u64(10);
        let n = 40_000;
        let mut hi = 0;
        let mut lo = 0;
        for _ in 0..n {
            // Same eligible length, different entropy.
            let len = 402;
            let hi_p = random_payload(len, &mut rng);
            let lo_p = vec![b'a'; len]; // entropy 0 (and not plaintext-prefixed)
            if d.should_store(&hi_p, &mut rng) {
                hi += 1;
            }
            if d.should_store(&lo_p, &mut rng) {
                lo += 1;
            }
        }
        assert!(hi > lo * 3, "hi {hi}, lo {lo}");
    }
}
