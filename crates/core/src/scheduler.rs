//! Per-server probe scheduling: stages, pacing, and the replay store.
//!
//! §4.2's central finding is that probing is *staged*: every suspected
//! server gets identical/byte-0 replays and NR2 random probes, but
//! R3/R4/R5 fire only after the server has answered a stage-1 probe
//! with data. On top of that we model two behaviours the paper
//! documents but does not explain mechanically:
//!
//! * probes are spread out, "a few of them in each hour" — a per-server
//!   minimum gap between random probes;
//! * NR1 probes appeared at real Shadowsocks servers but never in the
//!   random-data experiments. Genuine Shadowsocks traffic through one
//!   server has a *consistent* first-payload length remainder mod 16
//!   (same cipher, same framing), while the random-data experiments
//!   sent uniform lengths. We therefore gate NR1 on observing a
//!   consistent remainder across stored payloads. This is a modelling
//!   choice, recorded in DESIGN.md.

use crate::delay::DelayModel;
use crate::probe::ProbeKind;
use netsim::eventq::EventQueue;
use netsim::packet::SocketAddr;
use netsim::time::{Duration, SimTime};
use rand::Rng;
use std::collections::HashMap;

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Minimum gap between random (NR) probes to one server.
    pub nr_min_gap: Duration,
    /// Cap on stored payloads per server.
    pub max_stored: usize,
    /// Probability that a stage-2 replay occurrence is R5 (only two R5
    /// probes were ever observed).
    pub r5_prob: f64,
    /// Stored payloads needed before the remainder-consistency test.
    pub consistency_min: u64,
    /// Share the modal remainder must reach to count as consistent.
    pub consistency_share: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            nr_min_gap: Duration::from_mins(18),
            max_stored: 256,
            r5_prob: 0.01,
            consistency_min: 8,
            consistency_share: 0.5,
        }
    }
}

/// A probe ready to be fired at `due`.
#[derive(Clone, Debug)]
pub struct Order {
    /// When to fire.
    pub due: SimTime,
    /// Target.
    pub server: SocketAddr,
    /// Probe type.
    pub kind: ProbeKind,
    /// Payload (pre-built; replay payloads embed their byte changes).
    pub payload: Vec<u8>,
    /// For replay kinds: scheduled delay since the trigger connection.
    pub trigger_delay: Option<Duration>,
    /// For replay kinds: which stored payload this replays (groups the
    /// "first replay" vs "all replays" distinction of Fig 7).
    pub trigger_id: Option<u64>,
}

#[derive(Default)]
struct ServerSched {
    stage2: bool,
    stored: Vec<Vec<u8>>,
    remainder_counts: [u64; 16],
    next_nr_ok: SimTime,
    nr1_enabled: bool,
}

/// The probe scheduler: replay store, stages, pacing, order queue.
///
/// The order queue is a [`netsim::eventq::EventQueue`] (timer wheel),
/// which preserves the old binary heap's exact `(due, insertion)`
/// ordering.
pub struct Scheduler {
    /// Tuning.
    pub config: SchedulerConfig,
    delay_model: DelayModel,
    servers: HashMap<SocketAddr, ServerSched>,
    queue: EventQueue<Order>,
    next_trigger_id: u64,
}

impl Scheduler {
    /// Create with the given config.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        Scheduler {
            config,
            delay_model: DelayModel,
            servers: HashMap::new(),
            queue: EventQueue::new(),
            next_trigger_id: 0,
        }
    }

    fn push(&mut self, order: Order) {
        self.queue.push(order.due, order);
    }

    /// Earliest pending order's due time.
    pub fn next_due(&mut self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Pop all orders due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<Order> {
        let mut out = Vec::new();
        while let Some(due) = self.queue.next_time() {
            if due > now {
                break;
            }
            out.push(self.queue.pop().unwrap().1);
        }
        out
    }

    /// Number of orders not yet popped.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True once the server is in stage 2.
    pub fn is_stage2(&self, server: SocketAddr) -> bool {
        self.servers.get(&server).is_some_and(|s| s.stage2)
    }

    /// Stage-1 replay kind mix (R1 dominates ~72/28, per Exp 1.a's
    /// 2,835 R1 vs 1,110 byte-changed replays).
    fn stage1_kind(rng: &mut impl Rng) -> ProbeKind {
        if rng.gen_bool(0.72) {
            ProbeKind::R1
        } else {
            ProbeKind::R2
        }
    }

    fn stage2_kind(&self, rng: &mut impl Rng) -> ProbeKind {
        if rng.gen_bool(self.config.r5_prob) {
            return ProbeKind::R5;
        }
        match rng.gen_range(0..100u32) {
            0..=34 => ProbeKind::R1,
            35..=49 => ProbeKind::R2,
            50..=74 => ProbeKind::R3,
            _ => ProbeKind::R4,
        }
    }

    /// Record a *candidate* connection (in-window, non-exempt) for the
    /// length-consistency statistics that gate NR1. Candidates are
    /// counted before the remainder-biased storage decision, so uniform
    /// random-data traffic never looks consistent (§4.2: NR1 absent
    /// from the random-data experiments), while genuine Shadowsocks
    /// traffic — constant framing overhead — does.
    pub fn on_candidate(&mut self, server: SocketAddr, payload_len: usize) {
        let config = self.config.clone();
        let st = self.servers.entry(server).or_default();
        st.remainder_counts[payload_len % 16] += 1;
        if !st.nr1_enabled {
            let total: u64 = st.remainder_counts.iter().sum();
            if total >= config.consistency_min {
                let max = *st.remainder_counts.iter().max().unwrap();
                if max as f64 / total as f64 >= config.consistency_share {
                    st.nr1_enabled = true;
                }
            }
        }
    }

    /// The passive detector stored a payload from a suspected
    /// connection to `server`: schedule its replays and paced random
    /// probes.
    pub fn on_stored_payload(
        &mut self,
        now: SimTime,
        server: SocketAddr,
        payload: &[u8],
        rng: &mut impl Rng,
    ) {
        let config = self.config.clone();
        let st = self.servers.entry(server).or_default();
        if st.stored.len() < config.max_stored {
            st.stored.push(payload.to_vec());
        }
        let stage2 = st.stage2;
        let nr1 = st.nr1_enabled;
        let trigger_id = self.next_trigger_id;
        self.next_trigger_id += 1;

        // Replay occurrences.
        let occurrences = self.delay_model.replay_count(rng);
        for _ in 0..occurrences {
            let kind = if stage2 {
                self.stage2_kind(rng)
            } else {
                Self::stage1_kind(rng)
            };
            let delay = self.delay_model.sample(rng);
            let body = crate::probe::build_payload(kind, Some(payload), rng);
            self.push(Order {
                due: now + delay,
                server,
                kind,
                payload: body,
                trigger_delay: Some(delay),
                trigger_id: Some(trigger_id),
            });
        }

        // One paced random probe per stored payload.
        let st = self.servers.get_mut(&server).unwrap();
        let nr_kind = if nr1 && rng.gen_bool(0.25) {
            ProbeKind::Nr1
        } else {
            ProbeKind::Nr2
        };
        let jitter = Duration::from_secs(rng.gen_range(0..600));
        let due = (now + jitter).max(st.next_nr_ok);
        st.next_nr_ok = due + self.config.nr_min_gap;
        let body = crate::probe::build_payload(nr_kind, None, rng);
        self.push(Order {
            due,
            server,
            kind: nr_kind,
            payload: body,
            trigger_delay: None,
            trigger_id: None,
        });
    }

    /// A probe to `server` was answered with data: unlock stage 2
    /// (§4.2). Schedules an immediate wave of stage-2 replays from the
    /// stored payloads.
    pub fn unlock_stage2(&mut self, now: SimTime, server: SocketAddr, rng: &mut impl Rng) {
        let Some(st) = self.servers.get_mut(&server) else {
            return;
        };
        if st.stage2 {
            return;
        }
        st.stage2 = true;
        let stored: Vec<Vec<u8>> = st.stored.iter().take(16).cloned().collect();
        for payload in stored {
            for kind in [ProbeKind::R3, ProbeKind::R4] {
                let delay = Duration::from_secs(rng.gen_range(10..3_600));
                let body = crate::probe::build_payload(kind, Some(&payload), rng);
                self.push(Order {
                    due: now + delay,
                    server,
                    kind,
                    payload: body,
                    trigger_delay: Some(delay),
                    trigger_id: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::Ipv4;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server() -> SocketAddr {
        (Ipv4::new(172, 0, 0, 1), 8388)
    }

    fn hi_entropy(len: usize, rng: &mut StdRng) -> Vec<u8> {
        let mut p = vec![0u8; len];
        rng.fill(&mut p[..]);
        p
    }

    #[test]
    fn stored_payload_schedules_replays_and_nr() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let payload = hi_entropy(400, &mut rng);
        s.on_stored_payload(SimTime::ZERO, server(), &payload, &mut rng);
        assert!(s.pending() >= 2, "replays + one NR probe");
        // Everything scheduled is stage-1.
        let far = SimTime(u64::MAX / 2);
        let orders = s.pop_due(far);
        assert!(orders
            .iter()
            .all(|o| !o.kind.is_stage2() || o.kind == ProbeKind::Nr1));
        assert!(orders.iter().any(|o| o.kind == ProbeKind::R1));
        assert!(orders.iter().any(|o| o.kind == ProbeKind::Nr2));
        // NR1 requires consistency — not after a single payload.
        assert!(orders.iter().all(|o| o.kind != ProbeKind::Nr1));
    }

    #[test]
    fn orders_pop_in_due_order() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let p = hi_entropy(402, &mut rng);
            s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        }
        let mut last = SimTime::ZERO;
        let orders = s.pop_due(SimTime(u64::MAX / 2));
        for o in orders {
            assert!(o.due >= last);
            last = o.due;
        }
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let p = hi_entropy(402, &mut rng);
        s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        let total = s.pending();
        let early = s.pop_due(SimTime::ZERO + Duration::from_secs_f64(0.27));
        assert!(early.is_empty(), "nothing due before the 0.28 s minimum");
        let rest = s.pop_due(SimTime(u64::MAX / 2));
        assert_eq!(rest.len(), total);
    }

    #[test]
    fn stage2_unlock_spawns_r3_r4_wave() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let p = hi_entropy(402, &mut rng);
        s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        let _ = s.pop_due(SimTime(u64::MAX / 2));
        assert!(!s.is_stage2(server()));
        s.unlock_stage2(SimTime::ZERO + Duration::from_secs(100), server(), &mut rng);
        assert!(s.is_stage2(server()));
        let orders = s.pop_due(SimTime(u64::MAX / 2));
        assert!(orders.iter().any(|o| o.kind == ProbeKind::R3));
        assert!(orders.iter().any(|o| o.kind == ProbeKind::R4));
        // Unlocking twice is a no-op.
        let before = s.pending();
        s.unlock_stage2(SimTime::ZERO + Duration::from_secs(200), server(), &mut rng);
        assert_eq!(s.pending(), before);
    }

    #[test]
    fn nr1_requires_consistent_remainders() {
        let cfg = SchedulerConfig::default();
        let mut rng = StdRng::seed_from_u64(5);

        // Uniform lengths (the random-data experiments): no NR1.
        let mut s = Scheduler::new(cfg.clone());
        for _ in 0..200 {
            let len = rng.gen_range(161..=999);
            let p = hi_entropy(len, &mut rng);
            s.on_candidate(server(), p.len());
            s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        }
        let orders = s.pop_due(SimTime(u64::MAX / 2));
        assert!(
            orders.iter().all(|o| o.kind != ProbeKind::Nr1),
            "uniform lengths must not enable NR1"
        );

        // Consistent remainder (genuine Shadowsocks traffic): NR1 fires.
        let mut s = Scheduler::new(cfg);
        for i in 0..200 {
            let len = 306 + 16 * (i % 5); // all remainder 2
            let p = hi_entropy(len, &mut rng);
            s.on_candidate(server(), p.len());
            s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        }
        let orders = s.pop_due(SimTime(u64::MAX / 2));
        assert!(
            orders.iter().any(|o| o.kind == ProbeKind::Nr1),
            "consistent remainders must enable NR1"
        );
    }

    #[test]
    fn nr_probes_respect_min_gap() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let p = hi_entropy(402, &mut rng);
            s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        }
        let orders = s.pop_due(SimTime(u64::MAX / 2));
        let mut nr_times: Vec<SimTime> = orders
            .iter()
            .filter(|o| !o.kind.is_replay())
            .map(|o| o.due)
            .collect();
        nr_times.sort();
        for w in nr_times.windows(2) {
            let gap = w[1].since(w[0]);
            assert!(
                gap >= SchedulerConfig::default().nr_min_gap,
                "gap {gap} too small"
            );
        }
    }

    #[test]
    fn stage2_replay_mix_includes_new_kinds() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let p = hi_entropy(402, &mut rng);
        s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        s.unlock_stage2(SimTime::ZERO, server(), &mut rng);
        let _ = s.pop_due(SimTime(u64::MAX / 2));
        for _ in 0..100 {
            let p = hi_entropy(402, &mut rng);
            s.on_stored_payload(SimTime::ZERO, server(), &p, &mut rng);
        }
        let orders = s.pop_due(SimTime(u64::MAX / 2));
        let kinds: std::collections::HashSet<_> = orders.iter().map(|o| o.kind).collect();
        assert!(kinds.contains(&ProbeKind::R3));
        assert!(kinds.contains(&ProbeKind::R4));
        assert!(kinds.contains(&ProbeKind::R1));
    }
}
