//! The replay-delay model (§3.5, Fig 7).
//!
//! Replay-based probes arrive anywhere from 0.28 seconds to 570 hours
//! after the legitimate connection they copy. The paper's CDF: >20%
//! within one second, >50% within one minute, >75% within 15 minutes,
//! with a long heavy tail. We model this as a mixture of log-uniform
//! bands.

use netsim::time::Duration;
use rand::Rng;

/// Minimum observed delay (0.28 s).
pub const MIN_DELAY_SECS: f64 = 0.28;

/// Maximum observed delay (569.55 h).
pub const MAX_DELAY_SECS: f64 = 569.55 * 3600.0;

/// One mixture band: probability mass over a log-uniform interval.
#[derive(Clone, Copy, Debug)]
struct Band {
    mass: f64,
    lo_secs: f64,
    hi_secs: f64,
}

const BANDS: [Band; 6] = [
    Band {
        mass: 0.22,
        lo_secs: MIN_DELAY_SECS,
        hi_secs: 1.0,
    },
    Band {
        mass: 0.33,
        lo_secs: 1.0,
        hi_secs: 60.0,
    },
    Band {
        mass: 0.22,
        lo_secs: 60.0,
        hi_secs: 900.0,
    },
    Band {
        mass: 0.13,
        lo_secs: 900.0,
        hi_secs: 3600.0,
    },
    Band {
        mass: 0.07,
        lo_secs: 3600.0,
        hi_secs: 36_000.0,
    },
    Band {
        mass: 0.03,
        lo_secs: 36_000.0,
        hi_secs: MAX_DELAY_SECS,
    },
];

/// The Fig 7 delay distribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct DelayModel;

impl DelayModel {
    /// Sample a replay delay.
    pub fn sample(&self, rng: &mut impl Rng) -> Duration {
        let mut u: f64 = rng.gen();
        for band in &BANDS {
            if u < band.mass {
                // Log-uniform within the band.
                let ln_lo = band.lo_secs.ln();
                let ln_hi = band.hi_secs.ln();
                let s = (ln_lo + rng.gen::<f64>() * (ln_hi - ln_lo)).exp();
                return Duration::from_secs_f64(s);
            }
            u -= band.mass;
        }
        Duration::from_secs_f64(MAX_DELAY_SECS)
    }

    /// Sample how many times one stored payload is replayed in total.
    /// The paper saw 11,137 replays for 3,269 distinct payloads (mean
    /// ≈3.4) with a maximum of 47.
    pub fn replay_count(&self, rng: &mut impl Rng) -> usize {
        // 1 + geometric(p = 0.295), capped at 47.
        let mut n = 1usize;
        while n < 47 && rng.gen_bool(1.0 - 0.295) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masses_sum_to_one() {
        let total: f64 = BANDS.iter().map(|b| b.mass).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_matches_paper_milestones() {
        let m = DelayModel;
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| m.sample(&mut rng).as_secs_f64())
            .collect();
        let frac_below =
            |t: f64| samples.iter().filter(|&&s| s <= t).count() as f64 / samples.len() as f64;
        assert!(frac_below(1.0) > 0.20, "≤1s: {}", frac_below(1.0));
        assert!(frac_below(60.0) > 0.50, "≤1min: {}", frac_below(60.0));
        assert!(frac_below(900.0) > 0.75, "≤15min: {}", frac_below(900.0));
        // And a real tail exists.
        assert!(frac_below(36_000.0) < 0.99);
    }

    #[test]
    fn bounds_respected() {
        let m = DelayModel;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let s = m.sample(&mut rng).as_secs_f64();
            assert!(s >= MIN_DELAY_SECS - 1e-6, "{s}");
            assert!(s <= MAX_DELAY_SECS + 1.0, "{s}");
        }
    }

    #[test]
    fn replay_count_distribution() {
        let m = DelayModel;
        let mut rng = StdRng::seed_from_u64(11);
        let counts: Vec<usize> = (0..20_000).map(|_| m.replay_count(&mut rng)).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - 3.4).abs() < 0.4, "mean {mean}");
        assert!(counts.iter().all(|&c| (1..=47).contains(&c)));
        // At least one payload replayed exactly once and one many times.
        assert!(counts.contains(&1));
        assert!(counts.iter().any(|&c| c > 15));
    }
}
