//! Reaction classification: §5.2.2's "how an attacker uses the
//! information" made executable.
//!
//! The classifier accumulates (probe, reaction) records per server and
//! matches the statistics against the Fig 10 signatures. The paper
//! observes that the GFW needs *several* probes before blocking a
//! Shadowsocks server (unlike one probe for Tor), implying exactly this
//! kind of statistical matching.

use crate::probe::{ProbeKind, Reaction};
use netsim::packet::SocketAddr;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What the classifier concludes about one server.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Not enough evidence yet.
    Inconclusive,
    /// Reactions are inconsistent with any Shadowsocks signature.
    NotShadowsocks,
    /// Reactions match a Shadowsocks signature.
    LikelyShadowsocks {
        /// Matched signature.
        signature: Signature,
        /// Confidence in [0, 1].
        confidence: f64,
    },
}

/// Which Fig 10 row (family) the reactions match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signature {
    /// Answered a replay with data: a proxy with no replay filter
    /// (OutlineVPN ≤ v1.0.8 et al.).
    RepliesToReplay,
    /// RST fraction to long random probes ≈ 13/16: stream cipher with
    /// address-type masking (shadowsocks-libev ≤ v3.2.5).
    StreamMasked,
    /// RST fraction ≈ 253/256: stream cipher without masking.
    StreamUnmasked,
    /// Deterministic RST above a salt-dependent threshold and silence
    /// below: AEAD, old libev.
    AeadThresholdRst,
    /// FIN at exactly 50 bytes: OutlineVPN v1.0.6.
    OutlineFinAt50,
    /// Everything times out — indistinguishable from a non-responsive
    /// service; the post-fix implementations live here.
    AllSilent,
}

/// Minimum probes before a verdict is attempted.
pub const MIN_PROBES: usize = 8;

#[derive(Default, Clone)]
struct ServerStats {
    /// (kind, payload_len, reaction) triples.
    records: Vec<(ProbeKind, usize, Reaction)>,
}

/// The per-server reaction classifier.
#[derive(Default)]
pub struct Classifier {
    servers: HashMap<SocketAddr, ServerStats>,
}

impl Classifier {
    /// New, empty classifier.
    pub fn new() -> Classifier {
        Classifier::default()
    }

    /// Record one observed reaction.
    pub fn record(
        &mut self,
        server: SocketAddr,
        kind: ProbeKind,
        payload_len: usize,
        reaction: Reaction,
    ) {
        self.servers
            .entry(server)
            .or_default()
            .records
            .push((kind, payload_len, reaction));
    }

    /// Number of recorded reactions for a server.
    pub fn observations(&self, server: SocketAddr) -> usize {
        self.servers.get(&server).map_or(0, |s| s.records.len())
    }

    /// Classify a server from its accumulated reactions.
    pub fn verdict(&self, server: SocketAddr) -> Verdict {
        let Some(stats) = self.servers.get(&server) else {
            return Verdict::Inconclusive;
        };
        let recs = &stats.records;
        if recs.len() < MIN_PROBES {
            // One shortcut needs no statistics: data in response to a
            // replay is damning on its own.
            if recs
                .iter()
                .any(|(k, _, r)| k.is_replay() && *r == Reaction::Data)
            {
                return Verdict::LikelyShadowsocks {
                    signature: Signature::RepliesToReplay,
                    confidence: 0.95,
                };
            }
            return Verdict::Inconclusive;
        }

        // 1. Proxied replay.
        if recs
            .iter()
            .any(|(k, _, r)| k.is_replay() && *r == Reaction::Data)
        {
            return Verdict::LikelyShadowsocks {
                signature: Signature::RepliesToReplay,
                confidence: 0.99,
            };
        }

        // 2. FIN at exactly 50 bytes from random probes (Outline 1.0.6).
        let fin50 = recs
            .iter()
            .filter(|(k, len, r)| !k.is_replay() && *len == 50 && *r == Reaction::FinAck)
            .count();
        if fin50 >= 2 {
            return Verdict::LikelyShadowsocks {
                signature: Signature::OutlineFinAt50,
                confidence: 0.9,
            };
        }

        // Long random probes (≥ 51 bytes) carry the implementation's
        // statistical signature.
        let long: Vec<&(ProbeKind, usize, Reaction)> = recs
            .iter()
            .filter(|(k, len, _)| !k.is_replay() && *len >= 51)
            .collect();
        if long.len() >= 4 {
            let rst = long.iter().filter(|(_, _, r)| *r == Reaction::Rst).count() as f64
                / long.len() as f64;
            if rst > 0.97 {
                // Could be AEAD-threshold RST or unmasked stream; short
                // probes disambiguate (AEAD stays silent below its
                // threshold, unmasked stream RSTs even short probes).
                let short_rst = recs
                    .iter()
                    .filter(|(k, len, _)| !k.is_replay() && (17..=23).contains(len))
                    .filter(|(_, _, r)| *r == Reaction::Rst)
                    .count();
                let signature = if short_rst > 0 {
                    Signature::StreamUnmasked
                } else {
                    Signature::AeadThresholdRst
                };
                return Verdict::LikelyShadowsocks {
                    signature,
                    confidence: 0.85,
                };
            }
            let expected = 13.0 / 16.0;
            if (rst - expected).abs() < 0.12 {
                return Verdict::LikelyShadowsocks {
                    signature: Signature::StreamMasked,
                    confidence: 0.8,
                };
            }
            let timeout = long
                .iter()
                .filter(|(_, _, r)| *r == Reaction::Timeout)
                .count() as f64
                / long.len() as f64;
            if timeout > 0.95 {
                // Post-fix implementations are deliberately
                // indistinguishable from silence.
                return Verdict::LikelyShadowsocks {
                    signature: Signature::AllSilent,
                    confidence: 0.3,
                };
            }
            return Verdict::NotShadowsocks;
        }
        Verdict::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::Ipv4;

    fn server() -> SocketAddr {
        (Ipv4::new(172, 0, 0, 9), 8388)
    }

    #[test]
    fn replay_answered_with_data_is_damning() {
        let mut c = Classifier::new();
        c.record(server(), ProbeKind::R1, 400, Reaction::Data);
        match c.verdict(server()) {
            Verdict::LikelyShadowsocks { signature, .. } => {
                assert_eq!(signature, Signature::RepliesToReplay)
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn too_few_probes_is_inconclusive() {
        let mut c = Classifier::new();
        c.record(server(), ProbeKind::Nr2, 221, Reaction::Rst);
        assert_eq!(c.verdict(server()), Verdict::Inconclusive);
    }

    #[test]
    fn stream_masked_signature() {
        let mut c = Classifier::new();
        // 13 RSTs, 3 timeouts out of 16 long probes ≈ 13/16.
        for _ in 0..13 {
            c.record(server(), ProbeKind::Nr2, 221, Reaction::Rst);
        }
        for _ in 0..3 {
            c.record(server(), ProbeKind::Nr2, 221, Reaction::Timeout);
        }
        match c.verdict(server()) {
            Verdict::LikelyShadowsocks { signature, .. } => {
                assert_eq!(signature, Signature::StreamMasked)
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn aead_threshold_signature() {
        let mut c = Classifier::new();
        // Silent short probes, deterministic RST on long ones.
        for len in [8usize, 16, 22, 33] {
            c.record(server(), ProbeKind::Nr1, len, Reaction::Timeout);
        }
        for _ in 0..8 {
            c.record(server(), ProbeKind::Nr2, 221, Reaction::Rst);
        }
        match c.verdict(server()) {
            Verdict::LikelyShadowsocks { signature, .. } => {
                assert_eq!(signature, Signature::AeadThresholdRst)
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn unmasked_stream_signature() {
        let mut c = Classifier::new();
        // RSTs even on short (17–23 byte) probes.
        for len in [17usize, 22, 23] {
            c.record(server(), ProbeKind::Nr1, len, Reaction::Rst);
        }
        for _ in 0..8 {
            c.record(server(), ProbeKind::Nr2, 221, Reaction::Rst);
        }
        match c.verdict(server()) {
            Verdict::LikelyShadowsocks { signature, .. } => {
                assert_eq!(signature, Signature::StreamUnmasked)
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn outline_fin_at_50() {
        let mut c = Classifier::new();
        for _ in 0..6 {
            c.record(server(), ProbeKind::Nr1, 49, Reaction::Timeout);
        }
        c.record(server(), ProbeKind::Nr1, 50, Reaction::FinAck);
        c.record(server(), ProbeKind::Nr1, 50, Reaction::FinAck);
        match c.verdict(server()) {
            Verdict::LikelyShadowsocks { signature, .. } => {
                assert_eq!(signature, Signature::OutlineFinAt50)
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn all_silent_is_low_confidence() {
        let mut c = Classifier::new();
        for _ in 0..12 {
            c.record(server(), ProbeKind::Nr2, 221, Reaction::Timeout);
        }
        match c.verdict(server()) {
            Verdict::LikelyShadowsocks {
                signature,
                confidence,
            } => {
                assert_eq!(signature, Signature::AllSilent);
                assert!(confidence < 0.5);
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn plain_web_server_is_not_shadowsocks() {
        let mut c = Classifier::new();
        // A web server answers random junk with data (an HTTP error).
        for _ in 0..12 {
            c.record(server(), ProbeKind::Nr2, 221, Reaction::Data);
        }
        assert_eq!(c.verdict(server()), Verdict::NotShadowsocks);
    }
}
