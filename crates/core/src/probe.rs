//! The GFW's probe taxonomy (§3.2).
//!
//! Two families: **replay-based** probes (R1–R5), derived from the first
//! data-carrying packet of a recorded legitimate connection, and
//! **non-replay** probes (NR1/NR2) of seemingly random bytes with a
//! characteristic length distribution (Fig 2).

use netsim::packet::{Ipv4, SocketAddr};
use netsim::time::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The seven probe types of §3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Identical replay.
    R1,
    /// Replay with byte 0 changed.
    R2,
    /// Replay with bytes 0–7 and 62–63 changed.
    R3,
    /// Replay with byte 16 changed.
    R4,
    /// Replay with bytes 6 and 16 changed.
    R5,
    /// Random probe of 7–9, 11–13, 15–17, 21–23, 32–34, 40–42 or
    /// 48–50 bytes.
    Nr1,
    /// Random probe of exactly 221 bytes.
    Nr2,
}

impl ProbeKind {
    /// True for the replay-derived family.
    pub fn is_replay(&self) -> bool {
        matches!(
            self,
            ProbeKind::R1 | ProbeKind::R2 | ProbeKind::R3 | ProbeKind::R4 | ProbeKind::R5
        )
    }

    /// Stage-2 probe types: only sent after a server answered stage-1
    /// probes with data (§4.2).
    pub fn is_stage2(&self) -> bool {
        matches!(
            self,
            ProbeKind::R3 | ProbeKind::R4 | ProbeKind::R5 | ProbeKind::Nr1
        )
    }
}

/// The NR1 length distribution: trios (n−1, n, n+1) around these
/// centres (Fig 2).
pub const NR1_CENTERS: [usize; 7] = [8, 12, 16, 22, 33, 41, 49];

/// The NR2 length (Fig 2).
pub const NR2_LEN: usize = 221;

/// Draw an NR1 probe length: a uniformly chosen trio centre ±1.
pub fn nr1_len(rng: &mut impl Rng) -> usize {
    let center = NR1_CENTERS[rng.gen_range(0..NR1_CENTERS.len())];
    (center as i64 + rng.gen_range(-1i64..=1)) as usize
}

/// True if `len` is a legal NR1 probe length.
pub fn is_nr1_len(len: usize) -> bool {
    NR1_CENTERS.iter().any(|&c| (c - 1..=c + 1).contains(&len))
}

fn change_byte(buf: &mut [u8], idx: usize, rng: &mut impl Rng) {
    if let Some(b) = buf.get_mut(idx) {
        let old = *b;
        let mut new = rng.gen::<u8>();
        while new == old {
            new = rng.gen();
        }
        *b = new;
    }
}

/// Build the probe payload for `kind`. Replay kinds require `base` (the
/// recorded first payload of a legitimate connection); NR kinds ignore
/// it.
pub fn build_payload(kind: ProbeKind, base: Option<&[u8]>, rng: &mut impl Rng) -> Vec<u8> {
    match kind {
        ProbeKind::R1 => base.expect("replay probe needs a base payload").to_vec(),
        ProbeKind::R2 => {
            let mut p = base.expect("replay probe needs a base payload").to_vec();
            change_byte(&mut p, 0, rng);
            p
        }
        ProbeKind::R3 => {
            let mut p = base.expect("replay probe needs a base payload").to_vec();
            for i in 0..=7 {
                change_byte(&mut p, i, rng);
            }
            change_byte(&mut p, 62, rng);
            change_byte(&mut p, 63, rng);
            p
        }
        ProbeKind::R4 => {
            let mut p = base.expect("replay probe needs a base payload").to_vec();
            change_byte(&mut p, 16, rng);
            p
        }
        ProbeKind::R5 => {
            let mut p = base.expect("replay probe needs a base payload").to_vec();
            change_byte(&mut p, 6, rng);
            change_byte(&mut p, 16, rng);
            p
        }
        ProbeKind::Nr1 => {
            let mut p = vec![0u8; nr1_len(rng)];
            rng.fill(&mut p[..]);
            p
        }
        ProbeKind::Nr2 => {
            let mut p = vec![0u8; NR2_LEN];
            rng.fill(&mut p[..]);
            p
        }
    }
}

/// How a probed server reacted, as observed from the prober's side
/// (§5's taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Reaction {
    /// Neither data nor a close before the prober's own timeout; the
    /// prober FINs first.
    Timeout,
    /// Server sent RST.
    Rst,
    /// Server closed with FIN/ACK first.
    FinAck,
    /// Server answered with payload data.
    Data,
    /// The TCP connection itself failed (SYN refused or unanswered) —
    /// seen when a server is gone or the port is closed.
    ConnectFailed,
}

/// One probe sent by the GFW, for analysis.
#[derive(Clone, Debug)]
pub struct ProbeRecord {
    /// Target of the probe.
    pub server: SocketAddr,
    /// Probe type.
    pub kind: ProbeKind,
    /// When the probe connection was opened.
    pub sent_at: SimTime,
    /// Delay since the triggering legitimate connection (replay kinds).
    pub trigger_delay: Option<Duration>,
    /// Stored-payload id this probe replays, shared by all occurrences
    /// of one payload (Fig 7's first-vs-all distinction).
    pub trigger_id: Option<u64>,
    /// Payload length.
    pub payload_len: usize,
    /// Source address used.
    pub src: Ipv4,
    /// Source port used.
    pub src_port: u16,
    /// Index of the controlling prober process (Fig 6).
    pub process: usize,
    /// Observed reaction, once known.
    pub reaction: Option<Reaction>,
    /// Connection attempts made (1 + connect-failure retries). The
    /// source fields reflect the attempt that resolved.
    pub attempts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn r1_is_identical() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = vec![7u8; 100];
        assert_eq!(build_payload(ProbeKind::R1, Some(&base), &mut rng), base);
    }

    #[test]
    fn byte_change_offsets() {
        let mut rng = StdRng::seed_from_u64(2);
        let base: Vec<u8> = (0..100u8).collect();
        let r2 = build_payload(ProbeKind::R2, Some(&base), &mut rng);
        assert_ne!(r2[0], base[0]);
        assert_eq!(&r2[1..], &base[1..]);

        let r3 = build_payload(ProbeKind::R3, Some(&base), &mut rng);
        for i in 0..=7 {
            assert_ne!(r3[i], base[i], "byte {i}");
        }
        assert_eq!(&r3[8..62], &base[8..62]);
        assert_ne!(r3[62], base[62]);
        assert_ne!(r3[63], base[63]);
        assert_eq!(&r3[64..], &base[64..]);

        let r4 = build_payload(ProbeKind::R4, Some(&base), &mut rng);
        assert_eq!(&r4[..16], &base[..16]);
        assert_ne!(r4[16], base[16]);
        assert_eq!(&r4[17..], &base[17..]);

        let r5 = build_payload(ProbeKind::R5, Some(&base), &mut rng);
        assert_ne!(r5[6], base[6]);
        assert_ne!(r5[16], base[16]);
        assert_eq!(&r5[..6], &base[..6]);
        assert_eq!(&r5[7..16], &base[7..16]);
        assert_eq!(&r5[17..], &base[17..]);
    }

    #[test]
    fn short_base_does_not_panic() {
        // A 10-byte base payload has no byte 16 or 62; R3/R4/R5 change
        // what exists.
        let mut rng = StdRng::seed_from_u64(3);
        let base = vec![1u8; 10];
        let r4 = build_payload(ProbeKind::R4, Some(&base), &mut rng);
        assert_eq!(r4, base, "no byte 16 to change");
        let r3 = build_payload(ProbeKind::R3, Some(&base), &mut rng);
        assert_eq!(r3.len(), 10);
        assert_ne!(&r3[..8], &base[..8]);
    }

    #[test]
    fn nr1_lengths_fall_in_trios() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let p = build_payload(ProbeKind::Nr1, None, &mut rng);
            assert!(is_nr1_len(p.len()), "len {}", p.len());
            seen.insert(p.len());
        }
        // All 21 legal lengths appear.
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn nr2_is_221_bytes() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = build_payload(ProbeKind::Nr2, None, &mut rng);
        assert_eq!(p.len(), 221);
        // And is not all zeros (i.e. actually random).
        assert!(p.iter().any(|&b| b != 0));
    }

    #[test]
    fn stage2_membership() {
        assert!(!ProbeKind::R1.is_stage2());
        assert!(!ProbeKind::R2.is_stage2());
        assert!(!ProbeKind::Nr2.is_stage2());
        assert!(ProbeKind::R3.is_stage2());
        assert!(ProbeKind::R4.is_stage2());
        assert!(ProbeKind::R5.is_stage2());
        assert!(ProbeKind::Nr1.is_stage2());
    }

    #[test]
    fn nr1_len_validator() {
        for good in [7, 8, 9, 11, 13, 22, 34, 48, 50] {
            assert!(is_nr1_len(good), "{good}");
        }
        for bad in [1, 10, 14, 18, 20, 24, 31, 35, 51, 221] {
            assert!(!is_nr1_len(bad), "{bad}");
        }
    }
}
