//! # gfw-core — a behavioural model of the Great Firewall's Shadowsocks
//! detection pipeline
//!
//! This crate is the paper's *subject* made executable: every measured
//! behaviour of the GFW from *How China Detects and Blocks Shadowsocks*
//! (IMC 2020) is implemented as a component, wired together as an
//! on-path middlebox ([`gfw::Gfw`]) for the `netsim` substrate.
//!
//! The pipeline, in paper order:
//!
//! 1. **Passive traffic analysis** ([`passive`]): the first
//!    data-carrying packet of every border-crossing connection is
//!    scored on payload **length** (with the mod-16 stair-step
//!    preference of Fig 8) and **Shannon entropy** (Fig 9), after a
//!    plaintext-protocol exemption.
//! 2. **Probe scheduling** ([`scheduler`], [`delay`]): flagged payloads
//!    are stored and replayed after delays spanning 0.28 s to 570 h
//!    (Fig 7); random probes are paced "a few per hour" per server.
//! 3. **The probe taxonomy** ([`probe`]): replays R1–R5 and random
//!    NR1/NR2 (§3.2, Fig 2), with the staged escalation of §4.2 —
//!    R3/R4/R5 only fire once a server has answered stage-1 probes
//!    with data.
//! 4. **The prober fleet** ([`fleet`]): thousands of churned source
//!    addresses drawn from the Table 3 AS inventory, steered by a
//!    handful of centralized processes whose shared TCP-timestamp
//!    clocks (250/1000 Hz) reproduce the Fig 6 side channel.
//! 5. **Reaction classification** ([`classifier`]): per-server
//!    statistics over probe reactions, matching the Fig 10 signatures
//!    (§5.2.2's attacker inference).
//! 6. **Blocking** ([`blocking`]): unidirectional null-routing by port
//!    or by IP, gated on a "sensitivity" knob modelling §6's human
//!    factor, with lazy unblocking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod classifier;
pub mod delay;
pub mod fleet;
pub mod gfw;
pub mod passive;
pub mod probe;
pub mod scheduler;

pub use gfw::{Gfw, GfwConfig, GfwHandle, VerdictCounters};
pub use probe::{ProbeKind, ProbeRecord, Reaction};
