//! The assembled Great Firewall: an on-path tap (passive detection +
//! blocking enforcement) and a controller application (probe launch +
//! reaction observation), sharing state.
//!
//! ```text
//!        border packets                probe connections
//!   ┌────────[tap]────────┐      ┌──────[controller app]─────┐
//!   │ blocking.should_drop │      │ fleet.assign → connect    │
//!   │ passive.should_store │ ───▶ │ send payload, watch       │
//!   │ scheduler.on_stored  │ wake │ reaction, classify, block │
//!   └─────────────────────┘      └───────────────────────────┘
//! ```

use crate::blocking::{BlockingConfig, BlockingModule};
use crate::classifier::{Classifier, Verdict};
use crate::fleet::{Fleet, FleetConfig};
use crate::passive::{FirstPayloadFeatures, PassiveConfig, PassiveDetector};
use crate::probe::{ProbeRecord, Reaction};
use crate::scheduler::{Scheduler, SchedulerConfig};
use netsim::app::{App, AppEvent, AppId, Ctx};
use netsim::conn::ConnId;
use netsim::packet::{Ipv4, Packet, SocketAddr};
use netsim::sim::Simulator;
use netsim::tap::{Tap, TapCtx, Verdict as TapVerdict};
use netsim::time::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Ground-truth-aware outcome counters for the passive stage.
///
/// Experiments that know which servers actually run Shadowsocks label
/// them via [`GfwState::label_shadowsocks_server`]; the tap then
/// attributes every first-payload store decision to a true/false
/// bucket, which is what the base-rate experiments read to compute
/// detector precision and recall. Without labels every decision lands
/// in a `*_false` bucket (the GFW itself never knows the truth — these
/// counters exist purely for evaluation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictCounters {
    /// First-data payloads inspected (one per connection).
    pub inspected: u64,
    /// Inspected payloads exempted by the plaintext-protocol whitelist.
    pub exempt: u64,
    /// Stored for replay, destination labelled Shadowsocks (true
    /// positives).
    pub stored_true: u64,
    /// Stored for replay, destination not labelled (false positives).
    pub stored_false: u64,
    /// Not stored although the destination is labelled (false
    /// negatives at the per-connection level).
    pub missed_true: u64,
    /// Not stored, destination not labelled (true negatives).
    pub passed_false: u64,
}

impl VerdictCounters {
    /// Stored decisions: the detector's positive count.
    pub fn positives(&self) -> u64 {
        self.stored_true.wrapping_add(self.stored_false)
    }

    /// Precision of the store decision: TP / (TP + FP). `None` when
    /// nothing was stored.
    pub fn precision(&self) -> Option<f64> {
        let p = self.positives();
        (p > 0).then(|| self.stored_true as f64 / p as f64)
    }

    /// Recall of the store decision: TP / (TP + FN). `None` when no
    /// labelled traffic was inspected.
    pub fn recall(&self) -> Option<f64> {
        let t = self.stored_true.wrapping_add(self.missed_true);
        (t > 0).then(|| self.stored_true as f64 / t as f64)
    }

    /// Fold another cell's counters into this one. Every field is a
    /// plain sum, so merging in shard order is associative and the
    /// result is independent of how hosts were partitioned.
    pub fn merge(&mut self, other: &VerdictCounters) {
        self.inspected = self.inspected.wrapping_add(other.inspected);
        self.exempt = self.exempt.wrapping_add(other.exempt);
        self.stored_true = self.stored_true.wrapping_add(other.stored_true);
        self.stored_false = self.stored_false.wrapping_add(other.stored_false);
        self.missed_true = self.missed_true.wrapping_add(other.missed_true);
        self.passed_false = self.passed_false.wrapping_add(other.passed_false);
    }
}

/// Per-connection GFW bookkeeping, one map entry per connection the tap
/// still cares about. Collapsing the former `own_conns` + `seen_data`
/// `HashSet` pair into a single map halves the hash probes on the
/// per-packet hot path.
#[derive(Clone, Copy, Debug)]
enum ConnTrack {
    /// Created by the GFW itself (probe); never self-triggering.
    Own,
    /// First data packet already inspected; later packets skip straight
    /// past the detector. Carries the features scored from that packet,
    /// so the entropy histogram is provably computed at most once per
    /// connection.
    SeenData(FirstPayloadFeatures),
}

/// Full GFW configuration.
#[derive(Clone, Debug, Default)]
pub struct GfwConfig {
    /// Passive detector parameters.
    pub passive: PassiveConfig,
    /// Scheduler parameters.
    pub scheduler: SchedulerConfig,
    /// Blocking policy.
    pub blocking: BlockingConfig,
    /// Prober fleet parameters.
    pub fleet: FleetConfig,
}

/// Mutable GFW state shared between the tap and the controller.
pub struct GfwState {
    /// Passive detector.
    pub passive: PassiveDetector,
    /// Probe scheduler / replay store.
    pub scheduler: Scheduler,
    /// Blocking module.
    pub blocking: BlockingModule,
    /// Reaction classifier.
    pub classifier: Classifier,
    /// Prober fleet.
    pub fleet: Fleet,
    /// Every probe ever launched, with reactions as they resolve.
    pub probe_log: Vec<ProbeRecord>,
    /// Per-connection tap state (own probes / already-inspected).
    conn_track: HashMap<ConnId, ConnTrack>,
    /// First-data packets inspected (trigger candidates).
    pub inspected: u64,
    /// Ground-truth-aware store-decision outcomes (evaluation only).
    verdicts: VerdictCounters,
    /// Ground-truth labels: destinations that really run Shadowsocks.
    truth: HashSet<Ipv4>,
    /// Stored-payload counts keyed by destination endpoint, for
    /// breaking down the false-positive surface by background protocol.
    stored_by_server: HashMap<SocketAddr, u64>,
    rng: StdRng,
    controller: AppId,
}

/// Handle returned by [`Gfw::install`].
pub struct GfwHandle {
    /// Shared state for inspection by experiments.
    pub state: Rc<RefCell<GfwState>>,
    /// The controller's app id.
    pub controller: AppId,
}

/// Namespace for installation.
pub struct Gfw;

const TOKEN_ORDERS: u64 = u64::MAX;

impl Gfw {
    /// Install the GFW on a simulator: registers the prober fleet's
    /// hosts, the border tap, and the controller app.
    pub fn install(sim: &mut Simulator, config: GfwConfig, seed: u64) -> GfwHandle {
        let fleet = Fleet::install(sim, config.fleet.clone(), seed ^ 0xF1EE7);
        // Reserve the controller's app slot first so the state can name
        // it; the real app is pushed immediately after.
        let state = Rc::new(RefCell::new(GfwState {
            passive: PassiveDetector::new(config.passive.clone()),
            scheduler: Scheduler::new(config.scheduler.clone()),
            blocking: BlockingModule::new(config.blocking),
            classifier: Classifier::new(),
            fleet,
            probe_log: Vec::new(),
            conn_track: HashMap::new(),
            inspected: 0,
            verdicts: VerdictCounters::default(),
            truth: HashSet::new(),
            stored_by_server: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            controller: AppId(u32::MAX),
        }));
        let controller = sim.add_app(Box::new(GfwController {
            state: state.clone(),
            pending: HashMap::new(),
            probe_timeout_secs: (5, 9),
            probe_retries: config.fleet.probe_retries,
        }));
        state.borrow_mut().controller = controller;
        sim.add_tap(Box::new(GfwTap {
            state: state.clone(),
        }));
        GfwHandle { state, controller }
    }
}

/// The border tap.
struct GfwTap {
    state: Rc<RefCell<GfwState>>,
}

impl Tap for GfwTap {
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut TapCtx) -> TapVerdict {
        let mut st = self.state.borrow_mut();
        // 1. Enforcement: unidirectional null-routing.
        if st.blocking.should_drop(ctx.now, pkt) {
            return TapVerdict::Drop;
        }
        // 2+3. One hash probe resolves both "our own probe?" and
        // "already inspected?"; RST/FIN retires an inspected entry.
        match st.conn_track.get(&pkt.conn) {
            Some(ConnTrack::Own | ConnTrack::SeenData(_)) => {
                // ConnIds are never reused, so retiring the entry on
                // teardown is safe for both variants — and necessary:
                // leaving probe entries in place retains one map slot
                // per probe for the lifetime of the simulation.
                if pkt.flags.rst || pkt.flags.fin {
                    st.conn_track.remove(&pkt.conn);
                }
                return TapVerdict::Pass;
            }
            None => {}
        }
        if pkt.flags.rst || pkt.flags.fin {
            return TapVerdict::Pass;
        }
        // 4. First data-carrying packet of a connection: passive stage.
        // One `features` call scores length and entropy together; the
        // result is cached in the track entry.
        if pkt.has_payload() {
            let feats = st.passive.features(&pkt.payload);
            st.conn_track.insert(pkt.conn, ConnTrack::SeenData(feats));
            st.inspected += 1;
            let server = pkt.dst;
            if feats.candidate {
                st.scheduler.on_candidate(server, feats.len);
            }
            let store = feats.store_probability > 0.0 && st.rng.gen_bool(feats.store_probability);
            // Evaluation bookkeeping: attribute the decision against
            // the experiment's ground-truth labels. Never feeds back
            // into GFW behaviour.
            st.verdicts.inspected = st.verdicts.inspected.wrapping_add(1);
            if feats.exempt {
                st.verdicts.exempt = st.verdicts.exempt.wrapping_add(1);
            }
            let labelled = st.truth.contains(&server.0);
            let bucket = match (store, labelled) {
                (true, true) => &mut st.verdicts.stored_true,
                (true, false) => &mut st.verdicts.stored_false,
                (false, true) => &mut st.verdicts.missed_true,
                (false, false) => &mut st.verdicts.passed_false,
            };
            *bucket = bucket.wrapping_add(1);
            if store {
                let count = st.stored_by_server.entry(server).or_insert(0);
                *count = count.wrapping_add(1);
                let GfwState { scheduler, rng, .. } = &mut *st;
                scheduler.on_stored_payload(ctx.now, server, &pkt.payload, rng);
                if let Some(due) = st.scheduler.next_due() {
                    ctx.wake_app(st.controller, due, TOKEN_ORDERS);
                }
            }
        }
        TapVerdict::Pass
    }
}

struct PendingProbe {
    log_idx: usize,
    payload: Vec<u8>,
    sent: bool,
    retries_left: u32,
}

/// The controller app: fires due orders, observes reactions.
struct GfwController {
    state: Rc<RefCell<GfwState>>,
    pending: HashMap<ConnId, PendingProbe>,
    probe_timeout_secs: (u64, u64),
    probe_retries: u32,
}

impl GfwController {
    fn launch_due(&mut self, ctx: &mut Ctx) {
        let orders = {
            let mut st = self.state.borrow_mut();
            st.scheduler.pop_due(ctx.now)
        };
        for order in orders {
            let (source, log_idx) = {
                let mut st = self.state.borrow_mut();
                let source = st.fleet.assign(ctx.now);
                let log_idx = st.probe_log.len();
                st.probe_log.push(ProbeRecord {
                    server: order.server,
                    kind: order.kind,
                    sent_at: ctx.now,
                    trigger_delay: order.trigger_delay,
                    trigger_id: order.trigger_id,
                    payload_len: order.payload.len(),
                    src: source.ip,
                    src_port: source.port,
                    process: source.process,
                    reaction: None,
                    attempts: 1,
                });
                (source, log_idx)
            };
            let conn = ctx.connect(source.ip, order.server, source.tuning);
            ctx.stats.probes_launched += 1;
            self.state
                .borrow_mut()
                .conn_track
                .insert(conn, ConnTrack::Own);
            self.pending.insert(
                conn,
                PendingProbe {
                    log_idx,
                    payload: order.payload,
                    sent: false,
                    retries_left: self.probe_retries,
                },
            );
        }
        // Re-arm for the next order.
        let next = self.state.borrow_mut().scheduler.next_due();
        if let Some(due) = next {
            ctx.set_timer(due.since(ctx.now), TOKEN_ORDERS);
        }
    }

    /// A probe whose TCP connect failed is re-launched from a freshly
    /// assigned fleet source while its retry budget lasts (under link
    /// loss this is what keeps TIMEOUT-vs-CONNFAIL observations
    /// meaningful); once the budget is spent it resolves as
    /// `ConnectFailed`.
    fn retry_or_resolve(&mut self, conn: ConnId, ctx: &mut Ctx) {
        let can_retry = self.pending.get(&conn).is_some_and(|p| p.retries_left > 0);
        if !can_retry {
            self.resolve(conn, Reaction::ConnectFailed, ctx);
            return;
        }
        let Some(mut p) = self.pending.remove(&conn) else {
            return;
        };
        p.retries_left -= 1;
        p.sent = false;
        let (source, server) = {
            let mut st = self.state.borrow_mut();
            let source = st.fleet.assign(ctx.now);
            let rec = &mut st.probe_log[p.log_idx];
            let server = rec.server;
            rec.src = source.ip;
            rec.src_port = source.port;
            rec.process = source.process;
            rec.sent_at = ctx.now;
            rec.attempts += 1;
            (source, server)
        };
        let new_conn = ctx.connect(source.ip, server, source.tuning);
        ctx.stats.probes_launched += 1;
        self.state
            .borrow_mut()
            .conn_track
            .insert(new_conn, ConnTrack::Own);
        self.pending.insert(new_conn, p);
    }

    fn resolve(&mut self, conn: ConnId, reaction: Reaction, ctx: &mut Ctx) {
        let Some(p) = self.pending.remove(&conn) else {
            return;
        };
        let mut st = self.state.borrow_mut();
        st.probe_log[p.log_idx].reaction = Some(reaction);
        let record = st.probe_log[p.log_idx].clone();
        st.classifier
            .record(record.server, record.kind, record.payload_len, reaction);
        // Data response unlocks stage 2 for this server (§4.2).
        if reaction == Reaction::Data {
            let GfwState { scheduler, rng, .. } = &mut *st;
            scheduler.unlock_stage2(ctx.now, record.server, rng);
        }
        // Classification → possible blocking decision.
        if let Verdict::LikelyShadowsocks { confidence, .. } = st.classifier.verdict(record.server)
        {
            let GfwState { blocking, rng, .. } = &mut *st;
            blocking.consider(ctx.now, record.server, confidence, rng);
        }
        drop(st);
        // Wake ourselves in case stage-2 unlock queued new orders.
        let next = self.state.borrow_mut().scheduler.next_due();
        if let Some(due) = next {
            ctx.set_timer(due.since(ctx.now), TOKEN_ORDERS);
        }
    }
}

impl App for GfwController {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Timer { token } if token == TOKEN_ORDERS => {
                self.launch_due(ctx);
            }
            AppEvent::Timer { token } => {
                // Per-probe timeout: the prober gives up and FINs first.
                let conn = ConnId(token);
                if self.pending.contains_key(&conn) {
                    ctx.fin(conn);
                    self.resolve(conn, Reaction::Timeout, ctx);
                }
            }
            AppEvent::Connected { conn } => {
                if let Some(p) = self.pending.get_mut(&conn) {
                    if !p.sent {
                        p.sent = true;
                        ctx.send(conn, p.payload.clone());
                        let secs = ctx
                            .rng
                            .gen_range(self.probe_timeout_secs.0..=self.probe_timeout_secs.1);
                        ctx.set_timer(Duration::from_secs(secs), conn.0);
                    }
                }
            }
            AppEvent::ConnectFailed { conn, .. } => {
                self.retry_or_resolve(conn, ctx);
            }
            AppEvent::Data { conn, .. } if self.pending.contains_key(&conn) => {
                ctx.fin(conn);
                self.resolve(conn, Reaction::Data, ctx);
            }
            AppEvent::PeerRst { conn } => {
                self.resolve(conn, Reaction::Rst, ctx);
            }
            AppEvent::PeerFin { conn } if self.pending.contains_key(&conn) => {
                ctx.fin(conn);
                self.resolve(conn, Reaction::FinAck, ctx);
            }
            _ => {}
        }
    }
}

/// Convenience for experiments: summarize the probe log.
pub fn probe_summary(state: &GfwState) -> HashMap<crate::probe::ProbeKind, usize> {
    let mut counts = HashMap::new();
    for rec in &state.probe_log {
        *counts.entry(rec.kind).or_insert(0) += 1;
    }
    counts
}

impl GfwState {
    /// Immutable access to the probe log.
    pub fn probes(&self) -> &[ProbeRecord] {
        &self.probe_log
    }

    /// How many first-data packets the passive stage inspected.
    pub fn inspected_connections(&self) -> u64 {
        self.inspected
    }

    /// The features the passive stage scored from `conn`'s first data
    /// packet, while the connection is still tracked (entries retire on
    /// RST/FIN). This is the cache that guarantees the entropy
    /// histogram runs at most once per connection.
    pub fn first_payload_features(&self, conn: ConnId) -> Option<FirstPayloadFeatures> {
        match self.conn_track.get(&conn) {
            Some(ConnTrack::SeenData(f)) => Some(*f),
            _ => None,
        }
    }

    /// Timestamp clock of prober process `i` (for TSval ground truth).
    pub fn process_clock(&self, i: usize) -> netsim::host::TsClock {
        self.fleet.processes[i].clock
    }

    /// Label `ip` as a genuine Shadowsocks server for evaluation.
    /// Store decisions towards it count as true positives / false
    /// negatives in [`GfwState::verdict_counters`]. The label is
    /// invisible to the detection pipeline itself.
    pub fn label_shadowsocks_server(&mut self, ip: Ipv4) {
        self.truth.insert(ip);
    }

    /// Ground-truth-aware outcome counters (see [`VerdictCounters`]).
    pub fn verdict_counters(&self) -> VerdictCounters {
        self.verdicts
    }

    /// How many payloads destined to `server` the passive stage stored.
    pub fn stored_towards(&self, server: SocketAddr) -> u64 {
        self.stored_by_server.get(&server).copied().unwrap_or(0)
    }

    /// Connections the tap is still tracking (own probes plus
    /// inspected-but-not-yet-closed flows). Entries retire on RST/FIN,
    /// so after every connection tears down this returns to zero — the
    /// retention regression test pins that down.
    pub fn tracked_conns(&self) -> usize {
        self.conn_track.len()
    }
}
