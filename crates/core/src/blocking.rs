//! The blocking module (§6).
//!
//! Confirmed servers are null-routed in the server→client direction
//! only, either by (IP, port) or by whole IP. Two behaviours from the
//! paper's §6 are modelled explicitly:
//!
//! * **The human factor.** Few of the paper's heavily-probed servers
//!   were ever blocked, and blocking concentrates around politically
//!   sensitive dates. A `sensitivity` knob gates verdict→block
//!   decisions; 1.0 models a sensitive period, small values model
//!   ordinary operation.
//! * **Lazy unblocking.** Unlike Tor (re-checked every 12 h), blocked
//!   Shadowsocks servers are not re-probed; rules simply expire after
//!   a configurable duration (one server was observed unblocked after
//!   more than a week).

use netsim::packet::{Ipv4, Packet, SocketAddr};
use netsim::time::{Duration, SimTime};
use rand::Rng;

/// What a block rule covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockScope {
    /// Drop server→client packets from this (address, port).
    Port(SocketAddr),
    /// Drop server→client packets from this address entirely.
    Ip(Ipv4),
}

/// One active rule.
#[derive(Clone, Copy, Debug)]
pub struct BlockRule {
    /// What is blocked.
    pub scope: BlockScope,
    /// When the rule was installed.
    pub since: SimTime,
    /// When the rule lapses (lazy unblocking).
    pub until: SimTime,
}

/// Blocking policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct BlockingConfig {
    /// Probability that a confirmed server is actually blocked — §6's
    /// human factor.
    pub sensitivity: f64,
    /// Probability a block covers the whole IP rather than one port.
    pub block_ip_frac: f64,
    /// Minimum block duration.
    pub min_duration: Duration,
    /// Maximum block duration.
    pub max_duration: Duration,
    /// Minimum classifier confidence required before considering a
    /// block.
    pub min_confidence: f64,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            sensitivity: 0.05,
            block_ip_frac: 0.3,
            min_duration: Duration::from_hours(24 * 7),
            max_duration: Duration::from_hours(24 * 21),
            min_confidence: 0.75,
        }
    }
}

/// The blocking module: rule set + decision logic.
pub struct BlockingModule {
    /// Active configuration.
    pub config: BlockingConfig,
    rules: Vec<BlockRule>,
    /// Verdicts that were eligible but passed over by the sensitivity
    /// gate (observable for experiments).
    pub suppressed: u64,
}

impl BlockingModule {
    /// Create with the given policy.
    pub fn new(config: BlockingConfig) -> BlockingModule {
        BlockingModule {
            config,
            rules: Vec::new(),
            suppressed: 0,
        }
    }

    /// Consider blocking `server` given a classifier confidence.
    /// Returns the installed rule, if any.
    pub fn consider(
        &mut self,
        now: SimTime,
        server: SocketAddr,
        confidence: f64,
        rng: &mut impl Rng,
    ) -> Option<BlockRule> {
        if confidence < self.config.min_confidence {
            return None;
        }
        if self.is_blocked_addr(now, server) {
            return None;
        }
        if !rng.gen_bool(self.config.sensitivity) {
            self.suppressed += 1;
            return None;
        }
        let scope = if rng.gen_bool(self.config.block_ip_frac) {
            BlockScope::Ip(server.0)
        } else {
            BlockScope::Port(server)
        };
        let span_ns = rng
            .gen_range(self.config.min_duration.as_nanos()..=self.config.max_duration.as_nanos());
        let rule = BlockRule {
            scope,
            since: now,
            until: now + Duration::from_nanos(span_ns),
        };
        self.rules.push(rule);
        Some(rule)
    }

    /// True if packets *from* `addr` are currently dropped.
    pub fn is_blocked_addr(&self, now: SimTime, addr: SocketAddr) -> bool {
        self.rules.iter().any(|r| {
            now < r.until
                && match r.scope {
                    BlockScope::Port(sa) => sa == addr,
                    BlockScope::Ip(ip) => ip == addr.0,
                }
        })
    }

    /// The drop decision for a packet: only the server→client direction
    /// is null-routed, i.e. we match on the packet's *source*.
    pub fn should_drop(&self, now: SimTime, pkt: &Packet) -> bool {
        self.is_blocked_addr(now, pkt.src)
    }

    /// Currently active rules.
    pub fn active_rules(&self, now: SimTime) -> Vec<BlockRule> {
        self.rules
            .iter()
            .filter(|r| now < r.until)
            .copied()
            .collect()
    }

    /// All rules ever installed.
    pub fn all_rules(&self) -> &[BlockRule] {
        &self.rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::conn::ConnId;
    use netsim::packet::TcpFlags;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pkt(src: SocketAddr, dst: SocketAddr) -> Packet {
        Packet {
            sent_at: SimTime::ZERO,
            src,
            dst,
            flags: TcpFlags::PSH_ACK,
            seq: 0,
            ack: 0,
            window: 65535,
            ttl: 64,
            ip_id: 0,
            tsval: Some(0),
            payload: Bytes::from_static(b"x"),
            conn: ConnId(0),
            retx: false,
        }
    }

    fn server() -> SocketAddr {
        (Ipv4::new(172, 0, 0, 1), 8388)
    }

    fn client() -> SocketAddr {
        (Ipv4::new(110, 0, 0, 1), 40000)
    }

    fn always() -> BlockingConfig {
        BlockingConfig {
            sensitivity: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn blocking_is_unidirectional() {
        let mut m = BlockingModule::new(BlockingConfig {
            block_ip_frac: 0.0,
            ..always()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let rule = m.consider(SimTime::ZERO, server(), 0.9, &mut rng).unwrap();
        assert_eq!(rule.scope, BlockScope::Port(server()));
        // Server→client dropped; client→server passes (§6).
        assert!(m.should_drop(SimTime::ZERO, &pkt(server(), client())));
        assert!(!m.should_drop(SimTime::ZERO, &pkt(client(), server())));
    }

    #[test]
    fn port_block_spares_other_ports() {
        let mut m = BlockingModule::new(BlockingConfig {
            block_ip_frac: 0.0,
            ..always()
        });
        let mut rng = StdRng::seed_from_u64(2);
        m.consider(SimTime::ZERO, server(), 0.9, &mut rng).unwrap();
        let other_port = (server().0, 443);
        assert!(!m.should_drop(SimTime::ZERO, &pkt(other_port, client())));
    }

    #[test]
    fn ip_block_covers_all_ports() {
        let mut m = BlockingModule::new(BlockingConfig {
            block_ip_frac: 1.0,
            ..always()
        });
        let mut rng = StdRng::seed_from_u64(3);
        m.consider(SimTime::ZERO, server(), 0.9, &mut rng).unwrap();
        assert!(m.should_drop(SimTime::ZERO, &pkt((server().0, 443), client())));
    }

    #[test]
    fn rules_lapse_without_recheck() {
        let mut m = BlockingModule::new(always());
        let mut rng = StdRng::seed_from_u64(4);
        let rule = m.consider(SimTime::ZERO, server(), 0.9, &mut rng).unwrap();
        assert!(rule.until.since(rule.since) >= Duration::from_hours(24 * 7));
        let after = rule.until + Duration::from_secs(1);
        assert!(!m.is_blocked_addr(after, server()));
        assert!(m.active_rules(after).is_empty());
        assert_eq!(m.all_rules().len(), 1);
    }

    #[test]
    fn sensitivity_gate_suppresses_blocks() {
        let mut m = BlockingModule::new(BlockingConfig {
            sensitivity: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        assert!(m
            .consider(SimTime::ZERO, server(), 0.99, &mut rng)
            .is_none());
        assert_eq!(m.suppressed, 1);
    }

    #[test]
    fn low_confidence_never_blocks() {
        let mut m = BlockingModule::new(always());
        let mut rng = StdRng::seed_from_u64(6);
        assert!(m.consider(SimTime::ZERO, server(), 0.3, &mut rng).is_none());
        assert_eq!(m.suppressed, 0, "confidence gate is not the human gate");
    }

    #[test]
    fn no_duplicate_rules_for_blocked_server() {
        let mut m = BlockingModule::new(always());
        let mut rng = StdRng::seed_from_u64(7);
        assert!(m.consider(SimTime::ZERO, server(), 0.9, &mut rng).is_some());
        assert!(m.consider(SimTime::ZERO, server(), 0.9, &mut rng).is_none());
        assert_eq!(m.all_rules().len(), 1);
    }
}
