//! End-to-end pipeline tests: genuine Shadowsocks traffic crosses the
//! simulated border, the GFW model detects it passively, launches
//! staged probes from its fleet, classifies the reactions, and (when
//! sensitive) blocks the server — the whole paper in one simulator run.

use gfw_core::blocking::BlockingConfig;
use gfw_core::classifier::{Signature, Verdict};
use gfw_core::fleet::FleetConfig;
use gfw_core::probe::{ProbeKind, Reaction};
use gfw_core::{Gfw, GfwConfig};
use netsim::app::{App, AppEvent, Ctx};
use netsim::capture::Capture;
use netsim::conn::{ConnId, TcpTuning};
use netsim::host::HostConfig;
use netsim::packet::Ipv4;
use netsim::time::{Duration, SimTime};
use netsim::{SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowsocks::apps::SsServerApp;
use shadowsocks::{ClientSession, Profile, ServerConfig, TargetAddr};
use sscrypto::method::Method;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Drives genuine Shadowsocks connections: one fresh session per
/// connection, a single first packet each (plenty to trigger the GFW).
struct SsTrafficDriver {
    config: ServerConfig,
    target: TargetAddr,
    payload_len: usize,
    sessions: HashMap<ConnId, ClientSession>,
    rng: StdRng,
    outcomes: Rc<RefCell<Vec<&'static str>>>,
}

impl App for SsTrafficDriver {
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
        match ev {
            AppEvent::Connected { conn } => {
                let mut session =
                    ClientSession::new(&self.config, self.target.clone(), &mut self.rng);
                let mut body = vec![0u8; self.payload_len];
                self.rng.fill(&mut body[..]);
                let wire = session.send(&body);
                self.sessions.insert(conn, session);
                ctx.send(conn, wire);
                self.outcomes.borrow_mut().push("connected");
            }
            AppEvent::ConnectFailed { .. } => {
                self.outcomes.borrow_mut().push("connect_failed");
            }
            AppEvent::Data { conn, .. } => {
                ctx.fin(conn);
            }
            AppEvent::PeerFin { conn } | AppEvent::PeerRst { conn } => {
                self.sessions.remove(&conn);
                ctx.fin(conn);
            }
            _ => {}
        }
    }
}

struct Setup {
    sim: Simulator,
    handle: gfw_core::GfwHandle,
    server_ip: Ipv4,
    driver: netsim::app::AppId,
    client_ip: Ipv4,
    cap: netsim::sim::CaptureId,
    outcomes: Rc<RefCell<Vec<&'static str>>>,
}

fn build(profile: Profile, method: Method, sensitivity: f64, seed: u64) -> Setup {
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let mut gfw_config = GfwConfig::default();
    gfw_config.fleet.pool_size = 600;
    gfw_config.blocking = BlockingConfig {
        sensitivity,
        ..Default::default()
    };
    // Tighten NR pacing so short tests still see NR probes.
    gfw_config.scheduler.nr_min_gap = Duration::from_mins(2);
    let _ = FleetConfig::default();
    let handle = Gfw::install(&mut sim, gfw_config, seed ^ 0xBEEF);

    let server_ip = sim.add_host(HostConfig::outside("ss-server"));
    let client_ip = sim.add_host(HostConfig::china("ss-client"));
    let web_ip = sim.add_host(HostConfig::outside("website"));
    let cap = sim.add_capture(Capture::for_host(server_ip));

    let ss_config = ServerConfig::new(method, "pipeline-pw", profile);
    // The website echoes so proxied fetches complete.
    struct Web;
    impl App for Web {
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
            if let AppEvent::Data { conn, data } = ev {
                ctx.send(conn, data);
            }
        }
    }
    let web = sim.add_app(Box::new(Web));
    sim.listen((web_ip, 443), web);

    let server_app = sim.add_app(Box::new(SsServerApp::new(
        ss_config.clone(),
        server_ip,
        seed ^ 0x5E4,
    )));
    sim.listen((server_ip, 8388), server_app);

    let outcomes = Rc::new(RefCell::new(Vec::new()));
    // First-packet wire length: IV/salt + overhead + payload. Choose the
    // payload so the wire length lands on an attractive length (mod 16
    // remainder 2, inside the 384–687 band).
    let overhead = match method.kind() {
        sscrypto::method::Kind::Stream => method.iv_len() + 7,
        sscrypto::method::Kind::Aead => method.iv_len() + (2 + 16 + 16) * 2 + 7,
    };
    let wire_target = 402; // already ≡ 2 (mod 16): an attractive remainder
    let payload_len = wire_target + 160 - overhead; // stay in-band regardless
    let driver = sim.add_app(Box::new(SsTrafficDriver {
        config: ss_config,
        target: TargetAddr::Ipv4(web_ip.0, 443),
        payload_len,
        sessions: HashMap::new(),
        rng: StdRng::seed_from_u64(seed ^ 0xD1),
        outcomes: outcomes.clone(),
    }));

    Setup {
        sim,
        handle,
        server_ip,
        driver,
        client_ip,
        cap,
        outcomes,
    }
}

fn drive_connections(setup: &mut Setup, n: usize, spacing: Duration) {
    for i in 0..n {
        setup.sim.connect_at(
            SimTime::ZERO + Duration::from_nanos(spacing.as_nanos() * i as u64),
            setup.driver,
            setup.client_ip,
            (setup.server_ip, 8388),
            TcpTuning::default(),
        );
    }
}

#[test]
fn libev_server_gets_stage1_probes_only() {
    let mut setup = build(Profile::LIBEV_OLD, Method::Aes256Cfb, 0.0, 11);
    drive_connections(&mut setup, 800, Duration::from_secs(30));
    setup.sim.run();

    let st = setup.handle.state.borrow();
    let probes = st.probes();
    assert!(
        probes.len() >= 20,
        "expected substantial probing, got {}",
        probes.len()
    );
    let kinds: std::collections::HashSet<ProbeKind> = probes.iter().map(|p| p.kind).collect();
    assert!(kinds.contains(&ProbeKind::R1), "kinds: {kinds:?}");
    assert!(kinds.contains(&ProbeKind::Nr2), "kinds: {kinds:?}");
    // libev never answers probes with data → stage 2 never unlocks.
    assert!(!kinds.contains(&ProbeKind::R3), "kinds: {kinds:?}");
    assert!(!kinds.contains(&ProbeKind::R4), "kinds: {kinds:?}");
    assert!(!kinds.contains(&ProbeKind::R5), "kinds: {kinds:?}");

    // Identical replays hit the replay filter → RST (Table 5 row 1).
    let r1_reactions: Vec<Reaction> = probes
        .iter()
        .filter(|p| p.kind == ProbeKind::R1)
        .filter_map(|p| p.reaction)
        .collect();
    assert!(!r1_reactions.is_empty());
    assert!(
        r1_reactions.iter().all(|&r| r == Reaction::Rst),
        "{r1_reactions:?}"
    );

    // Genuine Shadowsocks traffic has a consistent first-packet length
    // remainder → NR1 probes appear (unlike the random-data sink).
    assert!(kinds.contains(&ProbeKind::Nr1), "kinds: {kinds:?}");
}

#[test]
fn libev_probes_have_paper_fingerprints() {
    let mut setup = build(Profile::LIBEV_OLD, Method::Aes256Cfb, 0.0, 12);
    drive_connections(&mut setup, 600, Duration::from_secs(30));
    setup.sim.run();

    let st = setup.handle.state.borrow();
    for rec in st.probes() {
        assert!(
            analysis::asn::lookup(rec.src).is_some(),
            "prober {} has no AS",
            rec.src
        );
        assert!(rec.src_port >= 1024);
    }
    // Check wire-level fingerprints via the capture.
    let cap = setup.sim.capture(setup.cap);
    let prober_data: Vec<_> = cap
        .data_packets()
        .filter(|p| p.dst.0 == setup.server_ip && analysis::asn::lookup(p.src.0).is_some())
        .collect();
    assert!(!prober_data.is_empty());
    for p in &prober_data {
        assert!((46..=50).contains(&p.ttl), "prober TTL {}", p.ttl);
    }
}

#[test]
fn outline_server_unlocks_stage2_and_gets_blocked() {
    // OutlineVPN v1.0.7: no replay filter → R1 is proxied → answered
    // with data → stage 2 unlocks → R3/R4 appear → high-confidence
    // verdict → blocked under a sensitive regime.
    let mut setup = build(
        Profile::OUTLINE_1_0_7,
        Method::ChaCha20IetfPoly1305,
        1.0,
        13,
    );
    drive_connections(&mut setup, 800, Duration::from_secs(30));
    setup.sim.run();

    let server_addr = (setup.server_ip, 8388);
    let st = setup.handle.state.borrow();
    let kinds: std::collections::HashSet<ProbeKind> = st.probes().iter().map(|p| p.kind).collect();
    assert!(
        kinds.contains(&ProbeKind::R3) || kinds.contains(&ProbeKind::R4),
        "stage 2 should have unlocked; kinds: {kinds:?}"
    );
    // Some R1 was answered with data.
    assert!(st
        .probes()
        .iter()
        .any(|p| p.kind == ProbeKind::R1 && p.reaction == Some(Reaction::Data)));
    match st.classifier.verdict(server_addr) {
        Verdict::LikelyShadowsocks {
            signature,
            confidence,
        } => {
            assert_eq!(signature, Signature::RepliesToReplay);
            assert!(confidence > 0.9);
        }
        v => panic!("verdict {v:?}"),
    }
    let rules = st.blocking.all_rules();
    assert!(!rules.is_empty(), "server should be blocked");
    drop(st);

    // A new legitimate connection now fails: the SYN-ACK is dropped on
    // the way back into China (unidirectional null-routing, §6).
    let before = setup.outcomes.borrow().len();
    let t = setup.sim.now();
    setup.sim.connect_at(
        t + Duration::from_secs(60),
        setup.driver,
        setup.client_ip,
        (setup.server_ip, 8388),
        TcpTuning::default(),
    );
    setup.sim.run();
    let outcomes = setup.outcomes.borrow();
    assert_eq!(
        outcomes[before..],
        ["connect_failed"],
        "client must not reach a blocked server"
    );
}

#[test]
fn sink_host_without_traffic_is_never_probed() {
    // The control server of §3.1: exists, listens, never contacted by
    // any client — and receives no probes (no proactive scanning, §4).
    let mut setup = build(Profile::LIBEV_OLD, Method::Aes256Cfb, 0.0, 14);
    let control_ip = setup.sim.add_host(HostConfig::outside("control"));
    struct Nop;
    impl App for Nop {
        fn on_event(&mut self, _: AppEvent, _: &mut Ctx) {}
    }
    let nop = setup.sim.add_app(Box::new(Nop));
    setup.sim.listen((control_ip, 8388), nop);
    drive_connections(&mut setup, 300, Duration::from_secs(30));
    setup.sim.run();

    let st = setup.handle.state.borrow();
    assert!(st.probes().iter().all(|p| p.server.0 != control_ip));
    assert!(!st.probes().is_empty(), "the real server was probed");
}

#[test]
fn tap_state_drains_when_connections_close() {
    // Regression: the tap used to retire only inspected-flow entries on
    // RST/FIN and keep its own probe entries forever, retaining one map
    // slot per probe for the lifetime of the simulation. After every
    // connection (client traffic and probes alike) has torn down, the
    // per-connection table must be empty again.
    let mut setup = build(Profile::LIBEV_OLD, Method::Aes256Cfb, 0.0, 16);
    drive_connections(&mut setup, 400, Duration::from_secs(30));
    setup.sim.run();

    let st = setup.handle.state.borrow();
    assert!(
        !st.probes().is_empty(),
        "run produced no probes, test is vacuous"
    );
    // Border-crossing connections (client traffic and probes) have all
    // torn down; only the server's upstream legs to the website — which
    // never cross the border and are invisible to the tap — stay open.
    assert_eq!(
        st.tracked_conns(),
        0,
        "tap retained per-connection state after teardown"
    );
}

#[test]
fn plaintext_traffic_is_not_probed() {
    // HTTP through the same path draws no probes (protocol exemption).
    let mut setup = build(Profile::LIBEV_OLD, Method::Aes256Cfb, 0.0, 15);
    struct HttpClient;
    impl App for HttpClient {
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
            if let AppEvent::Connected { conn } = ev {
                let mut req = b"GET /page HTTP/1.1\r\nHost: example.com\r\n".to_vec();
                req.resize(402, b'x');
                ctx.send(conn, req);
            }
        }
    }
    let http_server_ip = setup.sim.add_host(HostConfig::outside("web"));
    struct Nop;
    impl App for Nop {
        fn on_event(&mut self, _: AppEvent, _: &mut Ctx) {}
    }
    let nop = setup.sim.add_app(Box::new(Nop));
    setup.sim.listen((http_server_ip, 80), nop);
    let http = setup.sim.add_app(Box::new(HttpClient));
    for i in 0..500 {
        setup.sim.connect_at(
            SimTime::ZERO + Duration::from_secs(i * 20),
            http,
            setup.client_ip,
            (http_server_ip, 80),
            TcpTuning::default(),
        );
    }
    setup.sim.run();
    let st = setup.handle.state.borrow();
    assert!(
        st.probes().iter().all(|p| p.server.0 != http_server_ip),
        "HTTP server must not be probed"
    );
}
