//! Component-level tests for gfw-core pieces not exercised end-to-end:
//! fleet pool exhaustion, classifier boundaries, probe-log summaries.

use gfw_core::classifier::{Classifier, Verdict, MIN_PROBES};
use gfw_core::fleet::{Fleet, FleetConfig};
use gfw_core::probe::{ProbeKind, Reaction};
use netsim::packet::Ipv4;
use netsim::sim::{SimConfig, Simulator};
use netsim::time::SimTime;

#[test]
fn fleet_survives_pool_exhaustion() {
    let mut sim = Simulator::new(SimConfig::default(), 1);
    let mut fleet = Fleet::install(
        &mut sim,
        FleetConfig {
            pool_size: 10,
            p_new_ip: 0.9, // aggressive allocation
            ..Default::default()
        },
        2,
    );
    // Far more probes than the pool holds: must reuse, never panic.
    let mut unique = std::collections::HashSet::new();
    for _ in 0..5_000 {
        unique.insert(fleet.assign(SimTime::ZERO).ip);
    }
    assert!(unique.len() <= 10);
    assert_eq!(fleet.unique_ips(), unique.len());
}

#[test]
fn classifier_minimum_probe_boundary() {
    let server = (Ipv4::new(1, 1, 1, 1), 8388);
    let mut c = Classifier::new();
    // MIN_PROBES - 1 non-decisive records: inconclusive.
    for _ in 0..MIN_PROBES - 1 {
        c.record(server, ProbeKind::Nr2, 221, Reaction::Rst);
    }
    assert_eq!(c.verdict(server), Verdict::Inconclusive);
    assert_eq!(c.observations(server), MIN_PROBES - 1);
    // One more tips it over (deterministic RST → AEAD signature, since
    // no short-probe RSTs were seen).
    c.record(server, ProbeKind::Nr2, 221, Reaction::Rst);
    assert!(matches!(
        c.verdict(server),
        Verdict::LikelyShadowsocks { .. }
    ));
}

#[test]
fn classifier_connectfailed_heavy_is_not_shadowsocks() {
    // A dead host answers nothing at the TCP level: mixed
    // connect-failures don't match any signature.
    let server = (Ipv4::new(2, 2, 2, 2), 8388);
    let mut c = Classifier::new();
    for _ in 0..12 {
        c.record(server, ProbeKind::Nr2, 221, Reaction::ConnectFailed);
    }
    match c.verdict(server) {
        Verdict::NotShadowsocks | Verdict::Inconclusive => {}
        v => panic!("dead host classified as {v:?}"),
    }
}

#[test]
fn classifier_tracks_servers_independently() {
    let a = (Ipv4::new(3, 3, 3, 3), 8388);
    let b = (Ipv4::new(4, 4, 4, 4), 8388);
    let mut c = Classifier::new();
    for _ in 0..MIN_PROBES {
        c.record(a, ProbeKind::Nr2, 221, Reaction::Rst);
        c.record(b, ProbeKind::Nr2, 221, Reaction::Timeout);
    }
    assert!(matches!(c.verdict(a), Verdict::LikelyShadowsocks { .. }));
    match c.verdict(b) {
        Verdict::LikelyShadowsocks { confidence, .. } => {
            assert!(confidence < 0.5, "all-silent must be low confidence")
        }
        v => panic!("{v:?}"),
    }
    assert_eq!(c.verdict((Ipv4::new(5, 5, 5, 5), 1)), Verdict::Inconclusive);
}

#[test]
fn probe_summary_counts_by_kind() {
    // Build a tiny world so a GfwState exists, then summarize.
    use gfw_core::{Gfw, GfwConfig};
    let mut sim = Simulator::new(SimConfig::default(), 3);
    let mut cfg = GfwConfig::default();
    cfg.fleet.pool_size = 50;
    let handle = Gfw::install(&mut sim, cfg, 4);
    let st = handle.state.borrow();
    let summary = gfw_core::gfw::probe_summary(&st);
    assert!(summary.is_empty(), "no probes before any traffic");
}

#[test]
fn fleet_epoch_churn_is_bounded() {
    let mut sim = Simulator::new(SimConfig::default(), 5);
    let mut fleet = Fleet::install(
        &mut sim,
        FleetConfig {
            pool_size: 1000,
            ..Default::default()
        },
        6,
    );
    for _ in 0..2_000 {
        fleet.assign(SimTime::ZERO);
    }
    let before = fleet.unique_ips();
    fleet.churn_epoch(0.5);
    let after = fleet.unique_ips();
    assert!(after <= before);
    assert!(
        (after as f64) >= 0.4 * before as f64,
        "retain=0.5 kept only {after}/{before}"
    );
    // Churn to zero keeps nothing.
    fleet.churn_epoch(0.0);
    assert_eq!(fleet.unique_ips(), 0);
    // And assignment still works afterwards.
    let s = fleet.assign(SimTime::ZERO);
    assert!(analysis::asn::lookup(s.ip).is_some());
}
