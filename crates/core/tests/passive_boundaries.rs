//! Boundary tests for the passive detector (§4): exact band edges of
//! the Fig 8 length model, the mod-16 stair steps inside each band,
//! entropy values straddling the §4.2 experiment thresholds, the
//! plaintext-exemption prefix edges, and the NR1/NR2 probe-length
//! windows.
//!
//! These pin the *edges* of the calibrated model; the distributional
//! shape (72%/96% remainder mixtures, the ~0.3% aggregate rate) is
//! covered by the unit tests in `passive.rs`.

use gfw_core::passive::{PassiveConfig, PassiveDetector};
use gfw_core::probe::{is_nr1_len, nr1_len, NR1_CENTERS, NR2_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn det() -> PassiveDetector {
    PassiveDetector::default()
}

/// A payload of the given length that is not plaintext-exempt.
fn opaque(len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(len as u64);
    let mut p = vec![0u8; len];
    rng.fill(&mut p[..]);
    // Keep clear of every exemption prefix.
    if !p.is_empty() {
        p[0] = 0xFF;
    }
    p
}

// -------------------------------------------------------------------
// Fig 8 band edges
// -------------------------------------------------------------------

#[test]
fn replay_window_edges() {
    let d = det();
    // 160 is the last length below the window, 161 the first inside;
    // 999 the last inside, 1000 the first above.
    assert_eq!(d.length_weight(160), 0.0);
    assert!(d.length_weight(161) > 0.0);
    assert!(d.length_weight(999) > 0.0);
    assert_eq!(d.length_weight(1000), 0.0);
    // store_probability agrees with the weight at both outer edges.
    assert_eq!(d.store_probability(&opaque(160)), 0.0);
    assert!(d.store_probability(&opaque(161)) > 0.0);
    assert!(d.store_probability(&opaque(999)) > 0.0);
    assert_eq!(d.store_probability(&opaque(1000)), 0.0);
}

#[test]
fn interior_band_boundaries_change_weights() {
    let d = det();
    // Neither 263/264 nor the other interior boundaries share a mod-16
    // stair value, so the weight must jump exactly at the boundary.
    // 263 % 16 == 7 (other, band 1), 264 % 16 == 8 (other, band 2).
    assert_eq!(d.length_weight(263), 0.57);
    assert_eq!(d.length_weight(264), 2.3);
    // 383 % 16 == 15 (other, band 2), 384 % 16 == 0 (other, band 3).
    assert_eq!(d.length_weight(383), 2.3);
    assert_eq!(d.length_weight(384), 0.21);
    // 687 % 16 == 15 (other, band 3), 688 % 16 == 0 (other, band 4).
    assert_eq!(d.length_weight(687), 0.21);
    assert_eq!(d.length_weight(688), 0.5);
}

#[test]
fn mod16_stairs_low_band() {
    let d = det();
    // 169 % 16 == 9; its direct neighbours fall off the stair.
    assert_eq!(d.length_weight(169), 22.0);
    assert_eq!(d.length_weight(168), 0.57);
    assert_eq!(d.length_weight(170), 0.57);
    // Remainder 2 earns no preference in the low band (178 % 16 == 2).
    assert_eq!(d.length_weight(178), 0.57);
}

#[test]
fn mod16_stairs_middle_band() {
    let d = det();
    // Band 2 prefers both remainders: 265 % 16 == 9, 274 % 16 == 2.
    assert_eq!(d.length_weight(265), 38.5);
    assert_eq!(d.length_weight(274), 33.3);
    assert_eq!(d.length_weight(266), 2.3);
}

#[test]
fn mod16_stairs_high_band() {
    let d = det();
    // 386 % 16 == 2; remainder 9 (393) gets no preference up here.
    assert_eq!(d.length_weight(386), 77.0);
    assert_eq!(d.length_weight(385), 0.21);
    assert_eq!(d.length_weight(387), 0.21);
    assert_eq!(d.length_weight(393), 0.21);
}

#[test]
fn top_band_is_flat() {
    let d = det();
    // 697 % 16 == 9, 690 % 16 == 2, 689 % 16 == 1: all equal.
    assert_eq!(d.length_weight(697), 0.5);
    assert_eq!(d.length_weight(690), 0.5);
    assert_eq!(d.length_weight(689), 0.5);
}

// -------------------------------------------------------------------
// Entropy thresholds (§4.2, Fig 9)
// -------------------------------------------------------------------

#[test]
fn entropy_factor_straddles_experiment_thresholds() {
    let d = det();
    // Exp 2 draws payloads below 2 bits/byte, Exp 1 above 7: the factor
    // must be strictly increasing across both thresholds.
    assert!(d.entropy_factor(1.9) < d.entropy_factor(2.1));
    assert!(d.entropy_factor(6.9) < d.entropy_factor(7.1));
    // Monotone over the whole domain, in 0.1-bit steps.
    let mut prev = d.entropy_factor(0.0);
    for step in 1..=80 {
        let e = f64::from(step) * 0.1;
        let f = d.entropy_factor(e);
        assert!(f > prev, "entropy_factor not increasing at {e}");
        prev = f;
    }
}

#[test]
fn entropy_factor_clamps_outside_byte_range() {
    let d = det();
    // Below 0 and above 8 bits/byte the input clamps: the floor keeps
    // low-entropy replays possible, the ceiling caps at exactly 1.
    assert_eq!(d.entropy_factor(-1.0), d.entropy_factor(0.0));
    assert_eq!(d.entropy_factor(0.0), 0.12);
    assert_eq!(d.entropy_factor(8.0), 1.0);
    assert_eq!(d.entropy_factor(9.5), 1.0);
}

#[test]
fn store_probability_clamps_to_one() {
    // A pathological scale must clamp, not overflow past certainty.
    let cfg = PassiveConfig {
        scale: 1e9,
        ..PassiveConfig::default()
    };
    let d = PassiveDetector::new(cfg);
    assert_eq!(d.store_probability(&opaque(169)), 1.0);
}

// -------------------------------------------------------------------
// Plaintext-exemption prefix edges
// -------------------------------------------------------------------

#[test]
fn http_exemption_requires_trailing_space() {
    let d = det();
    let mut with_space = b"GET /".to_vec();
    with_space.resize(169, b'x');
    assert!(d.is_exempt_plaintext(&with_space));
    // "GETx" is not a recognizable method — one byte breaks the match.
    let mut without = b"GETx/".to_vec();
    without.resize(169, b'x');
    assert!(!d.is_exempt_plaintext(&without));
}

#[test]
fn tls_exemption_version_edges() {
    let d = det();
    let rec = |b1: u8, b2: u8| {
        let mut p = vec![0x16, b1, b2];
        p.resize(169, 0xAB);
        p
    };
    // Versions 3.0 through 3.4 are exempt; 3.5 and 2.x are not.
    assert!(d.is_exempt_plaintext(&rec(0x03, 0x00)));
    assert!(d.is_exempt_plaintext(&rec(0x03, 0x04)));
    assert!(!d.is_exempt_plaintext(&rec(0x03, 0x05)));
    assert!(!d.is_exempt_plaintext(&rec(0x02, 0x01)));
    // A 2-byte prefix is too short to be recognized as a TLS record.
    assert!(!d.is_exempt_plaintext(&[0x16, 0x03]));
}

#[test]
fn ssh_exemption_requires_full_banner_prefix() {
    let d = det();
    assert!(d.is_exempt_plaintext(b"SSH-2.0-OpenSSH"));
    assert!(!d.is_exempt_plaintext(b"SSH2.0-OpenSSH"));
}

#[test]
fn candidate_tracks_window_and_exemption() {
    let d = det();
    assert!(d.is_candidate(&opaque(161)));
    assert!(!d.is_candidate(&opaque(160)));
    let mut http = b"GET /a".to_vec();
    http.resize(402, b'x');
    assert!(
        !d.is_candidate(&http),
        "exempt payload counted as candidate"
    );
}

// -------------------------------------------------------------------
// NR1 / NR2 probe-length windows (Fig 2)
// -------------------------------------------------------------------

#[test]
fn nr1_length_window_edges() {
    // Each centre admits exactly centre ± 1.
    for &c in &NR1_CENTERS {
        assert!(is_nr1_len(c - 1), "centre {c} - 1");
        assert!(is_nr1_len(c), "centre {c}");
        assert!(is_nr1_len(c + 1), "centre {c} + 1");
    }
    // Gaps between trios are rejected: 10 sits between the 8 and 12
    // trios, 50 is the global maximum, 51 just past it.
    assert!(!is_nr1_len(6));
    assert!(!is_nr1_len(10));
    assert!(is_nr1_len(50));
    assert!(!is_nr1_len(51));
}

#[test]
fn nr1_draws_stay_in_window() {
    let mut rng = StdRng::seed_from_u64(2020);
    for _ in 0..2_000 {
        let len = nr1_len(&mut rng);
        assert!(is_nr1_len(len), "drawn NR1 length {len} out of window");
    }
}

#[test]
fn nr2_length_is_replay_eligible() {
    // NR2's fixed 221 bytes sits inside the low replay band — the GFW's
    // own probe lengths mimic storable first packets (221 % 16 == 13,
    // so it takes the unpreferred stair).
    let d = det();
    assert_eq!(NR2_LEN, 221);
    assert!(d.length_weight(NR2_LEN) > 0.0);
    assert_eq!(d.length_weight(NR2_LEN), 0.57);
}
