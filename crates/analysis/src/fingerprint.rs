//! Packet-level fingerprint extraction from captures (§3.4).
//!
//! Pulls out exactly the features the paper examined on the probers'
//! packets: TCP source ports of SYNs (Fig 5), TTL ranges and IP-ID
//! patterns of PSH/ACKs, TSval sequences of SYNs (Fig 6), and per-IP
//! probe counts (Fig 3 / Table 2).

use crate::stats::{top_k, Cdf};
use netsim::capture::Capture;
use netsim::packet::Ipv4;
use std::collections::HashMap;

/// Source-port summary of SYN packets arriving at a destination.
#[derive(Clone, Debug)]
pub struct PortProfile {
    /// All observed source ports.
    pub ports: Vec<u16>,
    /// Fraction inside the Linux ephemeral range 32768–60999.
    pub linux_range_frac: f64,
    /// Lowest observed port.
    pub min: u16,
    /// Highest observed port.
    pub max: u16,
}

/// Extract the Fig 5 source-port profile from SYNs addressed to `dst`.
pub fn port_profile(cap: &Capture, dst: Ipv4) -> Option<PortProfile> {
    let ports: Vec<u16> = cap
        .syns()
        .filter(|p| p.dst.0 == dst)
        .map(|p| p.src.1)
        .collect();
    if ports.is_empty() {
        return None;
    }
    let in_linux = ports
        .iter()
        .filter(|&&p| (32768..=60999).contains(&p))
        .count();
    Some(PortProfile {
        linux_range_frac: in_linux as f64 / ports.len() as f64,
        min: *ports.iter().min().unwrap(),
        max: *ports.iter().max().unwrap(),
        ports,
    })
}

/// CDF over the observed source ports.
pub fn port_cdf(profile: &PortProfile) -> Cdf {
    Cdf::new(profile.ports.iter().map(|&p| p as f64).collect())
}

/// TTL range of data-carrying packets from a set of sources to `dst`.
pub fn ttl_range(cap: &Capture, dst: Ipv4) -> Option<(u8, u8)> {
    let ttls: Vec<u8> = cap
        .data_packets()
        .filter(|p| p.dst.0 == dst)
        .map(|p| p.ttl)
        .collect();
    if ttls.is_empty() {
        return None;
    }
    Some((*ttls.iter().min().unwrap(), *ttls.iter().max().unwrap()))
}

/// A crude sequentiality score for IP IDs from one source: fraction of
/// consecutive packet pairs whose IDs differ by exactly 1. Random IDs
/// score ≈ 0 ("no clear pattern", §3.4); a counter scores ≈ 1.
pub fn ip_id_sequentiality(cap: &Capture, src: Ipv4) -> Option<f64> {
    let ids: Vec<u16> = cap
        .packets()
        .iter()
        .filter(|p| p.src.0 == src)
        .map(|p| p.ip_id)
        .collect();
    if ids.len() < 2 {
        return None;
    }
    let seq = ids
        .windows(2)
        .filter(|w| w[1].wrapping_sub(w[0]) == 1)
        .count();
    Some(seq as f64 / (ids.len() - 1) as f64)
}

/// Per-source-IP SYN counts toward `dst` — Fig 3's probes-per-address
/// distribution and Table 2's top talkers.
pub fn probes_per_ip(cap: &Capture, dst: Ipv4) -> HashMap<Ipv4, u64> {
    let mut counts = HashMap::new();
    for p in cap.syns().filter(|p| p.dst.0 == dst) {
        *counts.entry(p.src.0).or_insert(0u64) += 1;
    }
    counts
}

/// Table 2: the `k` most common prober addresses and their counts.
pub fn top_probers(cap: &Capture, dst: Ipv4, k: usize) -> Vec<(Ipv4, u64)> {
    top_k(cap.syns().filter(|p| p.dst.0 == dst).map(|p| p.src.0), k)
}

/// (seconds, TSval) observations from SYNs toward `dst`, for
/// [`crate::tsval::cluster`].
pub fn tsval_observations(cap: &Capture, dst: Ipv4) -> Vec<(f64, u32)> {
    cap.syns()
        .filter(|p| p.dst.0 == dst)
        .filter_map(|p| p.tsval.map(|v| (p.sent_at.as_secs_f64(), v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::conn::ConnId;
    use netsim::packet::{Packet, TcpFlags};
    use netsim::time::SimTime;

    fn pkt(
        src: (Ipv4, u16),
        dst: (Ipv4, u16),
        flags: TcpFlags,
        ip_id: u16,
        payload: &[u8],
    ) -> Packet {
        Packet {
            sent_at: SimTime::ZERO,
            src,
            dst,
            flags,
            seq: 0,
            ack: 0,
            window: 65535,
            ttl: 47,
            ip_id,
            tsval: Some(1234),
            payload: Bytes::copy_from_slice(payload),
            conn: ConnId(0),
            retx: false,
        }
    }

    #[test]
    fn port_profile_extraction() {
        let server = Ipv4::new(172, 0, 0, 1);
        let mut cap = Capture::all();
        for (i, port) in [40000u16, 45000, 50000, 1212, 65237].iter().enumerate() {
            cap.observe(&pkt(
                (Ipv4::new(110, 0, 0, i as u8), *port),
                (server, 8388),
                TcpFlags::SYN,
                i as u16,
                b"",
            ));
        }
        let prof = port_profile(&cap, server).unwrap();
        assert_eq!(prof.ports.len(), 5);
        assert_eq!(prof.min, 1212);
        assert_eq!(prof.max, 65237);
        assert!((prof.linux_range_frac - 0.6).abs() < 1e-9);
    }

    #[test]
    fn ip_id_sequentiality_scores() {
        let src = Ipv4::new(110, 0, 0, 9);
        let dst = (Ipv4::new(172, 0, 0, 1), 8388);
        let mut seq_cap = Capture::all();
        for i in 0..10u16 {
            seq_cap.observe(&pkt((src, 5000), dst, TcpFlags::PSH_ACK, 100 + i, b"x"));
        }
        assert_eq!(ip_id_sequentiality(&seq_cap, src), Some(1.0));

        let mut rnd_cap = Capture::all();
        for &id in &[9u16, 60000, 3, 40001, 22222, 7] {
            rnd_cap.observe(&pkt((src, 5000), dst, TcpFlags::PSH_ACK, id, b"x"));
        }
        assert_eq!(ip_id_sequentiality(&rnd_cap, src), Some(0.0));
    }

    #[test]
    fn probe_counting() {
        let server = Ipv4::new(172, 0, 0, 1);
        let a = Ipv4::new(175, 42, 1, 21);
        let b = Ipv4::new(223, 166, 74, 207);
        let mut cap = Capture::all();
        for _ in 0..44 {
            cap.observe(&pkt((a, 40000), (server, 8388), TcpFlags::SYN, 0, b""));
        }
        for _ in 0..38 {
            cap.observe(&pkt((b, 40001), (server, 8388), TcpFlags::SYN, 0, b""));
        }
        let top = top_probers(&cap, server, 2);
        assert_eq!(top, vec![(a, 44), (b, 38)]);
        assert_eq!(probes_per_ip(&cap, server)[&b], 38);
    }

    #[test]
    fn empty_capture_gives_none() {
        let cap = Capture::all();
        assert!(port_profile(&cap, Ipv4::new(1, 1, 1, 1)).is_none());
        assert!(ttl_range(&cap, Ipv4::new(1, 1, 1, 1)).is_none());
    }
}
