//! Empirical distributions: CDFs, histograms, and top-k counting — the
//! presentation layer of every figure in the paper's evaluation.

use std::collections::HashMap;
use std::hash::Hash;

/// Empirical cumulative distribution over `f64` samples.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples.
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0.0–1.0).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("empty CDF")
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("empty CDF")
    }

    /// Evenly spaced (x, F(x)) points for plotting/printing.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1).max(1) as f64;
                let x = self.quantile(q);
                (x, self.at(x))
            })
            .collect()
    }
}

/// Integer-bucketed histogram.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: HashMap<i64, u64>,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Add one observation of `value`.
    pub fn add(&mut self, value: i64) {
        *self.counts.entry(value).or_insert(0) += 1;
    }

    /// Count at `value`.
    pub fn count(&self, value: i64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// (value, count) pairs sorted by value.
    pub fn sorted(&self) -> Vec<(i64, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable();
        v
    }

    /// (value, count) pairs sorted by descending count (ties by value).
    pub fn by_count(&self) -> Vec<(i64, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by_key(|&(k, c)| (std::cmp::Reverse(c), k));
        v
    }
}

/// Count occurrences of arbitrary keys and report the top-k — Table 2's
/// "most common prober IP addresses" and Table 3's AS counts.
pub fn top_k<T: Eq + Hash + Clone + Ord>(
    items: impl IntoIterator<Item = T>,
    k: usize,
) -> Vec<(T, u64)> {
    let mut counts: HashMap<T, u64> = HashMap::new();
    for it in items {
        *counts.entry(it).or_insert(0) += 1;
    }
    let mut v: Vec<_> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basic() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(2.0), 0.5);
        assert_eq!(c.at(10.0), 1.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_handles_duplicates() {
        let c = Cdf::new(vec![5.0; 10]);
        assert_eq!(c.at(4.9), 0.0);
        assert_eq!(c.at(5.0), 1.0);
    }

    #[test]
    fn cdf_curve_monotonic() {
        let c = Cdf::new((0..100).map(|i| (i * i) as f64).collect());
        let pts = c.curve(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_counts() {
        let mut h = Histogram::new();
        for v in [8, 8, 8, 12, 221, 221] {
            h.add(v);
        }
        assert_eq!(h.count(8), 3);
        assert_eq!(h.count(221), 2);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 6);
        assert_eq!(h.sorted(), vec![(8, 3), (12, 1), (221, 2)]);
        assert_eq!(h.by_count()[0], (8, 3));
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let items = vec!["a", "b", "b", "c", "c", "c"];
        let top = top_k(items, 2);
        assert_eq!(top, vec![("c", 3), ("b", 2)]);
    }

    #[test]
    #[should_panic(expected = "quantile of empty CDF")]
    fn quantile_of_empty_panics() {
        Cdf::new(vec![]).quantile(0.5);
    }
}
