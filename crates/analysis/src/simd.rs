//! AVX2 fast path for the first-payload byte histogram.
//!
//! This module is the crate's only home for `unsafe` code, mirroring
//! the dispatch discipline of `sscrypto`: detection is cached per
//! process, honours the same `GFWSIM_NO_HWCRYPTO` override, and the
//! portable path in [`crate::entropy`] stays compiled as the
//! differential oracle. Only the *integer* histogram is vectorized —
//! the `c·log2(c)` accumulation stays scalar and sequential in
//! `entropy.rs`, so the floating-point summation order (and hence every
//! entropy score and golden) is bit-identical on both paths.

#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// Whether the AVX2 histogram path is usable: cached CPU probe, masked
/// by `GFWSIM_NO_HWCRYPTO` (set and neither empty nor `0` disables it,
/// matching `sscrypto::hw`).
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        let disabled = std::env::var("GFWSIM_NO_HWCRYPTO").is_ok_and(|v| !v.is_empty() && v != "0");
        !disabled && std::arch::is_x86_feature_detected!("avx2")
    })
}

/// Non-x86_64 targets never take the SIMD path.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn avx2_enabled() -> bool {
    false
}

/// Fill `counts` with the byte histogram of `data` on the AVX2 path.
///
/// Callers must gate on [`avx2_enabled`].
#[cfg(target_arch = "x86_64")]
pub(crate) fn fill_histogram(data: &[u8], counts: &mut [u32; 256]) {
    // SAFETY: callers gate on `avx2_enabled()`, which only reports true
    // after `is_x86_feature_detected!("avx2")`.
    unsafe { hist_avx2(data, counts) }
}

/// Four interleaved sub-histograms fed by 8-byte loads (splitting the
/// per-byte dependency on one counter array across four), merged with
/// 8-wide AVX2 adds. Counts are integers, so the result is identical
/// to the scalar histogram no matter how the counting is batched.
///
/// # Safety
///
/// CPU must support AVX2.
// SAFETY: callers hold the AVX2 precondition; the merge loop's
// unaligned loads/stores stay inside the fixed-size `sub` and `counts`
// arrays (offsets ≤ 248).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hist_avx2(data: &[u8], counts: &mut [u32; 256]) {
    use core::arch::x86_64::*;

    let mut sub = [[0u32; 256]; 4];
    let mut chunks = data.chunks_exact(8);
    for ch in chunks.by_ref() {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(ch);
        let v = u64::from_le_bytes(raw);
        sub[0][(v & 0xff) as usize] += 1;
        sub[1][((v >> 8) & 0xff) as usize] += 1;
        sub[2][((v >> 16) & 0xff) as usize] += 1;
        sub[3][((v >> 24) & 0xff) as usize] += 1;
        sub[0][((v >> 32) & 0xff) as usize] += 1;
        sub[1][((v >> 40) & 0xff) as usize] += 1;
        sub[2][((v >> 48) & 0xff) as usize] += 1;
        sub[3][(v >> 56) as usize] += 1;
    }
    for &b in chunks.remainder() {
        sub[0][b as usize] += 1;
    }
    for i in 0..32 {
        let off = i * 8;
        let acc = _mm256_add_epi32(
            _mm256_add_epi32(
                _mm256_loadu_si256(sub[0].as_ptr().add(off).cast()),
                _mm256_loadu_si256(sub[1].as_ptr().add(off).cast()),
            ),
            _mm256_add_epi32(
                _mm256_loadu_si256(sub[2].as_ptr().add(off).cast()),
                _mm256_loadu_si256(sub[3].as_ptr().add(off).cast()),
            ),
        );
        _mm256_storeu_si256(counts.as_mut_ptr().add(off).cast(), acc);
    }
}
