//! # analysis — measurement analysis toolkit
//!
//! The paper's observations (Figs 2–9, Tables 2–3) are statistical
//! summaries of packet captures. This crate holds the analysis
//! machinery: Shannon entropy, empirical CDFs and histograms, top-k
//! counting, TCP-timestamp sequence clustering (the §3.4 side channel
//! that exposes the probers' centralized processes), prober-IP set
//! overlap (Fig 4), and the autonomous-system attribution table shared
//! with the GFW model's prober fleet.

// `deny` rather than `forbid`: the `simd` module carries the crate's
// audited unsafe sites (see `[unsafe-budget]` in lint-baseline.toml);
// everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod entropy;
pub mod fingerprint;
pub mod overlap;
pub(crate) mod simd;
pub mod stats;
pub mod tsval;

pub use entropy::shannon_entropy;
pub use stats::{Cdf, Histogram};
