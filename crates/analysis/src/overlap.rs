//! Set-overlap analysis (Fig 4).
//!
//! The paper intersects its 12,300 prober addresses with two earlier
//! datasets (Ensafi et al. 2015, ~22,000 addresses; Dunna et al. 2018,
//! 934 addresses) and finds only slight overlap — evidence of high
//! churn in the prober pool.

use std::collections::HashSet;
use std::hash::Hash;

/// Pairwise and triple intersection sizes of three sets, i.e. the seven
/// regions of a three-set Venn diagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Venn3 {
    /// |A| only (excluding any intersection).
    pub only_a: usize,
    /// |B| only.
    pub only_b: usize,
    /// |C| only.
    pub only_c: usize,
    /// |A∩B| excluding C.
    pub ab: usize,
    /// |A∩C| excluding B.
    pub ac: usize,
    /// |B∩C| excluding A.
    pub bc: usize,
    /// |A∩B∩C|.
    pub abc: usize,
}

impl Venn3 {
    /// Total size of A.
    pub fn a_total(&self) -> usize {
        self.only_a + self.ab + self.ac + self.abc
    }

    /// Total size of B.
    pub fn b_total(&self) -> usize {
        self.only_b + self.ab + self.bc + self.abc
    }

    /// Total size of C.
    pub fn c_total(&self) -> usize {
        self.only_c + self.ac + self.bc + self.abc
    }
}

/// Compute the Venn regions of three sets.
pub fn venn3<T: Eq + Hash + Clone>(a: &HashSet<T>, b: &HashSet<T>, c: &HashSet<T>) -> Venn3 {
    let mut v = Venn3 {
        only_a: 0,
        only_b: 0,
        only_c: 0,
        ab: 0,
        ac: 0,
        bc: 0,
        abc: 0,
    };
    let universe: HashSet<&T> = a.iter().chain(b.iter()).chain(c.iter()).collect();
    for x in universe {
        match (a.contains(x), b.contains(x), c.contains(x)) {
            (true, false, false) => v.only_a += 1,
            (false, true, false) => v.only_b += 1,
            (false, false, true) => v.only_c += 1,
            (true, true, false) => v.ab += 1,
            (true, false, true) => v.ac += 1,
            (false, true, true) => v.bc += 1,
            (true, true, true) => v.abc += 1,
            (false, false, false) => unreachable!(),
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> HashSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn venn_of_disjoint_sets() {
        let v = venn3(&set(&[1, 2]), &set(&[3]), &set(&[4, 5, 6]));
        assert_eq!(
            v,
            Venn3 {
                only_a: 2,
                only_b: 1,
                only_c: 3,
                ab: 0,
                ac: 0,
                bc: 0,
                abc: 0
            }
        );
    }

    #[test]
    fn venn_with_overlaps() {
        // A = {1,2,3,7}, B = {2,3,4,7}, C = {3,5,7}
        let v = venn3(&set(&[1, 2, 3, 7]), &set(&[2, 3, 4, 7]), &set(&[3, 5, 7]));
        assert_eq!(v.only_a, 1); // {1}
        assert_eq!(v.only_b, 1); // {4}
        assert_eq!(v.only_c, 1); // {5}
        assert_eq!(v.ab, 1); // {2}
        assert_eq!(v.ac, 0);
        assert_eq!(v.bc, 0);
        assert_eq!(v.abc, 2); // {3,7}
        assert_eq!(v.a_total(), 4);
        assert_eq!(v.b_total(), 4);
        assert_eq!(v.c_total(), 3);
    }

    #[test]
    fn fig4_shape_small_overlap() {
        // The paper's shape: three large sets with intersections that
        // are tiny relative to set sizes.
        let a: HashSet<u32> = (0..22_000).collect();
        let b: HashSet<u32> = (21_900..22_834).collect(); // 934, overlap 100
        let c: HashSet<u32> = (21_950..34_250).collect(); // 12,300
        let v = venn3(&a, &b, &c);
        assert_eq!(v.a_total(), 22_000);
        assert_eq!(v.b_total(), 934);
        assert_eq!(v.c_total(), 12_300);
        let a_c_overlap = v.ac + v.abc;
        assert!(a_c_overlap < 100, "{a_c_overlap}");
    }
}
