//! TCP-timestamp sequence clustering (§3.4, Fig 6).
//!
//! Although the probers use thousands of source addresses, their TSvals
//! fall on a handful of straight lines in (time, TSval) space — the
//! signature of a small number of centralized processes. This module
//! recovers those lines from a capture: an online clustering that
//! assigns each observation to a process whose extrapolated counter
//! value it matches, handling the 2^32 wraparound the paper observed.

/// One recovered process: a line in (time, TSval) space.
#[derive(Clone, Debug)]
pub struct TsProcess {
    /// Observations assigned to this process, as (seconds, tsval).
    pub points: Vec<(f64, u32)>,
}

impl TsProcess {
    /// Estimated counter rate in Hz (slope of the line), from the first
    /// and last points with wraparound unrolled.
    pub fn rate_hz(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let (t0, v0) = self.points[0];
        let (t1, v1) = *self.points.last().unwrap();
        if t1 <= t0 {
            return 0.0;
        }
        let mut delta = v1 as i64 - v0 as i64;
        // Unroll at most a few wraps (observation spans are far shorter
        // than a wrap period at these rates).
        while delta < 0 {
            delta += 1i64 << 32;
        }
        delta as f64 / (t1 - t0)
    }

    fn predict(&self, t: f64) -> f64 {
        let (t0, v0) = self.points[0];
        let rate = if self.points.len() < 2 {
            // A single point can extend in either direction; use a broad
            // prior covering 250–1000 Hz by predicting with 625 Hz and a
            // wide tolerance at assignment time.
            625.0
        } else {
            self.rate_hz()
        };
        v0 as f64 + rate * (t - t0)
    }
}

/// Cluster (seconds, tsval) observations into processes.
///
/// `tolerance` is the allowed |observed − predicted| in counter ticks
/// (mod 2^32). The paper's sequences are tight lines, so a few thousand
/// ticks of slack absorbs clock jitter without merging distinct
/// processes whose offsets differ by millions.
pub fn cluster(mut obs: Vec<(f64, u32)>, tolerance: f64) -> Vec<TsProcess> {
    obs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut procs: Vec<TsProcess> = Vec::new();
    for (t, v) in obs {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in procs.iter().enumerate() {
            let pred = p.predict(t);
            // Distance modulo 2^32 (handles wraparound).
            let m = 2f64.powi(32);
            let d = ((v as f64 - pred).rem_euclid(m)).min((pred - v as f64).rem_euclid(m));
            let tol = if p.points.len() < 2 {
                // Single-point processes get slack proportional to the
                // gap: rates are within [250, 1000] Hz, so the counter
                // can advance between 250·Δt and 1000·Δt ticks.
                let dt = (t - p.points[0].0).abs();
                400.0 * dt + tolerance
            } else {
                tolerance
            };
            if d <= tol && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, _)) => procs[i].points.push((t, v)),
            None => procs.push(TsProcess {
                points: vec![(t, v)],
            }),
        }
    }
    procs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(rate: f64, offset: u64, times: &[f64]) -> Vec<(f64, u32)> {
        times
            .iter()
            .map(|&t| (t, (offset as f64 + rate * t) as u64 as u32))
            .collect()
    }

    #[test]
    fn recovers_two_processes() {
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 60.0).collect();
        let mut obs = synth(250.0, 10_000, &times);
        obs.extend(synth(1000.0, 3_000_000_000, &times));
        let procs = cluster(obs, 50.0);
        assert_eq!(procs.len(), 2, "found {} processes", procs.len());
        let mut rates: Vec<f64> = procs.iter().map(|p| p.rate_hz()).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((rates[0] - 250.0).abs() < 2.0, "{rates:?}");
        assert!((rates[1] - 1000.0).abs() < 5.0, "{rates:?}");
    }

    #[test]
    fn handles_wraparound() {
        // A 250 Hz sequence that crosses 2^32 mid-observation (Fig 6
        // shows two such wraps).
        let start = u64::from(u32::MAX) - 5_000;
        let times: Vec<f64> = (0..200).map(|i| i as f64 * 10.0).collect();
        let obs = synth(250.0, start, &times);
        let procs = cluster(obs, 50.0);
        assert_eq!(procs.len(), 1, "wrap split the sequence");
        assert!((procs[0].rate_hz() - 250.0).abs() < 2.0);
    }

    #[test]
    fn seven_processes_like_fig6() {
        // Six 250 Hz processes at distinct offsets plus one small
        // 1000 Hz cluster — at least seven recovered, as in the paper.
        let times: Vec<f64> = (0..300).map(|i| i as f64 * 120.0).collect();
        let mut obs = Vec::new();
        for k in 0..6u64 {
            obs.extend(synth(250.0, k * 500_000_000, &times));
        }
        let small_times: Vec<f64> = (0..22).map(|i| 5_000.0 + i as f64 * 0.16).collect();
        obs.extend(synth(1000.0, 4_100_000_000, &small_times));
        let procs = cluster(obs, 50.0);
        assert_eq!(procs.len(), 7, "found {}", procs.len());
        let thousands = procs
            .iter()
            .filter(|p| p.points.len() >= 2 && (p.rate_hz() - 1000.0).abs() < 50.0)
            .count();
        assert_eq!(thousands, 1);
    }

    #[test]
    fn single_point_is_its_own_process() {
        let procs = cluster(vec![(0.0, 42)], 10.0);
        assert_eq!(procs.len(), 1);
        assert_eq!(procs[0].rate_hz(), 0.0);
    }
}
