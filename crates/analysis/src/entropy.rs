//! Shannon entropy of byte payloads.
//!
//! The GFW's passive detector uses the per-byte entropy of the first
//! data packet as one of its two features (§4.2, Fig 9): encrypted
//! Shadowsocks payloads sit near 8 bits/byte (for long packets), while
//! plaintext protocols sit far lower.

/// Per-byte Shannon entropy of `data`, in bits (0.0–8.0). Empty input
/// has entropy 0.
pub fn shannon_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// The maximum achievable per-byte entropy for a payload of `len` bytes:
/// `min(8, log2(len))`. Short packets cannot reach 8 bits/byte, which
/// matters when interpreting entropy thresholds on small probes.
pub fn max_entropy_for_len(len: usize) -> f64 {
    if len <= 1 {
        return 0.0;
    }
    (len as f64).log2().min(8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_has_zero_entropy() {
        assert_eq!(shannon_entropy(&[0x41; 1000]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn uniform_bytes_have_eight_bits() {
        let data: Vec<u8> = (0..=255u8).collect();
        let e = shannon_entropy(&data);
        assert!((e - 8.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn two_symbol_alphabet_has_one_bit() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        let e = shannon_entropy(&data);
        assert!((e - 1.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn english_text_is_mid_entropy() {
        let text = b"The quick brown fox jumps over the lazy dog. The quick brown fox.";
        let e = shannon_entropy(text);
        assert!(e > 3.0 && e < 5.0, "{e}");
    }

    #[test]
    fn random_looking_data_is_high_entropy() {
        // A long LCG stream approximates uniform bytes.
        let mut x: u64 = 12345;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let e = shannon_entropy(&data);
        assert!(e > 7.9, "{e}");
    }

    #[test]
    fn max_entropy_bound() {
        assert_eq!(max_entropy_for_len(0), 0.0);
        assert_eq!(max_entropy_for_len(1), 0.0);
        assert!((max_entropy_for_len(2) - 1.0).abs() < 1e-9);
        assert_eq!(max_entropy_for_len(1 << 20), 8.0);
        // A 16-byte packet can reach at most 4 bits/byte.
        assert!((max_entropy_for_len(16) - 4.0).abs() < 1e-9);
    }
}
