//! Shannon entropy of byte payloads.
//!
//! The GFW's passive detector uses the per-byte entropy of the first
//! data packet as one of its two features (§4.2, Fig 9): encrypted
//! Shadowsocks payloads sit near 8 bits/byte (for long packets), while
//! plaintext protocols sit far lower.

use std::sync::OnceLock;

/// Largest count with a precomputed `c·log2(c)` entry — covers every
/// first-payload the detector scores (one MSS, 1448 bytes) with room
/// to spare.
const XLOGX_TABLE_LEN: usize = 2049;

fn xlogx_table() -> &'static [f64; XLOGX_TABLE_LEN] {
    static TABLE: OnceLock<[f64; XLOGX_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f64; XLOGX_TABLE_LEN];
        for (c, slot) in t.iter_mut().enumerate().skip(2) {
            *slot = c as f64 * (c as f64).log2();
        }
        t
    })
}

/// `c·log2(c)` with the table fast path (0 for c ≤ 1).
#[inline]
fn xlogx(c: usize) -> f64 {
    if c < XLOGX_TABLE_LEN {
        xlogx_table()[c]
    } else {
        c as f64 * (c as f64).log2()
    }
}

/// Per-byte Shannon entropy of `data`, in bits (0.0–8.0). Empty input
/// has entropy 0.
///
/// Computed in one pass over the histogram as
/// `H = log2(n) − (1/n)·Σ c·log2(c)`, with the `c·log2(c)` terms read
/// from a process-wide precomputed table — no per-symbol division or
/// logarithm, which is what makes first-payload scoring cheap enough
/// to run on every cross-border data packet.
pub fn shannon_entropy(data: &[u8]) -> f64 {
    entropy_impl(data, crate::simd::avx2_enabled())
}

/// Portable-only twin of [`shannon_entropy`]: the differential oracle
/// for the AVX2 histogram path. Bit-identical to the default entry
/// point — the floating-point accumulation is shared and sequential;
/// only integer byte counting differs between the paths.
#[doc(hidden)]
pub fn shannon_entropy_scalar(data: &[u8]) -> f64 {
    entropy_impl(data, false)
}

/// Byte histogram of `data` via four interleaved sub-histograms
/// (breaking the per-byte dependency on a single counter array), merged
/// into `counts`. The portable counterpart of `simd::fill_histogram`.
fn fill_histogram_portable(data: &[u8], counts: &mut [u32; 256]) {
    let mut sub = [[0u32; 256]; 4];
    let mut chunks = data.chunks_exact(4);
    for quad in chunks.by_ref() {
        sub[0][quad[0] as usize] += 1;
        sub[1][quad[1] as usize] += 1;
        sub[2][quad[2] as usize] += 1;
        sub[3][quad[3] as usize] += 1;
    }
    for &b in chunks.remainder() {
        sub[0][b as usize] += 1;
    }
    let [s0, s1, s2, s3] = sub;
    for (slot, (((&c0, &c1), &c2), &c3)) in
        counts.iter_mut().zip(s0.iter().zip(&s1).zip(&s2).zip(&s3))
    {
        *slot = c0 + c1 + c2 + c3;
    }
}

fn entropy_impl(data: &[u8], hw: bool) -> f64 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let mut distinct = 0u32;
    let mut sum_xlogx = 0.0f64;
    if n < 1024 {
        // Short payloads: a single histogram. Zero-initializing four
        // interleaved sub-histograms (4 KiB) costs more than it saves
        // below roughly a kilobyte of input.
        let mut counts = [0u32; 256];
        for &b in data {
            counts[b as usize] += 1;
        }
        for &c in counts.iter() {
            if c > 0 {
                distinct += 1;
                sum_xlogx += xlogx(c as usize);
            }
        }
    } else {
        // Long payloads: interleaved sub-histograms — AVX2-merged when
        // the CPU allows it, portable otherwise. Only the integer
        // counting is dispatched; the xlogx accumulation below is the
        // same sequential loop on both paths, so entropy scores are
        // bit-identical (see `crate::simd`).
        let mut counts = [0u32; 256];
        #[cfg(target_arch = "x86_64")]
        if hw {
            crate::simd::fill_histogram(data, &mut counts);
        } else {
            fill_histogram_portable(data, &mut counts);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = hw;
            fill_histogram_portable(data, &mut counts);
        }
        for &c in counts.iter() {
            if c > 0 {
                distinct += 1;
                sum_xlogx += xlogx(c as usize);
            }
        }
    }
    // A single-symbol payload is exactly zero; the closed form would
    // only reproduce that up to rounding.
    if distinct <= 1 {
        return 0.0;
    }
    let n = n as f64;
    (n.log2() - sum_xlogx / n).max(0.0)
}

/// The maximum achievable per-byte entropy for a payload of `len` bytes:
/// `min(8, log2(len))`. Short packets cannot reach 8 bits/byte, which
/// matters when interpreting entropy thresholds on small probes.
pub fn max_entropy_for_len(len: usize) -> f64 {
    if len <= 1 {
        return 0.0;
    }
    (len as f64).log2().min(8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_has_zero_entropy() {
        assert_eq!(shannon_entropy(&[0x41; 1000]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn uniform_bytes_have_eight_bits() {
        let data: Vec<u8> = (0..=255u8).collect();
        let e = shannon_entropy(&data);
        assert!((e - 8.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn two_symbol_alphabet_has_one_bit() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        let e = shannon_entropy(&data);
        assert!((e - 1.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn english_text_is_mid_entropy() {
        let text = b"The quick brown fox jumps over the lazy dog. The quick brown fox.";
        let e = shannon_entropy(text);
        assert!(e > 3.0 && e < 5.0, "{e}");
    }

    #[test]
    fn random_looking_data_is_high_entropy() {
        // A long LCG stream approximates uniform bytes.
        let mut x: u64 = 12345;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let e = shannon_entropy(&data);
        assert!(e > 7.9, "{e}");
    }

    #[test]
    fn hw_histogram_matches_scalar_bit_for_bit() {
        // Sizes straddling the 1024-byte histogram switch and the
        // 8-byte SIMD load width; LCG data plus skewed data.
        let mut x: u64 = 99;
        let data: Vec<u8> = (0..5000)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if i % 3 == 0 {
                    0x41
                } else {
                    (x >> 33) as u8
                }
            })
            .collect();
        for len in [0, 1, 7, 1023, 1024, 1025, 1031, 2048, 4096, 5000] {
            let d = &data[..len];
            // Exact equality: the accumulation order is shared, only
            // integer counting differs.
            assert_eq!(
                shannon_entropy(d).to_bits(),
                shannon_entropy_scalar(d).to_bits(),
                "len={len}"
            );
        }
    }

    #[test]
    fn max_entropy_bound() {
        assert_eq!(max_entropy_for_len(0), 0.0);
        assert_eq!(max_entropy_for_len(1), 0.0);
        assert!((max_entropy_for_len(2) - 1.0).abs() < 1e-9);
        assert_eq!(max_entropy_for_len(1 << 20), 8.0);
        // A 16-byte packet can reach at most 4 bits/byte.
        assert!((max_entropy_for_len(16) - 4.0).abs() < 1e-9);
    }
}
