//! Autonomous-system attribution for prober addresses.
//!
//! Table 3 of the paper counts unique prober IPs per AS. We model each
//! AS as a set of /16 prefixes with a weight proportional to its share
//! of the 12,300 observed prober addresses. The same table drives IP
//! generation in the GFW model's prober fleet and attribution here, so
//! regenerating Table 3 exercises a real lookup, not a tautology.

use netsim::packet::Ipv4;

/// One autonomous system: number, name, /16 prefixes, and the unique-IP
/// count the paper observed (Table 3).
#[derive(Clone, Copy, Debug)]
pub struct AsEntry {
    /// AS number.
    pub asn: u32,
    /// Short name.
    pub name: &'static str,
    /// /16 prefixes (first two octets) belonging to this AS in our
    /// address plan.
    pub prefixes: &'static [[u8; 2]],
    /// Unique prober IPs the paper attributed to this AS.
    pub paper_count: u32,
}

/// The AS inventory of Table 3. Prefixes are chosen from each AS's real
/// allocations where well-known (e.g. 175.42/16 for CHINA169; the
/// paper's Table 2 lists prober 175.42.1.21), otherwise representative.
pub const AS_TABLE: &[AsEntry] = &[
    AsEntry {
        asn: 4837,
        name: "CHINA169-BACKBONE CNCGROUP",
        prefixes: &[[175, 42], [218, 104], [125, 32], [60, 24], [113, 128]],
        paper_count: 6262,
    },
    AsEntry {
        asn: 4134,
        name: "CHINANET-BACKBONE No.31,Jin-rong Street",
        prefixes: &[[223, 166], [116, 252], [112, 80], [124, 235], [221, 213]],
        paper_count: 5188,
    },
    AsEntry {
        asn: 17622,
        name: "CNCGROUP-GZ China Unicom Guangzhou",
        prefixes: &[[58, 248], [119, 131]],
        paper_count: 315,
    },
    AsEntry {
        asn: 17621,
        name: "CNCGROUP-SH China Unicom Shanghai",
        prefixes: &[[112, 64], [140, 206]],
        paper_count: 263,
    },
    AsEntry {
        asn: 17816,
        name: "CHINA169-GZ China Unicom IP network",
        prefixes: &[[113, 64], [119, 121]],
        paper_count: 104,
    },
    AsEntry {
        asn: 4847,
        name: "CNIX-AP China Networks Inter-Exchange",
        prefixes: &[[218, 245]],
        paper_count: 101,
    },
    AsEntry {
        asn: 58563,
        name: "CHINANET-HUBEI-IDC",
        prefixes: &[[27, 17]],
        paper_count: 44,
    },
    AsEntry {
        asn: 17638,
        name: "CHINATELECOM-TJ Tianjin",
        prefixes: &[[117, 8]],
        paper_count: 17,
    },
    AsEntry {
        asn: 9808,
        name: "CMNET-GD Guangdong Mobile",
        prefixes: &[[120, 196]],
        paper_count: 2,
    },
    AsEntry {
        asn: 4812,
        name: "CHINANET-SH-AP China Telecom Shanghai",
        prefixes: &[[116, 224]],
        paper_count: 1,
    },
    AsEntry {
        asn: 24400,
        name: "CMNET-SH Shanghai Mobile",
        prefixes: &[[117, 184]],
        paper_count: 1,
    },
    AsEntry {
        asn: 56046,
        name: "CMNET-JIANGSU Jiangsu Mobile",
        prefixes: &[[120, 195]],
        paper_count: 1,
    },
    AsEntry {
        asn: 56047,
        name: "CMNET-HUNAN Hunan Mobile",
        prefixes: &[[120, 227]],
        paper_count: 1,
    },
];

/// Total unique prober IPs in Table 3.
pub fn paper_total() -> u32 {
    AS_TABLE.iter().map(|e| e.paper_count).sum()
}

/// Attribute an address to an AS by /16 prefix.
pub fn lookup(addr: Ipv4) -> Option<&'static AsEntry> {
    let p = addr.prefix16();
    AS_TABLE.iter().find(|e| e.prefixes.contains(&p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_total_is_12300() {
        // 6262+5188+315+263+104+101+44+17+2+1+1+1+1 = 12300 unique IPs
        // (§3.3: "12,300 unique source IP addresses").
        assert_eq!(paper_total(), 12_300);
    }

    #[test]
    fn lookup_finds_known_prefix() {
        // Table 2's most common prober, 175.42.1.21, is CHINA169.
        let e = lookup(Ipv4::new(175, 42, 1, 21)).unwrap();
        assert_eq!(e.asn, 4837);
        let e = lookup(Ipv4::new(223, 166, 74, 207)).unwrap();
        assert_eq!(e.asn, 4134);
    }

    #[test]
    fn lookup_misses_foreign_address() {
        assert!(lookup(Ipv4::new(8, 8, 8, 8)).is_none());
    }

    #[test]
    fn prefixes_are_unique_across_ases() {
        let mut all: Vec<[u8; 2]> = AS_TABLE
            .iter()
            .flat_map(|e| e.prefixes.iter().copied())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "a prefix is claimed by two ASes");
    }

    #[test]
    fn dominant_ases_match_paper_ordering() {
        // AS4837 and AS4134 dominate, in that order (§3.3).
        assert!(AS_TABLE[0].paper_count > AS_TABLE[1].paper_count);
        assert_eq!(AS_TABLE[0].asn, 4837);
        assert_eq!(AS_TABLE[1].asn, 4134);
    }
}
