//! # defense — circumvention defenses (§7)
//!
//! Both halves of the paper's countermeasure story:
//!
//! * **Against traffic analysis** ([`brdgrd`]): server-side receive-
//!   window clamping that forces the client's Shadowsocks handshake
//!   into small TCP segments, breaking the GFW's first-packet length
//!   feature (§7.1, Fig 11). Plus the client-side alternative the
//!   OutlineVPN developers shipped after disclosure: merging header and
//!   data so the first-packet length is variable ([`shaping`]).
//! * **Against active probing** ([`timing_filter`], [`harden`]): proper
//!   AEAD-only authentication, a nonce *and timestamp* replay filter
//!   that stays sound across restarts (the VMess-style fix for the
//!   §3.5/§7.2 asymmetry), and consistent server reactions ("read
//!   forever on error").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brdgrd;
pub mod shaping;
pub mod timing_filter;

pub use brdgrd::Brdgrd;
pub use timing_filter::{TimedReplayFilter, VerdictReason};

use shadowsocks::profile::{ErrorReaction, Profile};

/// Apply the paper's §7.2 hardening advice to a behaviour profile:
/// never reveal errors (read forever) and keep a replay filter.
pub fn harden(mut profile: Profile) -> Profile {
    profile.error_reaction = ErrorReaction::KeepReading;
    profile.replay_filter = true;
    profile.fin_at_exact_header = false;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harden_silences_and_filters() {
        let h = harden(Profile::OUTLINE_1_0_6);
        assert_eq!(h.error_reaction, ErrorReaction::KeepReading);
        assert!(h.replay_filter);
        assert!(!h.fin_at_exact_header);
    }

    #[test]
    fn hardened_profile_is_opaque_to_inference() {
        use probesim::{infer, EngineOracle};
        use shadowsocks::ServerConfig;
        use sscrypto::method::Method;
        let config = ServerConfig::new(Method::Aes256Gcm, "pw", harden(Profile::LIBEV_OLD));
        let mut oracle = EngineOracle::new(config, 5);
        let inf = infer(&mut oracle, 40);
        assert!(!inf.shadowsocks_like, "{inf:?}");
    }
}
