//! brdgrd (bridge guard) — §7.1's traffic-analysis mitigation.
//!
//! Originally built to disrupt the GFW's Tor bridge detection by
//! forcing TCP reassembly, repurposed by the paper to shape client
//! packet sizes: the server announces a tiny receive window during the
//! handshake, so the client's first flight arrives as several small
//! segments and the GFW's first-packet length feature never sees a
//! Shadowsocks-shaped packet.
//!
//! The paper's caveats (§7.1) are encoded here too: the window is drawn
//! from a range (itself fingerprintable), it is "uncommonly small,
//! unlike any real TCP implementation", and windows smaller than a
//! complete target specification break some server implementations.

use netsim::host::WindowShaper;
use netsim::packet::Ipv4;
use netsim::sim::Simulator;

/// A brdgrd instance guarding one server host.
#[derive(Clone, Copy, Debug)]
pub struct Brdgrd {
    /// Window sizes are drawn uniformly from this inclusive range.
    /// brdgrd's default rewrites to a few tens of bytes.
    pub window_range: (u16, u16),
    /// Stop clamping after this many client bytes (brdgrd only rewrites
    /// early in the connection).
    pub restore_after_bytes: usize,
}

impl Default for Brdgrd {
    fn default() -> Self {
        Brdgrd {
            window_range: (20, 60),
            restore_after_bytes: 1_000,
        }
    }
}

impl Brdgrd {
    /// Enable on a server host.
    pub fn enable(&self, sim: &mut Simulator, server: Ipv4) {
        sim.set_window_shaper(
            server,
            Some(WindowShaper {
                window_range: self.window_range,
                restore_after_bytes: self.restore_after_bytes,
            }),
        );
    }

    /// Disable on a server host.
    pub fn disable(sim: &mut Simulator, server: Ipv4) {
        sim.set_window_shaper(server, None);
    }

    /// §7.1 limitation: does a window this small risk RSTs from
    /// implementations that reset when the first segment cannot hold a
    /// complete target specification? (Stream ciphers need IV + 7
    /// bytes.)
    pub fn risks_connection_failure(&self, iv_len: usize) -> bool {
        (self.window_range.0 as usize) < iv_len + 7
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::app::{App, AppEvent, Ctx};
    use netsim::capture::Capture;
    use netsim::conn::TcpTuning;
    use netsim::host::HostConfig;
    use netsim::time::{Duration, SimTime};
    use netsim::SimConfig;

    struct Quiet;
    impl App for Quiet {
        fn on_event(&mut self, _: AppEvent, _: &mut Ctx) {}
    }

    struct OneShot;
    impl App for OneShot {
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx) {
            if let AppEvent::Connected { conn } = ev {
                ctx.send(conn, vec![0xAB; 400]);
                ctx.set_timer(Duration::from_secs(5), conn.0);
            } else if let AppEvent::Timer { token } = ev {
                ctx.fin(netsim::conn::ConnId(token));
            }
        }
    }

    #[test]
    fn enable_disable_roundtrip_shapes_segments() {
        let mut sim = Simulator::new(SimConfig::default(), 77);
        let server = sim.add_host(HostConfig::outside("server"));
        let client = sim.add_host(HostConfig::china("client"));
        let cap = sim.add_capture(Capture::all());
        let quiet = sim.add_app(Box::new(Quiet));
        sim.listen((server, 8388), quiet);
        let app = sim.add_app(Box::new(OneShot));

        // Shaped connection.
        Brdgrd::default().enable(&mut sim, server);
        sim.connect_at(
            SimTime::ZERO,
            app,
            client,
            (server, 8388),
            TcpTuning::default(),
        );
        sim.run();
        let shaped_first = sim.capture(cap).first_data_per_conn()[0].payload.len();
        assert!(shaped_first <= 60, "first segment {shaped_first}");

        // Unshaped connection.
        sim.capture_mut(cap).clear();
        Brdgrd::disable(&mut sim, server);
        let t = sim.now();
        sim.connect_at(
            t + Duration::from_secs(1),
            app,
            client,
            (server, 8388),
            TcpTuning::default(),
        );
        sim.run();
        let plain_first = sim.capture(cap).first_data_per_conn()[0].payload.len();
        assert_eq!(plain_first, 400);
    }

    #[test]
    fn failure_risk_flag() {
        let tight = Brdgrd {
            window_range: (10, 15),
            restore_after_bytes: 500,
        };
        assert!(tight.risks_connection_failure(16));
        let safe = Brdgrd {
            window_range: (64, 120),
            restore_after_bytes: 500,
        };
        assert!(!safe.risks_connection_failure(16));
    }
}
