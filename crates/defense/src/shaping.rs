//! Client-side first-flight shaping.
//!
//! brdgrd works but is server-side and fingerprintable (§7.1's
//! limitations). The durable fix the OutlineVPN developers shipped
//! after disclosure (§11) lives in the *client*: change the shape of
//! the first flight so its length no longer matches the GFW's model.
//! Strategies here operate on the already-encrypted first-packet bytes,
//! so they compose with any cipher configuration.

use rand::Rng;

/// How a client emits its first flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirstFlightPolicy {
    /// One write, as classic clients do — the detectable shape.
    Single,
    /// Split the first flight at a random point in `[lo, hi]` bytes and
    /// emit two writes (cheap length perturbation; both segments dodge
    /// the 161–999 window only if sized carefully).
    SplitAt {
        /// Minimum prefix length.
        lo: usize,
        /// Maximum prefix length.
        hi: usize,
    },
    /// Emit the flight in fixed-size small writes — brdgrd's effect,
    /// produced at the sender.
    Chop {
        /// Segment size.
        size: usize,
    },
}

/// Apply a policy: returns the sequence of writes.
pub fn shape_first_flight(
    policy: FirstFlightPolicy,
    wire: &[u8],
    rng: &mut impl Rng,
) -> Vec<Vec<u8>> {
    match policy {
        FirstFlightPolicy::Single => vec![wire.to_vec()],
        FirstFlightPolicy::SplitAt { lo, hi } => {
            if wire.len() <= lo {
                return vec![wire.to_vec()];
            }
            let hi = hi.min(wire.len() - 1);
            let cut = rng.gen_range(lo..=hi.max(lo));
            vec![wire[..cut].to_vec(), wire[cut..].to_vec()]
        }
        FirstFlightPolicy::Chop { size } => {
            let size = size.max(1);
            wire.chunks(size).map(|c| c.to_vec()).collect()
        }
    }
}

/// Does a first segment of this length escape the GFW's replay-eligible
/// window (161–999 bytes, Fig 8)?
pub fn escapes_length_window(first_segment_len: usize) -> bool {
    !(161..=999).contains(&first_segment_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let wire = vec![9u8; 400];
        let out = shape_first_flight(FirstFlightPolicy::Single, &wire, &mut rng);
        assert_eq!(out, vec![wire]);
    }

    #[test]
    fn split_preserves_bytes() {
        let mut rng = StdRng::seed_from_u64(2);
        let wire: Vec<u8> = (0..200u8).collect();
        let out = shape_first_flight(
            FirstFlightPolicy::SplitAt { lo: 10, hi: 60 },
            &wire,
            &mut rng,
        );
        assert_eq!(out.len(), 2);
        assert!((10..=60).contains(&out[0].len()));
        assert_eq!(out.concat(), wire);
    }

    #[test]
    fn chop_makes_small_segments() {
        let mut rng = StdRng::seed_from_u64(3);
        let wire = vec![1u8; 400];
        let out = shape_first_flight(FirstFlightPolicy::Chop { size: 40 }, &wire, &mut rng);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|s| s.len() <= 40));
        assert!(escapes_length_window(out[0].len()));
    }

    #[test]
    fn short_wire_split_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(4);
        let wire = vec![1u8; 8];
        let out = shape_first_flight(
            FirstFlightPolicy::SplitAt { lo: 20, hi: 60 },
            &wire,
            &mut rng,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn window_escape_boundaries() {
        assert!(escapes_length_window(160));
        assert!(!escapes_length_window(161));
        assert!(!escapes_length_window(999));
        assert!(escapes_length_window(1000));
        assert!(escapes_length_window(40));
    }
}
