//! Nonce + timestamp replay filtering (§7.2).
//!
//! A purely nonce-based filter plays an unwinnable memory game: the
//! censor can replay after 570 hours (§3.5) or across a server restart,
//! but the server cannot remember every nonce forever. Binding each
//! connection to a client timestamp inverts the asymmetry (the VMess
//! approach): the server accepts only timestamps within ±`window` and
//! needs to remember nonces only for that window — bounded memory,
//! sound across restarts for anything older than the window.

use netsim::time::{Duration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Why a connection attempt was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictReason {
    /// Accepted: fresh timestamp, unseen nonce.
    Accept,
    /// Timestamp outside the acceptance window (stale or future).
    StaleTimestamp,
    /// Nonce already seen inside the window.
    ReplayedNonce,
}

/// A timestamp-scoped nonce filter with bounded memory.
pub struct TimedReplayFilter {
    /// Acceptance window: |now − claimed| must be ≤ this.
    pub window: Duration,
    seen: HashMap<Vec<u8>, SimTime>,
    order: VecDeque<(SimTime, Vec<u8>)>,
}

impl TimedReplayFilter {
    /// Create with an acceptance window (VMess uses ±120 s).
    pub fn new(window: Duration) -> TimedReplayFilter {
        TimedReplayFilter {
            window,
            seen: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn expire(&mut self, now: SimTime) {
        while let Some((t, _)) = self.order.front() {
            if now.since(*t) > self.window {
                let (_, nonce) = self.order.pop_front().unwrap();
                // Only remove if not re-inserted later (same nonce can't
                // be re-inserted while present, so this is safe).
                self.seen.remove(&nonce);
            } else {
                break;
            }
        }
    }

    /// Check a connection carrying `claimed` (the client's embedded
    /// timestamp) and `nonce` (its IV/salt) at local time `now`.
    pub fn check(&mut self, now: SimTime, claimed: SimTime, nonce: &[u8]) -> VerdictReason {
        self.expire(now);
        let skew = if now >= claimed {
            now.since(claimed)
        } else {
            claimed.since(now)
        };
        if skew > self.window {
            return VerdictReason::StaleTimestamp;
        }
        if self.seen.contains_key(nonce) {
            return VerdictReason::ReplayedNonce;
        }
        self.seen.insert(nonce.to_vec(), now);
        self.order.push_back((now, nonce.to_vec()));
        VerdictReason::Accept
    }

    /// Nonces currently remembered (bounded by traffic within one
    /// window — the whole point).
    pub fn remembered(&self) -> usize {
        self.seen.len()
    }

    /// Simulate a restart: memory is lost, but unlike the pure-nonce
    /// filter, only replays *inside the current window* can slip
    /// through afterwards.
    pub fn restart(&mut self) {
        self.seen.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn accepts_fresh_rejects_replay() {
        let mut f = TimedReplayFilter::new(Duration::from_secs(120));
        assert_eq!(f.check(t(1000), t(1000), b"nonce-a"), VerdictReason::Accept);
        assert_eq!(
            f.check(t(1001), t(1000), b"nonce-a"),
            VerdictReason::ReplayedNonce
        );
    }

    #[test]
    fn rejects_stale_and_future_timestamps() {
        let mut f = TimedReplayFilter::new(Duration::from_secs(120));
        // The 570-hour replay of §3.5 dies here with no memory at all.
        assert_eq!(
            f.check(t(2_052_000), t(0), b"old"),
            VerdictReason::StaleTimestamp
        );
        assert_eq!(
            f.check(t(0), t(10_000), b"future"),
            VerdictReason::StaleTimestamp
        );
        assert_eq!(f.remembered(), 0);
    }

    #[test]
    fn memory_is_bounded_by_window() {
        let mut f = TimedReplayFilter::new(Duration::from_secs(100));
        for i in 0..10_000u64 {
            let now = t(i);
            f.check(now, now, &i.to_le_bytes());
        }
        // Only ~window seconds of nonces are retained.
        assert!(f.remembered() <= 102, "{}", f.remembered());
    }

    #[test]
    fn nonce_can_recur_after_window() {
        // Outside the window the *timestamp* gate already rejects, so
        // forgetting the nonce is harmless.
        let mut f = TimedReplayFilter::new(Duration::from_secs(100));
        assert_eq!(f.check(t(0), t(0), b"n"), VerdictReason::Accept);
        assert_eq!(f.check(t(500), t(0), b"n"), VerdictReason::StaleTimestamp);
        // A *new* connection legitimately reusing the nonce much later
        // (e.g. random collision) is fine.
        assert_eq!(f.check(t(500), t(500), b"n"), VerdictReason::Accept);
    }

    #[test]
    fn restart_exposure_is_one_window_only() {
        let mut f = TimedReplayFilter::new(Duration::from_secs(120));
        assert_eq!(
            f.check(t(1000), t(1000), b"captured"),
            VerdictReason::Accept
        );
        f.restart();
        // Replay shortly after restart, inside the window: slips through
        // (the bounded exposure).
        assert_eq!(
            f.check(t(1060), t(1000), b"captured"),
            VerdictReason::Accept
        );
        // Replay after the window: timestamp gate holds despite the
        // restart — the pure-nonce filter fails this case (§7.2).
        assert_eq!(
            f.check(t(2000), t(1000), b"captured"),
            VerdictReason::StaleTimestamp
        );
    }

    #[test]
    fn contrast_with_pure_nonce_filter_across_restart() {
        // The paper's asymmetry, demonstrated: the Bloom filter forgets
        // on restart and accepts the replay; the timed filter does not.
        let mut bloom = shadowsocks::bloom::PingPongBloom::new(1000);
        assert!(!bloom.check_and_insert(b"captured"));
        bloom.restart();
        assert!(
            !bloom.check_and_insert(b"captured"),
            "pure-nonce filter accepts the replay after restart"
        );

        let mut timed = TimedReplayFilter::new(Duration::from_secs(120));
        timed.check(t(0), t(0), b"captured");
        timed.restart();
        assert_eq!(
            timed.check(t(10_000), t(0), b"captured"),
            VerdictReason::StaleTimestamp,
            "timed filter rejects it regardless of the restart"
        );
    }
}
