//! The "rest of the Internet" model.
//!
//! When a Shadowsocks server decrypts a random probe into a plausible
//! target specification, it tries to connect to an effectively random
//! address (§5.2.1). We cannot instantiate hosts for the whole IPv4
//! space, so connections to unregistered addresses are resolved by this
//! model: refused quickly, accepted, or black-holed until the SYN times
//! out. The refuse/black-hole split is what divides the paper's
//! FIN/ACK and TIMEOUT reactions for valid-address-type stream probes.

use crate::packet::SocketAddr;
use crate::time::Duration;
use rand::Rng;

/// Outcome of a connection attempt to an address the simulator doesn't
/// host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RemoteOutcome {
    /// RST after the given delay (port closed / host reachable).
    Refused {
        /// Time until the RST arrives back.
        after: Duration,
    },
    /// No answer at all; the connecting side gives up at its SYN
    /// timeout.
    BlackHole,
}

/// Policy for unregistered destinations.
#[derive(Clone, Copy, Debug)]
pub struct InternetModel {
    /// Probability that a random address refuses quickly (vs
    /// black-holing). Random IPv4 space is mostly unresponsive, but
    /// refusals are common enough that both reactions appear in Fig 10a.
    pub p_refused: f64,
    /// Delay before a refusal RST arrives.
    pub refuse_delay: Duration,
}

impl Default for InternetModel {
    fn default() -> Self {
        InternetModel {
            p_refused: 0.5,
            refuse_delay: Duration::from_millis(120),
        }
    }
}

impl InternetModel {
    /// Decide the fate of a connection to `addr`.
    pub fn outcome(&self, _addr: SocketAddr, rng: &mut impl Rng) -> RemoteOutcome {
        if rng.gen_bool(self.p_refused) {
            RemoteOutcome::Refused {
                after: self.refuse_delay,
            }
        } else {
            RemoteOutcome::BlackHole
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Ipv4;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outcome_split_matches_probability() {
        let model = InternetModel {
            p_refused: 0.3,
            refuse_delay: Duration::from_millis(50),
        };
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let refused = (0..n)
            .filter(|_| {
                matches!(
                    model.outcome((Ipv4::new(8, 8, 8, 8), 443), &mut rng),
                    RemoteOutcome::Refused { .. }
                )
            })
            .count();
        let frac = refused as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn degenerate_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let always = InternetModel {
            p_refused: 1.0,
            ..Default::default()
        };
        assert!(matches!(
            always.outcome((Ipv4::new(1, 1, 1, 1), 1), &mut rng),
            RemoteOutcome::Refused { .. }
        ));
        let never = InternetModel {
            p_refused: 0.0,
            ..Default::default()
        };
        assert_eq!(
            never.outcome((Ipv4::new(1, 1, 1, 1), 1), &mut rng),
            RemoteOutcome::BlackHole
        );
    }
}
