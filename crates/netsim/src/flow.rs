//! Fluid bulk-transfer modeling — the flow half of the hybrid engine.
//!
//! Every fingerprint the paper exploits lives at flow *edges*: the SYN
//! handshake, the first data packet's length/entropy (§4), active
//! probes, RSTs and teardown (§5). The bytes in the middle of a bulk
//! transfer are detector-invisible — the GFW model inspects only the
//! first data packet of each connection — yet the pure packet engine
//! pays one event per MSS-sized segment for all of them, which caps
//! realistic flow populations far below the "millions of users" scale
//! the base-rate experiments need.
//!
//! The hybrid engine lets a connection run packet-by-packet through the
//! detection-relevant window, then *promotes* the remainder of a bulk
//! transfer into this module's fluid model: per-link processor sharing
//! (equal division is exactly max-min fairness here, because every flow
//! crosses a single bottleneck link), advanced in **integer virtual
//! time** so arrivals and departures never force an O(active flows)
//! re-computation:
//!
//! * each link accumulates `virt`, the cumulative per-flow service in
//!   *nanobytes* (`1 byte == 1_000_000_000 nanobytes`): over a real
//!   interval `dt` ns with `n` active flows and capacity `C` bytes/sec,
//!   `virt` grows by `C·dt/n` nanobytes (truncated);
//! * a flow promoted with `R` bytes remaining finishes when `virt`
//!   reaches `v_start + R·1e9` — a constant, *independent of later
//!   arrivals and departures*, so completions sit in an ordered map
//!   keyed by `(v_finish, promotion seq)` and only the link's single
//!   next-completion event is ever rescheduled (guarded by an epoch
//!   counter against staleness);
//! * byte conservation is exact: a completion delivers the flow's
//!   tracked remaining bytes outright, and a demotion settles
//!   `min(remaining, ⌊(virt − v_start)/1e9⌋)` as delivered, returning
//!   the integer remainder to the packet engine.
//!
//! The simulator (`sim.rs`) owns promotion/demotion *policy* — which
//! transfers qualify, which wire events force a flow back to packet
//! fidelity. This module owns the fluid *mechanism* and is deliberately
//! simulator-free so the fair-share invariants can be property-tested
//! against a floating-point processor-sharing reference without
//! standing up a world.

use crate::app::AppId;
use crate::conn::ConnId;
use crate::host::Region;
use crate::time::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Nanobytes per byte: the resolution of fluid virtual time. With
/// capacities in bytes/sec and time in nanoseconds, `C·dt` is exactly
/// a nanobyte count — no rounding enters until division by `n`.
const NANO: u128 = 1_000_000_000;

/// Which engine drives bulk transfers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// Every byte of every transfer is segmented and delivered
    /// packet-by-packet (the pre-hybrid behaviour; the golden
    /// equivalence reference).
    Packet,
    /// Transfers run packet-by-packet through the detection-relevant
    /// window, then promote to the fluid model.
    #[default]
    Hybrid,
}

/// The three capacity domains of the simulated topology. Every
/// connection's payload crosses exactly one of them, which is what
/// makes equal-share processor sharing coincide with max-min fairness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkId {
    /// China → international transit (the censored egress direction).
    CnToIntl,
    /// International → China transit.
    IntlToCn,
    /// Traffic that never crosses the border.
    Intra,
}

impl LinkId {
    /// The link a payload stream crosses, given sender and receiver
    /// regions (unknown regions fall back to the intra domain, matching
    /// `Simulator::pkt_link`'s latency fallback).
    pub fn between(src: Option<Region>, dst: Option<Region>) -> LinkId {
        match (src, dst) {
            (Some(Region::China), Some(Region::Outside)) => LinkId::CnToIntl,
            (Some(Region::Outside), Some(Region::China)) => LinkId::IntlToCn,
            _ => LinkId::Intra,
        }
    }

    fn idx(self) -> usize {
        match self {
            LinkId::CnToIntl => 0,
            LinkId::IntlToCn => 1,
            LinkId::Intra => 2,
        }
    }
}

/// Per-link capacities in bytes/sec. A capacity of 0 disables fluid
/// promotion on that link (flows stay in packet mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkBandwidth {
    /// China → international capacity.
    pub cn_to_intl: u64,
    /// International → China capacity.
    pub intl_to_cn: u64,
    /// Intra-region capacity.
    pub intra: u64,
}

impl Default for LinkBandwidth {
    /// 1 Gbit/s each way across the border, 10 Gbit/s within a region —
    /// round figures for a mid-size transit path; the experiments that
    /// are equivalence-gated never promote, so these only shape the
    /// scale workloads.
    fn default() -> Self {
        LinkBandwidth {
            cn_to_intl: 125_000_000,
            intl_to_cn: 125_000_000,
            intra: 1_250_000_000,
        }
    }
}

impl LinkBandwidth {
    /// Capacity of one link domain.
    pub fn capacity(&self, link: LinkId) -> u64 {
        match link {
            LinkId::CnToIntl => self.cn_to_intl,
            LinkId::IntlToCn => self.intl_to_cn,
            LinkId::Intra => self.intra,
        }
    }

    /// Split every link's capacity across `n` equal shard cells. Each
    /// cell's fluid model then arbitrates its share independently, so
    /// the aggregate offered capacity matches the unsharded topology
    /// regardless of the cell count.
    pub fn divided(self, n: u64) -> LinkBandwidth {
        let n = n.max(1);
        LinkBandwidth {
            cn_to_intl: self.cn_to_intl / n,
            intl_to_cn: self.intl_to_cn / n,
            intra: self.intra / n,
        }
    }
}

/// A completed fluid flow, reported by [`FluidState::on_advance`].
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The connection.
    pub conn: ConnId,
    /// Bytes the fluid model delivered at completion (the flow's entire
    /// promoted remainder — conservation is exact by construction).
    pub bytes: u64,
    /// Total transfer size (packet phase + fluid), echoed for the
    /// `BulkDelivered` app event.
    pub total: u64,
    /// True if the server side was sending.
    pub from_server: bool,
    /// The app that issued the transfer.
    pub sender: AppId,
}

/// The result of demoting a flow mid-transfer ([`FluidState::settle`]).
#[derive(Clone, Copy, Debug)]
pub struct Settlement {
    /// Bytes the fluid model delivered up to the settle instant.
    pub delivered: u64,
    /// Bytes left undelivered; the simulator resumes them as packets.
    pub remaining: u64,
    /// Total transfer size (packet phase + fluid).
    pub total: u64,
    /// True if the server side was sending.
    pub from_server: bool,
    /// The app that issued the transfer.
    pub sender: AppId,
}

/// A rescheduling directive: the link's next-completion event to push,
/// as `(link, epoch, fire time)`. `None` means the link has no active
/// flows (any in-flight event for it is stale and will be ignored).
pub type Resched = Option<(LinkId, u64, SimTime)>;

/// One promoted flow's bookkeeping.
#[derive(Clone, Copy, Debug)]
struct FluidFlow {
    link: LinkId,
    /// Key of this flow's entry in the link's completion queue.
    key: (u128, u64),
    /// Link virtual time at promotion.
    v_start: u128,
    remaining: u64,
    total: u64,
    from_server: bool,
    sender: AppId,
}

/// Per-link processor-sharing scheduler state.
#[derive(Debug, Default)]
struct LinkSched {
    /// Capacity in bytes/sec (0 = promotion disabled).
    capacity: u64,
    /// Cumulative per-flow service, in nanobytes.
    virt: u128,
    /// Sim time of the last `virt` update.
    last: SimTime,
    /// Active fluid flows on this link.
    n: u64,
    /// Completion queue: `(v_finish, promotion seq) → conn`.
    queue: BTreeMap<(u128, u64), ConnId>,
    /// Bumped on every mutation; next-completion events carry the epoch
    /// they were scheduled under and are ignored when it is stale.
    epoch: u64,
}

impl LinkSched {
    /// Advance `virt` to `now`. Truncation loses under one nanobyte per
    /// call; `next_fire`'s ceiling rounding re-arms a whisker late
    /// rather than early, so the self-healing path in `on_advance`
    /// (no finisher ripe yet → reschedule) covers the residue.
    fn advance(&mut self, now: SimTime) {
        if self.n > 0 {
            let dt = u128::from(now.since(self.last).as_nanos());
            let grow = u128::from(self.capacity).wrapping_mul(dt) / u128::from(self.n);
            self.virt = self.virt.saturating_add(grow);
        }
        self.last = now;
    }

    /// When the earliest queued completion ripens, assuming `n` stays
    /// constant: `last + ⌈(v_finish − virt)·n / C⌉` ns. The ceiling
    /// guarantees `virt ≥ v_finish` at fire time when no intervening
    /// mutation advanced the clock.
    fn next_fire(&self) -> Option<SimTime> {
        let (&(v_finish, _), _) = self.queue.first_key_value()?;
        let need = v_finish.saturating_sub(self.virt);
        let cap = u128::from(self.capacity);
        if cap == 0 {
            return None;
        }
        let num = need.wrapping_mul(u128::from(self.n));
        let dt = num / cap + u128::from(num % cap != 0);
        let dt64 = u64::try_from(dt).unwrap_or(u64::MAX);
        Some(SimTime(self.last.as_nanos().saturating_add(dt64)))
    }

    /// Bump the epoch and emit the rescheduling directive for `link`.
    fn resched(&mut self, link: LinkId) -> Resched {
        self.epoch = self.epoch.wrapping_add(1);
        self.next_fire().map(|at| (link, self.epoch, at))
    }
}

/// All fluid-model state: three link schedulers plus the per-connection
/// flow table.
#[derive(Debug)]
pub struct FluidState {
    links: [LinkSched; 3],
    flows: HashMap<ConnId, FluidFlow>,
    next_seq: u64,
}

impl FluidState {
    /// Fresh state with the given link capacities.
    pub fn new(bw: LinkBandwidth) -> FluidState {
        let mk = |capacity: u64| LinkSched {
            capacity,
            ..LinkSched::default()
        };
        FluidState {
            links: [mk(bw.cn_to_intl), mk(bw.intl_to_cn), mk(bw.intra)],
            flows: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Number of currently promoted flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// True if `conn` currently has a promoted flow.
    pub fn is_fluid(&self, conn: ConnId) -> bool {
        self.flows.contains_key(&conn)
    }

    /// True if `link` can host fluid flows (non-zero capacity).
    pub fn can_promote(&self, link: LinkId) -> bool {
        self.links[link.idx()].capacity > 0
    }

    /// Promote a transfer's remainder into the fluid model. The caller
    /// guarantees `remaining > 0`, a promotable link, and that `conn`
    /// is not already fluid. Returns the link's rescheduling directive.
    #[allow(clippy::too_many_arguments)]
    pub fn promote(
        &mut self,
        now: SimTime,
        conn: ConnId,
        link: LinkId,
        remaining: u64,
        total: u64,
        from_server: bool,
        sender: AppId,
    ) -> Resched {
        debug_assert!(remaining > 0, "promoting an empty transfer");
        debug_assert!(!self.is_fluid(conn), "double promotion of {conn:?}");
        let sched = &mut self.links[link.idx()];
        sched.advance(now);
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let v_start = sched.virt;
        let v_finish = v_start.saturating_add(u128::from(remaining).wrapping_mul(NANO));
        let key = (v_finish, seq);
        sched.queue.insert(key, conn);
        sched.n = sched.n.wrapping_add(1);
        self.flows.insert(
            conn,
            FluidFlow {
                link,
                key,
                v_start,
                remaining,
                total,
                from_server,
                sender,
            },
        );
        self.links[link.idx()].resched(link)
    }

    /// Demote `conn`: credit the service it accrued and remove it from
    /// the model. Returns `None` if the connection has no fluid flow.
    pub fn settle(&mut self, now: SimTime, conn: ConnId) -> Option<(Settlement, Resched)> {
        let flow = self.flows.remove(&conn)?;
        let sched = &mut self.links[flow.link.idx()];
        sched.advance(now);
        sched.queue.remove(&flow.key);
        sched.n = sched.n.saturating_sub(1);
        let served = sched.virt.saturating_sub(flow.v_start) / NANO;
        let delivered = flow
            .remaining
            .min(u64::try_from(served).unwrap_or(u64::MAX));
        let settlement = Settlement {
            delivered,
            remaining: flow.remaining.saturating_sub(delivered),
            total: flow.total,
            from_server: flow.from_server,
            sender: flow.sender,
        };
        let resched = self.links[flow.link.idx()].resched(flow.link);
        Some((settlement, resched))
    }

    /// Handle a link's next-completion event: pop every flow whose
    /// virtual finish time has ripened into `out`, then re-arm. A stale
    /// `epoch` (a mutation intervened since the event was scheduled) is
    /// ignored outright — the mutation already re-armed the link.
    pub fn on_advance(
        &mut self,
        now: SimTime,
        link: LinkId,
        epoch: u64,
        out: &mut Vec<Completion>,
    ) -> Resched {
        let sched = &mut self.links[link.idx()];
        if sched.epoch != epoch {
            return None;
        }
        sched.advance(now);
        while let Some((&key, &conn)) = sched.queue.first_key_value() {
            if key.0 > sched.virt {
                break;
            }
            sched.queue.remove(&key);
            sched.n = sched.n.saturating_sub(1);
            // Every queue entry has a matching flow (settle removes
            // both under one lock-step); tolerate a desync rather than
            // panicking mid-simulation.
            debug_assert!(self.flows.contains_key(&conn), "queue entry without a flow");
            let Some(flow) = self.flows.remove(&conn) else {
                continue;
            };
            out.push(Completion {
                conn,
                bytes: flow.remaining,
                total: flow.total,
                from_server: flow.from_server,
                sender: flow.sender,
            });
        }
        self.links[link.idx()].resched(link)
    }
}

/// Deterministic bulk-transfer payload: byte `offset + i` of a
/// transfer on `conn` is a pure function of `(conn, position)`, so the
/// packet engine (whole transfer at once), the hybrid packet phase
/// (prefix) and a demotion flush (suffix at its true offset) all emit
/// the identical byte stream. High-entropy by construction — bulk
/// payloads should look like ciphertext, not zeros.
pub fn fill_bulk(buf: &mut [u8], conn: ConnId, offset: u64) {
    let mut block = u64::MAX;
    let mut word = 0u64;
    for (i, b) in buf.iter_mut().enumerate() {
        let pos = offset.wrapping_add(i as u64);
        if pos >> 3 != block {
            block = pos >> 3;
            word = mix(conn.0 ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        *b = (word >> ((pos & 7) << 3)) as u8;
    }
}

/// splitmix64 finalizer: cheap, stateless, well-distributed.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: AppId = AppId(0);

    fn at(secs_num: u64, secs_den: u64) -> SimTime {
        SimTime(secs_num * 1_000_000_000 / secs_den)
    }

    #[test]
    fn single_flow_finishes_at_bytes_over_capacity() {
        // 1 MB at 125 MB/s → 8 ms.
        let mut fs = FluidState::new(LinkBandwidth::default());
        let r = fs.promote(
            SimTime::ZERO,
            ConnId(1),
            LinkId::CnToIntl,
            1_000_000,
            1_000_000,
            false,
            APP,
        );
        let (link, epoch, fire) = r.expect("one flow → one event");
        assert_eq!(link, LinkId::CnToIntl);
        assert_eq!(fire, SimTime(8_000_000));
        let mut done = Vec::new();
        let r2 = fs.on_advance(fire, link, epoch, &mut done);
        assert!(r2.is_none(), "no flows left");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 1_000_000);
        assert!(!fs.is_fluid(ConnId(1)));
    }

    #[test]
    fn two_equal_flows_share_the_link() {
        // Two 1 MB flows from t=0 at 125 MB/s: each gets half rate, both
        // finish at 16 ms (same virtual finish; FIFO by promotion seq).
        let mut fs = FluidState::new(LinkBandwidth::default());
        fs.promote(
            SimTime::ZERO,
            ConnId(1),
            LinkId::CnToIntl,
            1_000_000,
            1_000_000,
            false,
            APP,
        );
        let (link, epoch, fire) = fs
            .promote(
                SimTime::ZERO,
                ConnId(2),
                LinkId::CnToIntl,
                1_000_000,
                1_000_000,
                false,
                APP,
            )
            .expect("re-armed");
        assert_eq!(fire, SimTime(16_000_000));
        let mut done = Vec::new();
        fs.on_advance(fire, link, epoch, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].conn, ConnId(1), "ties pop in promotion order");
        assert_eq!(done[1].conn, ConnId(2));
    }

    #[test]
    fn late_arrival_slows_the_first_flow() {
        // Flow A: 1 MB at t=0. Flow B arrives at 4 ms (A half done);
        // from then on each runs at half rate, so A finishes at
        // 4ms + 8ms = 12 ms.
        let mut fs = FluidState::new(LinkBandwidth::default());
        fs.promote(
            SimTime::ZERO,
            ConnId(1),
            LinkId::CnToIntl,
            1_000_000,
            1_000_000,
            false,
            APP,
        );
        let (link, epoch, fire) = fs
            .promote(
                at(4, 1000),
                ConnId(2),
                LinkId::CnToIntl,
                1_000_000,
                1_000_000,
                false,
                APP,
            )
            .expect("re-armed");
        assert_eq!(fire, SimTime(12_000_000), "A's completion moved out");
        let mut done = Vec::new();
        let r = fs.on_advance(fire, link, epoch, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].conn, ConnId(1));
        // B alone again: 0.5 MB left at full rate → 4 ms more.
        let (_, _, fire_b) = r.expect("B still active");
        assert_eq!(fire_b, SimTime(16_000_000));
    }

    #[test]
    fn settle_credits_elapsed_service_exactly() {
        let mut fs = FluidState::new(LinkBandwidth::default());
        fs.promote(
            SimTime::ZERO,
            ConnId(1),
            LinkId::IntlToCn,
            1_000_000,
            2_000_000,
            true,
            APP,
        );
        // At 2 ms, a lone flow at 125 MB/s has moved 250 KB.
        let (s, resched) = fs.settle(at(2, 1000), ConnId(1)).expect("was fluid");
        assert_eq!(s.delivered, 250_000);
        assert_eq!(s.remaining, 750_000);
        assert_eq!(s.total, 2_000_000);
        assert!(s.from_server);
        assert!(resched.is_none());
        assert!(fs.settle(at(2, 1000), ConnId(1)).is_none(), "idempotent");
    }

    #[test]
    fn stale_epoch_is_ignored() {
        let mut fs = FluidState::new(LinkBandwidth::default());
        let (link, old_epoch, fire) = fs
            .promote(
                SimTime::ZERO,
                ConnId(1),
                LinkId::CnToIntl,
                1_000_000,
                1_000_000,
                false,
                APP,
            )
            .expect("armed");
        // A settle intervenes: the event scheduled above is now stale.
        fs.settle(at(1, 1000), ConnId(1));
        let mut done = Vec::new();
        assert!(fs.on_advance(fire, link, old_epoch, &mut done).is_none());
        assert!(done.is_empty(), "stale event must not complete anything");
    }

    #[test]
    fn zero_capacity_disables_promotion() {
        let fs = FluidState::new(LinkBandwidth {
            cn_to_intl: 0,
            intl_to_cn: 1,
            intra: 1,
        });
        assert!(!fs.can_promote(LinkId::CnToIntl));
        assert!(fs.can_promote(LinkId::IntlToCn));
    }

    #[test]
    fn completions_resume_after_an_idle_gap() {
        // The link drains, sits idle, then a new flow arrives: virtual
        // time must not credit the idle gap to the new flow.
        let mut fs = FluidState::new(LinkBandwidth::default());
        let (link, epoch, fire) = fs
            .promote(
                SimTime::ZERO,
                ConnId(1),
                LinkId::CnToIntl,
                125_000,
                125_000,
                false,
                APP,
            )
            .expect("armed");
        let mut done = Vec::new();
        fs.on_advance(fire, link, epoch, &mut done);
        assert_eq!(done.len(), 1);
        // One second of idleness, then a 125 KB flow: 1 ms, not 0.
        let (_, _, fire2) = fs
            .promote(
                at(1, 1),
                ConnId(2),
                LinkId::CnToIntl,
                125_000,
                125_000,
                false,
                APP,
            )
            .expect("armed");
        assert_eq!(fire2, SimTime(1_001_000_000));
    }

    #[test]
    fn fill_bulk_is_offset_consistent() {
        let conn = ConnId(7);
        let mut whole = vec![0u8; 4096];
        fill_bulk(&mut whole, conn, 0);
        // Any split at any offset reproduces the same stream.
        for split in [1usize, 7, 8, 100, 1447, 4095] {
            let mut head = vec![0u8; split];
            let mut tail = vec![0u8; 4096 - split];
            fill_bulk(&mut head, conn, 0);
            fill_bulk(&mut tail, conn, split as u64);
            assert_eq!(&whole[..split], &head[..], "head split at {split}");
            assert_eq!(&whole[split..], &tail[..], "tail split at {split}");
        }
        // Different connections get different streams.
        let mut other = vec![0u8; 4096];
        fill_bulk(&mut other, ConnId(8), 0);
        assert_ne!(whole, other);
    }

    #[test]
    fn fill_bulk_looks_high_entropy() {
        let mut buf = vec![0u8; 1 << 16];
        fill_bulk(&mut buf, ConnId(3), 0);
        let mut counts = [0u32; 256];
        for &b in &buf {
            counts[b as usize] += 1;
        }
        // Every byte value appears, none wildly over-represented.
        let (min, max) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        assert!(min > 128, "min count {min}");
        assert!(max < 512, "max count {max}");
    }
}
