//! Host configuration: region, TTL, port allocation, IP ID generation,
//! TCP timestamp clocks and optional receive-window shaping.
//!
//! These knobs exist because the paper fingerprints exactly these
//! behaviours: prober source ports concentrated in the Linux ephemeral
//! range (Fig 5), TTLs in 46–50, patternless IP IDs, and shared TSval
//! clocks at 250/1000 Hz (Fig 6).

use crate::packet::Ipv4;
use crate::time::{Duration, SimTime};
use rand::Rng;

/// Which side of the Great Firewall a host sits on. Packets whose two
/// endpoints are in different regions traverse the border (and therefore
/// every [`crate::tap::Tap`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Inside China.
    China,
    /// Outside China.
    Outside,
}

/// TCP source-port allocation policy.
#[derive(Clone, Copy, Debug)]
pub enum PortPolicy {
    /// The default Linux ephemeral range 32768–60999, allocated
    /// uniformly.
    LinuxEphemeral,
    /// Uniform over 1024–65535.
    UniformHigh,
    /// Mixture: with probability `linux_frac`, LinuxEphemeral; otherwise
    /// UniformHigh. The paper observed ~90% of prober SYNs in the Linux
    /// range with a minimum of 1212 and maximum of 65237 (§3.4, Fig 5).
    Mixed {
        /// Fraction drawn from the Linux ephemeral range.
        linux_frac: f64,
    },
}

impl PortPolicy {
    /// Draw a source port.
    pub fn draw(&self, rng: &mut impl Rng) -> u16 {
        match self {
            PortPolicy::LinuxEphemeral => rng.gen_range(32768..=60999),
            PortPolicy::UniformHigh => rng.gen_range(1024..=65535),
            PortPolicy::Mixed { linux_frac } => {
                if rng.gen_bool(*linux_frac) {
                    rng.gen_range(32768..=60999)
                } else {
                    rng.gen_range(1024..=65535)
                }
            }
        }
    }
}

/// IP identification field policy.
#[derive(Clone, Copy, Debug)]
pub enum IpIdPolicy {
    /// Monotonic per-host counter (classic BSD-style).
    Sequential,
    /// Uniformly random per packet — what the paper observed from the
    /// probers ("no clear pattern", §3.4).
    Random,
}

/// A TCP timestamp clock: `TSval = offset + rate_hz * elapsed`.
///
/// Linux kernels tick TCP timestamps at their `CONFIG_HZ` — commonly
/// 250 Hz or 1000 Hz, the two slopes of the paper's Fig 6.
#[derive(Clone, Copy, Debug)]
pub struct TsClock {
    /// Counter value at simulation time zero.
    pub offset: u32,
    /// Ticks per second.
    pub rate_hz: u32,
}

impl TsClock {
    /// Evaluate the clock at `now`, wrapping at 2^32 (the wrap is visible
    /// in the paper's Fig 6).
    pub fn tsval(&self, now: SimTime) -> u32 {
        let ticks = (now.as_secs_f64() * self.rate_hz as f64) as u64;
        (self.offset as u64).wrapping_add(ticks) as u32
    }
}

/// Receive-window shaping, modelling brdgrd (§7.1): rewrite the window
/// announced to clients so their first flight arrives in small segments.
#[derive(Clone, Copy, Debug)]
pub struct WindowShaper {
    /// Announced window is drawn uniformly from this inclusive range.
    pub window_range: (u16, u16),
    /// Stop clamping once this many client payload bytes have arrived on
    /// a connection (brdgrd only interferes with the handshake).
    pub restore_after_bytes: usize,
}

/// Static configuration of a simulated host.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Human-readable label for diagnostics.
    pub name: String,
    /// Side of the border.
    pub region: Region,
    /// Initial TTL on emitted packets (64 is the Linux default).
    pub initial_ttl: u8,
    /// Source-port allocation.
    pub port_policy: PortPolicy,
    /// IP ID generation.
    pub ip_id_policy: IpIdPolicy,
    /// TCP timestamp clock; `None` picks a random 1000 Hz clock at host
    /// creation.
    pub ts_clock: Option<TsClock>,
    /// Optional brdgrd-style receive-window shaping for inbound
    /// connections served by this host.
    pub window_shaper: Option<WindowShaper>,
    /// SYN-timeout: how long this host's clients wait for a SYN-ACK
    /// before giving up.
    pub syn_timeout: Duration,
}

impl HostConfig {
    /// A host inside China with Linux defaults.
    pub fn china(name: &str) -> HostConfig {
        HostConfig::with_region(name, Region::China)
    }

    /// A host outside China with Linux defaults.
    pub fn outside(name: &str) -> HostConfig {
        HostConfig::with_region(name, Region::Outside)
    }

    /// Linux-flavoured defaults in the given region.
    pub fn with_region(name: &str, region: Region) -> HostConfig {
        HostConfig {
            name: name.to_string(),
            region,
            initial_ttl: 64,
            port_policy: PortPolicy::LinuxEphemeral,
            ip_id_policy: IpIdPolicy::Sequential,
            ts_clock: None,
            window_shaper: None,
            syn_timeout: Duration::from_secs(20),
        }
    }
}

/// Runtime state of a host inside the simulator.
#[derive(Debug)]
pub struct Host {
    /// Immutable configuration.
    pub config: HostConfig,
    /// Address this host answers on.
    pub addr: Ipv4,
    /// Resolved timestamp clock.
    pub ts_clock: TsClock,
    /// Sequential IP ID counter state.
    pub ip_id_counter: u16,
}

impl Host {
    /// Build runtime state, resolving the timestamp clock randomly if
    /// unspecified.
    pub fn new(addr: Ipv4, config: HostConfig, rng: &mut impl Rng) -> Host {
        let ts_clock = config.ts_clock.unwrap_or(TsClock {
            offset: rng.gen(),
            rate_hz: 1000,
        });
        Host {
            config,
            addr,
            ts_clock,
            ip_id_counter: rng.gen(),
        }
    }

    /// Produce the IP ID for the next packet.
    pub fn next_ip_id(&mut self, rng: &mut impl Rng) -> u16 {
        match self.config.ip_id_policy {
            IpIdPolicy::Sequential => {
                self.ip_id_counter = self.ip_id_counter.wrapping_add(1);
                self.ip_id_counter
            }
            IpIdPolicy::Random => rng.gen(),
        }
    }
}

/// Dense arena of registered hosts.
///
/// Hosts are never removed, so each gets a stable `u32` index at
/// registration; connections cache the indices of their two endpoints
/// and per-packet paths resolve hosts with a plain `Vec` index. The
/// address map remains for the rare address-keyed operations
/// (registration, listener SYN handling, runtime shaper toggles).
#[derive(Debug, Default)]
pub struct HostArena {
    hosts: Vec<Host>,
    by_addr: std::collections::HashMap<Ipv4, u32>,
}

impl HostArena {
    /// An empty arena.
    pub fn new() -> HostArena {
        HostArena::default()
    }

    /// Register `host`, returning its dense index. Re-registering an
    /// address replaces the host in place (same index).
    pub fn insert(&mut self, host: Host) -> u32 {
        if let Some(&idx) = self.by_addr.get(&host.addr) {
            self.hosts[idx as usize] = host;
            return idx;
        }
        let idx = self.hosts.len() as u32;
        self.by_addr.insert(host.addr, idx);
        self.hosts.push(host);
        idx
    }

    /// The dense index of the host at `addr`, if registered.
    pub fn index_of(&self, addr: Ipv4) -> Option<u32> {
        self.by_addr.get(&addr).copied()
    }

    /// The host at dense index `idx`.
    pub fn get(&self, idx: u32) -> &Host {
        &self.hosts[idx as usize]
    }

    /// Mutable host at dense index `idx`.
    pub fn get_mut(&mut self, idx: u32) -> &mut Host {
        &mut self.hosts[idx as usize]
    }

    /// The host at `addr` (address-keyed slow path).
    pub fn by_addr(&self, addr: Ipv4) -> Option<&Host> {
        self.index_of(addr).map(|i| self.get(i))
    }

    /// Mutable host at `addr` (address-keyed slow path).
    pub fn by_addr_mut(&mut self, addr: Ipv4) -> Option<&mut Host> {
        let idx = self.index_of(addr)?;
        Some(self.get_mut(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ts_clock_slopes() {
        let c250 = TsClock {
            offset: 0,
            rate_hz: 250,
        };
        let c1000 = TsClock {
            offset: 0,
            rate_hz: 1000,
        };
        let t = SimTime::ZERO + Duration::from_secs(10);
        assert_eq!(c250.tsval(t), 2500);
        assert_eq!(c1000.tsval(t), 10000);
    }

    #[test]
    fn ts_clock_wraps() {
        // Fig 6 shows sequences wrapping at 2^32 - 1.
        let c = TsClock {
            offset: u32::MAX - 100,
            rate_hz: 250,
        };
        let t = SimTime::ZERO + Duration::from_secs(1);
        assert_eq!(c.tsval(t), 149); // (2^32 - 101 + 250) mod 2^32
    }

    #[test]
    fn port_policies_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let p = PortPolicy::LinuxEphemeral.draw(&mut rng);
            assert!((32768..=60999).contains(&p));
            let q = PortPolicy::UniformHigh.draw(&mut rng);
            assert!(q >= 1024);
            let r = PortPolicy::Mixed { linux_frac: 0.9 }.draw(&mut rng);
            assert!(r >= 1024);
        }
    }

    #[test]
    fn mixed_policy_ratio_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(7);
        let policy = PortPolicy::Mixed { linux_frac: 0.9 };
        let n = 10_000;
        let in_linux = (0..n)
            .filter(|_| (32768..=60999).contains(&policy.draw(&mut rng)))
            .count();
        let frac = in_linux as f64 / n as f64;
        // ~90% plus the ~44% of UniformHigh draws that also land in-range.
        assert!(frac > 0.88 && frac < 0.98, "frac {frac}");
    }

    #[test]
    fn sequential_ip_id_increments() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = Host::new(Ipv4::new(1, 2, 3, 4), HostConfig::outside("h"), &mut rng);
        let a = h.next_ip_id(&mut rng);
        let b = h.next_ip_id(&mut rng);
        assert_eq!(b, a.wrapping_add(1));
    }
}
