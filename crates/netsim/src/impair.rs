//! Deterministic link impairment: loss, duplication, reordering, jitter.
//!
//! The paper's measurements crossed a real, lossy transnational path
//! (probe replays arriving 0.28 s–570 h late, §3.5; blocking itself a
//! unidirectional drop the authors had to disentangle from ordinary
//! packet loss, §6). This module models that path: an
//! [`ImpairmentSpec`] in [`crate::sim::SimConfig`] attaches a
//! [`LinkImpairment`] to each direction of the border link (and to
//! intra-region links), all driven by the simulator's single seeded RNG
//! so impaired runs stay byte-for-byte reproducible at any worker
//! count.
//!
//! The guarantee the property tests pin down: a zero-rate impairment is
//! a strict no-op — it draws **nothing** from the RNG and schedules no
//! extra events, so `ImpairmentSpec::default()` produces capture logs
//! byte-identical to a simulator built before this module existed.

use crate::time::Duration;

/// Impairment parameters for one direction of one link.
///
/// All probabilities are per transmission and independent; a value of
/// zero disables that mechanism without consuming randomness.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkImpairment {
    /// Probability that a transmitted packet is dropped in flight.
    pub loss: f64,
    /// Probability that a delivered packet is duplicated (the copy
    /// arrives 100 µs after the original).
    pub duplicate: f64,
    /// Probability that a delivered packet is held back by
    /// [`reorder_extra`](Self::reorder_extra), letting later packets
    /// overtake it.
    pub reorder: f64,
    /// Extra one-way delay applied to reordered packets (bounds how far
    /// a packet can fall behind its successors).
    pub reorder_extra: Duration,
    /// Uniform random extra latency in `[0, jitter]` applied to every
    /// delivery.
    pub jitter: Duration,
}

impl LinkImpairment {
    /// True when this impairment changes nothing: the fast path that
    /// must draw zero RNG values.
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0
            && self.duplicate <= 0.0
            && self.reorder <= 0.0
            && self.jitter == Duration::ZERO
    }

    /// Pure packet loss at probability `p`.
    pub fn lossy(p: f64) -> LinkImpairment {
        LinkImpairment {
            loss: p,
            ..LinkImpairment::default()
        }
    }

    /// The loss probability clamped to a legal Bernoulli parameter.
    pub(crate) fn loss_p(&self) -> f64 {
        self.loss.clamp(0.0, 1.0)
    }

    /// The duplication probability clamped to a legal Bernoulli
    /// parameter.
    pub(crate) fn duplicate_p(&self) -> f64 {
        self.duplicate.clamp(0.0, 1.0)
    }

    /// The reordering probability clamped to a legal Bernoulli
    /// parameter.
    pub(crate) fn reorder_p(&self) -> f64 {
        self.reorder.clamp(0.0, 1.0)
    }
}

/// Per-link impairment assignment plus the retransmission policy that
/// makes loss survivable.
///
/// The default is a strict no-op on every link. Retransmission
/// parameters only matter once some link actually drops packets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpairmentSpec {
    /// China → outside direction of the border link (trigger traffic,
    /// probe payloads).
    pub cn_to_intl: LinkImpairment,
    /// Outside → China direction of the border link (server reactions).
    pub intl_to_cn: LinkImpairment,
    /// Links between hosts in the same region (and links involving
    /// unregistered addresses).
    pub intra: LinkImpairment,
    /// Initial per-segment retransmission timeout; doubles per attempt
    /// (RFC 6298-style exponential backoff).
    pub rto_initial: Duration,
    /// Maximum retransmissions per segment before the sender gives up.
    pub rto_max_retries: u32,
}

impl Default for ImpairmentSpec {
    fn default() -> Self {
        ImpairmentSpec {
            cn_to_intl: LinkImpairment::default(),
            intl_to_cn: LinkImpairment::default(),
            intra: LinkImpairment::default(),
            rto_initial: Duration::from_secs(1),
            rto_max_retries: 5,
        }
    }
}

impl ImpairmentSpec {
    /// True when no link impairs anything — the simulator then never
    /// allocates reassembly state and never touches the RNG.
    pub fn is_noop(&self) -> bool {
        self.cn_to_intl.is_noop() && self.intl_to_cn.is_noop() && self.intra.is_noop()
    }

    /// The same impairment on both directions of the border link
    /// (intra-region links stay clean).
    pub fn symmetric(link: LinkImpairment) -> ImpairmentSpec {
        ImpairmentSpec {
            cn_to_intl: link,
            intl_to_cn: link,
            ..ImpairmentSpec::default()
        }
    }

    /// Symmetric border loss at probability `p`.
    pub fn lossy(p: f64) -> ImpairmentSpec {
        ImpairmentSpec::symmetric(LinkImpairment::lossy(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        assert!(ImpairmentSpec::default().is_noop());
        assert!(LinkImpairment::default().is_noop());
    }

    #[test]
    fn lossy_is_not_noop() {
        assert!(!ImpairmentSpec::lossy(0.01).is_noop());
        assert!(LinkImpairment::lossy(1e-9).loss > 0.0);
    }

    #[test]
    fn symmetric_leaves_intra_clean() {
        let spec = ImpairmentSpec::symmetric(LinkImpairment::lossy(0.5));
        assert_eq!(spec.cn_to_intl, spec.intl_to_cn);
        assert!(spec.intra.is_noop());
    }

    #[test]
    fn probabilities_clamp() {
        let l = LinkImpairment {
            loss: 7.0,
            duplicate: -2.0,
            reorder: 0.5,
            ..LinkImpairment::default()
        };
        assert_eq!(l.loss_p(), 1.0);
        assert_eq!(l.duplicate_p(), 0.0);
        assert_eq!(l.reorder_p(), 0.5);
    }

    #[test]
    fn jitter_alone_defeats_noop() {
        let l = LinkImpairment {
            jitter: Duration::from_millis(1),
            ..LinkImpairment::default()
        };
        assert!(!l.is_noop());
    }
}
