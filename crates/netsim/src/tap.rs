//! On-path middleboxes.
//!
//! A [`Tap`] sees every packet that crosses the China border (the only
//! place the paper's adversary sits) and returns a verdict. The GFW
//! model in `gfw-core` is implemented as a tap whose state is shared
//! (via `Rc<RefCell<..>>`) with a controller app that launches probes;
//! the tap requests controller wake-ups through [`TapCtx`].

use crate::app::AppId;
use crate::packet::Packet;
use crate::time::SimTime;

/// What a tap decides about a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Forward unchanged.
    Pass,
    /// Silently drop — the GFW's blocking mechanism is unidirectional
    /// null-routing (§6).
    Drop,
}

/// Context handed to taps: the clock plus the ability to schedule app
/// timers (how the GFW tap tells its controller app that probe orders
/// are pending).
pub struct TapCtx {
    /// Current simulation time.
    pub now: SimTime,
    pub(crate) wakeups: Vec<(AppId, SimTime, u64)>,
}

impl TapCtx {
    pub(crate) fn new(now: SimTime) -> TapCtx {
        TapCtx {
            now,
            wakeups: Vec::new(),
        }
    }

    /// Arrange for `app` to receive `AppEvent::Timer { token }` at `at`.
    pub fn wake_app(&mut self, app: AppId, at: SimTime, token: u64) {
        self.wakeups.push((app, at.max(self.now), token));
    }

    pub(crate) fn take_wakeups(&mut self) -> Vec<(AppId, SimTime, u64)> {
        std::mem::take(&mut self.wakeups)
    }
}

/// An on-path observer/filter.
pub trait Tap {
    /// Inspect one border-crossing packet.
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut TapCtx) -> Verdict;
}

/// A tap that counts packets and never drops; useful in tests and as a
/// control observer.
#[derive(Default)]
pub struct CountingTap {
    /// Packets seen.
    pub seen: u64,
    /// Data-carrying packets seen.
    pub data_packets: u64,
}

impl Tap for CountingTap {
    fn on_packet(&mut self, pkt: &Packet, _ctx: &mut TapCtx) -> Verdict {
        self.seen += 1;
        if pkt.has_payload() {
            self.data_packets += 1;
        }
        Verdict::Pass
    }
}
