//! Packets as they appear on the simulated wire.
//!
//! Only the header fields the paper's analysis actually touches are
//! modelled: addressing, TCP flags/seq numbers, the receive window
//! (brdgrd, §7.1), IP TTL and ID (§3.4), and the TCP timestamp option
//! (§3.4's prober-process side channel).

use crate::conn::ConnId;
use crate::time::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// IPv4 address. A thin newtype over the four octets so we control
/// formatting and serde without pulling in `std::net` parsing semantics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4(pub [u8; 4]);

impl Ipv4 {
    /// Construct from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4([a, b, c, d])
    }

    /// The /16 prefix, useful for coarse grouping.
    pub fn prefix16(self) -> [u8; 2] {
        [self.0[0], self.0[1]]
    }
}

impl std::fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl std::fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

impl From<[u8; 4]> for Ipv4 {
    fn from(o: [u8; 4]) -> Ipv4 {
        Ipv4(o)
    }
}

/// An (address, port) endpoint.
pub type SocketAddr = (Ipv4, u16);

/// TCP flag bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Synchronize.
    pub syn: bool,
    /// Acknowledge.
    pub ack: bool,
    /// Push (set on data-carrying segments).
    pub psh: bool,
    /// Finish.
    pub fin: bool,
    /// Reset.
    pub rst: bool,
}

impl TcpFlags {
    /// SYN only (client handshake opener).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        psh: false,
        fin: false,
        rst: false,
    };
    /// SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        psh: false,
        fin: false,
        rst: false,
    };
    /// Pure ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        psh: false,
        fin: false,
        rst: false,
    };
    /// PSH-ACK (data).
    pub const PSH_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        psh: true,
        fin: false,
        rst: false,
    };
    /// FIN-ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        psh: false,
        fin: true,
        rst: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        psh: false,
        fin: false,
        rst: true,
    };
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let set = [
            (self.syn, "SYN"),
            (self.rst, "RST"),
            (self.fin, "FIN"),
            (self.psh, "PSH"),
            (self.ack, "ACK"),
        ];
        let mut first = true;
        for (on, name) in set {
            if on {
                if !first {
                    f.write_str("/")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A TCP/IPv4 packet on the simulated wire.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Time the packet was put on the wire.
    pub sent_at: SimTime,
    /// Source endpoint.
    pub src: SocketAddr,
    /// Destination endpoint.
    pub dst: SocketAddr,
    /// TCP flags.
    pub flags: TcpFlags,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when `flags.ack`).
    pub ack: u32,
    /// Advertised receive window.
    pub window: u16,
    /// IP time-to-live as observed at the capture point.
    pub ttl: u8,
    /// IP identification field.
    pub ip_id: u16,
    /// TCP timestamp option value (TSval); RST segments carry none.
    pub tsval: Option<u32>,
    /// Application payload.
    pub payload: Bytes,
    /// Simulator connection this packet belongs to.
    pub conn: ConnId,
    /// True if this is a retransmission of an earlier segment (set by
    /// the impairment layer's loss-recovery machine; captures can use
    /// it to separate original transmissions from retries).
    pub retx: bool,
}

impl Packet {
    /// True if this packet carries application data.
    pub fn has_payload(&self) -> bool {
        !self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_display() {
        assert_eq!(Ipv4::new(175, 42, 1, 21).to_string(), "175.42.1.21");
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN/ACK");
        assert_eq!(TcpFlags::PSH_ACK.to_string(), "PSH/ACK");
        assert_eq!(TcpFlags::RST.to_string(), "RST");
    }

    #[test]
    fn prefix16() {
        assert_eq!(Ipv4::new(202, 108, 181, 70).prefix16(), [202, 108]);
    }
}
